"""Shim for environments without the `wheel` package (offline PEP-517
builds cannot fetch it); `pip install -e . --no-use-pep517` uses this."""
from setuptools import setup

setup()
