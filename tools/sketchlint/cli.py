"""Command-line entry point: ``python -m tools.sketchlint <paths>``.

Exit codes: 0 clean, 1 violations found, 2 usage/parse error — the same
convention as ruff/mypy, so CI treats all three gates identically.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from tools.sketchlint.engine import lint_paths
from tools.sketchlint.rules import ALL_RULES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sketchlint",
        description="Domain-specific static analysis for sketch data structures.",
    )
    parser.add_argument(
        "paths",
        nargs="+",
        type=Path,
        help="files or directories to lint (directories are walked for *.py)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the summary line (violations still print)",
    )
    return parser


def _print_rules() -> None:
    for cls in ALL_RULES:
        print(f"{cls.code}  {cls.summary}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rules()
        return 0

    missing: List[Path] = [path for path in args.paths if not path.exists()]
    if missing:
        print(
            f"sketchlint: path(s) not found: {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2

    select = None
    if args.select:
        select = [code.strip() for code in args.select.split(",") if code.strip()]
    try:
        report = lint_paths(args.paths, select=select)
    except ValueError as exc:
        print(f"sketchlint: {exc}", file=sys.stderr)
        return 2

    for violation in report.violations:
        print(violation.render())
    for error in report.parse_errors:
        print(error, file=sys.stderr)
    if not args.quiet:
        print(
            f"sketchlint: {report.files_checked} file(s) checked, "
            f"{len(report.violations)} violation(s)"
        )
    if report.parse_errors:
        return 2
    return 0 if not report.violations else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
