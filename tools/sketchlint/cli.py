"""Command-line entry point: ``python -m tools.sketchlint <paths>``.

Exit codes: 0 clean, 1 violations found, 2 usage/parse error — the same
convention as ruff/mypy, so CI treats all three gates identically.  A
path spec that matches **no** Python files is a usage error (exit 2):
a typo'd directory must not let CI silently lint nothing and go green.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from tools.sketchlint.baseline import DEFAULT_BASELINE_PATH, Baseline
from tools.sketchlint.cache import ResultCache
from tools.sketchlint.engine import iter_python_files, lint_paths
from tools.sketchlint.rules import ALL_RULES
from tools.sketchlint.sarif import render_sarif


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sketchlint",
        description="Domain-specific static analysis for sketch data structures.",
    )
    parser.add_argument(
        "paths",
        nargs="+",
        type=Path,
        help="files or directories to lint (directories are walked for *.py)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all rules)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "sarif"),
        default="text",
        help="output format (default: text; sarif emits a SARIF 2.1.0 log)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        type=Path,
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        type=Path,
        default=None,
        help=(
            "suppress findings recorded in this baseline file "
            f"(default: {DEFAULT_BASELINE_PATH} when it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report grandfathered findings too)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file to cover every current finding, then exit 0",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache",
    )
    parser.add_argument(
        "--cache-path",
        metavar="FILE",
        type=Path,
        default=None,
        help="location of the result cache (default: .sketchlint-cache.json)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the summary line (violations still print)",
    )
    return parser


def _print_rules() -> None:
    for cls in ALL_RULES:
        print(f"{cls.code}  {cls.summary}")


def _emit(text: str, output: Optional[Path]) -> None:
    if output is None:
        sys.stdout.write(text if text.endswith("\n") else text + "\n")
    else:
        output.write_text(text if text.endswith("\n") else text + "\n", encoding="utf-8")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rules()
        return 0

    missing: List[Path] = [path for path in args.paths if not path.exists()]
    if missing:
        print(
            f"sketchlint: path(s) not found: {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2

    if not any(True for _ in iter_python_files(args.paths)):
        print(
            "sketchlint: no Python files matched "
            f"{', '.join(map(str, args.paths))} — refusing to lint nothing",
            file=sys.stderr,
        )
        return 2

    select = None
    if args.select:
        select = [code.strip() for code in args.select.split(",") if code.strip()]

    cache: Optional[ResultCache] = None
    if not args.no_cache:
        cache = ResultCache(args.cache_path) if args.cache_path else ResultCache()

    try:
        report = lint_paths(args.paths, select=select, cache=cache)
    except ValueError as exc:
        print(f"sketchlint: {exc}", file=sys.stderr)
        return 2

    baseline_path = args.baseline or DEFAULT_BASELINE_PATH
    if args.update_baseline:
        Baseline.from_report(report, baseline_path).save()
        print(
            f"sketchlint: baseline updated — {len(report.violations)} finding(s) "
            f"recorded in {baseline_path}"
        )
        return 0

    if not args.no_baseline and baseline_path.exists():
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"sketchlint: {exc}", file=sys.stderr)
            return 2
        report = baseline.apply(report)

    active_rules = [cls() for cls in ALL_RULES]
    if select is not None:
        wanted = {code.upper() for code in select}
        active_rules = [rule for rule in active_rules if rule.code in wanted]

    if args.format == "sarif":
        _emit(render_sarif(report, active_rules), args.output)
    else:
        lines = [violation.render() for violation in report.violations]
        for error in report.parse_errors:
            print(error, file=sys.stderr)
        if not args.quiet:
            summary = (
                f"sketchlint: {report.files_checked} file(s) checked, "
                f"{len(report.violations)} violation(s)"
            )
            if report.baseline_suppressed:
                summary += f" ({report.baseline_suppressed} baselined)"
            lines.append(summary)
        text = "\n".join(lines)
        if text or args.output is not None:
            _emit(text, args.output)

    if report.parse_errors:
        return 2
    return 0 if not report.violations else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())  # sketchlint: disable=SK003
