"""``python -m tools.sketchlint`` dispatch."""

import sys

from tools.sketchlint.cli import main

sys.exit(main())
