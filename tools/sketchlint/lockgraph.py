"""Lock identities, held regions and the acquisition-order graph.

This is the shared model behind the SK2xx concurrency rules.  One pass
over the package (memoized per :class:`~tools.sketchlint.symbols.SymbolIndex`)
computes everything the six rules need:

* **lock declarations** — every ``self.<attr> = threading.Lock()`` (or
  ``RLock``/``Condition``/``Semaphore``, including the ``multiprocessing``
  equivalents) found in a class body or method gives the lock a stable
  identity ``ClassName.attr``.  ``Condition()`` wraps an ``RLock`` and is
  reentrant; ``Condition(Lock())`` is not;
* **held regions** — a lexical walk of every function threads the set of
  currently-held locks through ``with`` blocks, explicit
  ``acquire()``/``release()`` pairs (including release on the
  ``finally`` arm, which is how the exceptional CFG edge drops the
  lock), and local aliases (``lock = self._lock``).  Lock variables
  iterated out of a ``sorted(...)``-derived sequence are *ordered-group*
  acquisitions: the name-sorted convention
  (``SketchServer._handle_query``) establishes a global order by
  construction, so group members contribute no order edges;
* **events** — every acquisition, call, ``Condition.wait`` and
  ``self.<attr>`` write is recorded with the lexically-held snapshot;
* **interprocedural closure** — a conservative call graph (``self.m()``
  to the same class, bare names to the same module, ``obj._m()`` to a
  package-unique private function) feeds a ``may_acquire`` fixpoint, a
  *callers-held* fixpoint (the intersection of locks held at every
  in-package call site of a private helper) and thread-entry
  reachability (``threading.Thread(target=...)`` plus
  ``socketserver`` ``RequestHandler.handle`` methods);
* **the order graph** — a directed edge ``A -> B`` for every site that
  acquires ``B`` (directly or via a callee) while holding ``A``, with
  the acquisition sites kept per edge so SK201 can report both halves
  of an opposite-order pair.

Everything here is deliberately *under-approximate*: an unresolved lock
expression, callee or target contributes nothing, so the rules built on
the model flag only what the analysis actually proved.
"""

from __future__ import annotations

import ast
import dataclasses
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple
from weakref import WeakKeyDictionary

from tools.sketchlint.dataflow import attribute_chain, call_name
from tools.sketchlint.engine import PackageContext
from tools.sketchlint.symbols import ClassInfo, FunctionInfo, SymbolIndex

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_NESTED_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)

#: lock-like constructors mapped to (kind, reentrant)
_LOCK_FACTORIES: Dict[str, Tuple[str, bool]] = {
    "Lock": ("lock", False),
    "RLock": ("rlock", True),
    "Condition": ("condition", True),
    "Semaphore": ("semaphore", False),
    "BoundedSemaphore": ("semaphore", False),
}

#: module roots whose factories count as lock constructors
_LOCK_MODULES = frozenset({"threading", "multiprocessing", "mp"})

#: method names that mutate their receiver in place
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)


def chain_through_calls(node: ast.expr) -> Optional[List[str]]:
    """Attribute chain that looks through calls and subscripts.

    ``self._sink().emit`` -> ``["self", "_sink", "emit"]``.
    """
    parts: List[str] = []
    current: ast.expr = node
    while True:
        if isinstance(current, ast.Subscript):
            current = current.value
        elif isinstance(current, ast.Call):
            current = current.func
        elif isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        elif isinstance(current, ast.Name):
            parts.append(current.id)
            return list(reversed(parts))
        else:
            return None


# --------------------------------------------------------------------- #
# model records
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class LockDecl:
    """One lock attribute declared by a class (identity ``Class.attr``)."""

    class_name: str
    attr: str
    kind: str
    reentrant: bool
    path: str
    line: int

    @property
    def lock_id(self) -> str:
        return f"{self.class_name}.{self.attr}"


@dataclass(frozen=True)
class Site:
    """A concrete source location an edge or event anchors to."""

    path: str
    line: int
    column: int

    def render(self) -> str:
        return f"{self.path}:{self.line}"


@dataclass
class AcquireEvent:
    """A direct lock acquisition (``with`` item or ``.acquire()``)."""

    lock: str
    node: ast.AST
    held: Tuple[str, ...]


@dataclass
class CallEvent:
    """A call with the held snapshot; ``callee`` when resolvable."""

    node: ast.Call
    chain: Optional[List[str]]
    callee: Optional[str]
    held: Tuple[str, ...]


@dataclass
class WaitEvent:
    """A ``Condition.wait()`` with loop context and timeout facts."""

    lock: str
    node: ast.Call
    held: Tuple[str, ...]
    in_loop: bool
    bounded: bool


@dataclass
class WriteEvent:
    """A ``self.<attr>`` store or in-place mutation."""

    attr: str
    node: ast.AST
    held: Tuple[str, ...]


@dataclass
class SpawnEvent:
    """A ``threading.Thread(...)`` or ``multiprocessing.Process(...)``."""

    node: ast.Call
    path: str
    kind: str  # "thread" | "process"
    target_key: Optional[str]
    bound_target_class: Optional[str]
    captured_locks: List[Tuple[str, ast.expr]]


@dataclass
class FunctionEvents:
    """Everything the walker recorded for one function."""

    info: FunctionInfo
    acquires: List[AcquireEvent] = field(default_factory=list)
    calls: List[CallEvent] = field(default_factory=list)
    waits: List[WaitEvent] = field(default_factory=list)
    writes: List[WriteEvent] = field(default_factory=list)


@dataclass
class SelfDeadlock:
    """A non-reentrant lock re-acquired while already held."""

    lock: str
    node: ast.AST
    path: str
    detail: str


def function_key(info: FunctionInfo) -> str:
    """Stable per-definition key: ``path::qualname``."""
    return f"{info.path}::{info.qualname}"


# --------------------------------------------------------------------- #
# the per-function walker
# --------------------------------------------------------------------- #
class _FunctionWalker:
    """Lexical held-region walk of one function body."""

    def __init__(self, model: "LockModel", info: FunctionInfo) -> None:
        self.model = model
        self.info = info
        self.events = FunctionEvents(info)
        #: local name -> lock id (``lock = self._lock``)
        self.aliases: Dict[str, str] = {}
        #: locals holding a ``sorted(...)``-derived sequence of locks
        self.sorted_locals: Set[str] = set()
        #: loop variables currently iterating an ordered group
        self.group_vars: Set[str] = set()

    # -- resolution ---------------------------------------------------- #
    def resolve_lock(self, expr: ast.expr) -> Optional[str]:
        """The lock id an expression denotes, or None when unproven."""
        if isinstance(expr, ast.Name):
            return self.aliases.get(expr.id)
        chain = attribute_chain(expr)
        if chain is None or len(chain) != 2:
            return None
        base, attr = chain
        if base == "self" and self.info.class_name is not None:
            lock_id = f"{self.info.class_name}.{attr}"
            if lock_id in self.model.decls:
                return lock_id
        candidates = self.model.attr_decls.get(attr, [])
        if len(candidates) == 1:
            return candidates[0].lock_id
        return None

    def resolve_callee(self, expr: ast.expr) -> Optional[str]:
        """The function key a call target resolves to, conservatively."""
        chain = chain_through_calls(expr)
        if chain is None:
            return None
        if len(chain) == 1:
            found = self.model.index.module_function(self.info.path, chain[0])
            return function_key(found) if found is not None else None
        if chain[0] == "self" and len(chain) == 2:
            method = self.model.class_method(
                self.info.class_name, self.info.path, chain[1]
            )
            if method is not None:
                return function_key(method)
        last = chain[-1]
        if last.startswith("_"):
            named = self.model.index.functions_named(last)
            if len(named) == 1:
                return function_key(named[0])
        return None

    def _resolve_spawn_target(self, expr: ast.expr) -> Optional[str]:
        return self.resolve_callee(expr)

    # -- structure ----------------------------------------------------- #
    def walk(self) -> FunctionEvents:
        body = getattr(self.info.node, "body", [])
        self.walk_body(body, [], in_loop=False)
        return self.events

    def walk_body(
        self, stmts: Sequence[ast.stmt], held: List[str], in_loop: bool
    ) -> List[str]:
        for stmt in stmts:
            held = self.walk_stmt(stmt, held, in_loop)
        return held

    def walk_stmt(
        self, stmt: ast.stmt, held: List[str], in_loop: bool
    ) -> List[str]:
        if isinstance(stmt, _NESTED_SCOPES):
            return held
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = list(held)
            for item in stmt.items:
                lock_id = self.resolve_lock(item.context_expr)
                if lock_id is not None:
                    self._note_acquire(lock_id, item.context_expr, inner)
                    inner.append(lock_id)
                else:
                    inner = self.scan_expr(item.context_expr, inner, in_loop)
            self.walk_body(stmt.body, inner, in_loop)
            return held
        if isinstance(stmt, ast.If):
            held = self.scan_expr(stmt.test, held, in_loop)
            self.walk_body(stmt.body, list(held), in_loop)
            self.walk_body(stmt.orelse, list(held), in_loop)
            return held
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            held = self.scan_expr(stmt.iter, held, in_loop)
            group_var = self._group_loop_var(stmt)
            if group_var is not None:
                self.group_vars.add(group_var)
            self.walk_body(stmt.body, list(held), in_loop=True)
            self.walk_body(stmt.orelse, list(held), in_loop)
            if group_var is not None:
                self.group_vars.discard(group_var)
            return held
        if isinstance(stmt, ast.While):
            held = self.scan_expr(stmt.test, held, in_loop)
            self.walk_body(stmt.body, list(held), in_loop=True)
            self.walk_body(stmt.orelse, list(held), in_loop)
            return held
        if isinstance(stmt, ast.Try):
            after_body = self.walk_body(stmt.body, list(held), in_loop)
            for handler in stmt.handlers:
                # the exception may fire anywhere in the body; the locks
                # held at try-entry are definitely still held here
                self.walk_body(handler.body, list(held), in_loop)
            after_else = self.walk_body(stmt.orelse, list(after_body), in_loop)
            return self.walk_body(stmt.finalbody, list(after_else), in_loop)
        # simple statement: alias / write bookkeeping, then event scan
        if isinstance(stmt, ast.Assign):
            self._handle_assign(stmt, held)
        elif isinstance(stmt, ast.AugAssign):
            self._handle_target_write(stmt.target, held)
            if isinstance(stmt.target, ast.Name):
                self.aliases.pop(stmt.target.id, None)
                self.sorted_locals.discard(stmt.target.id)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._handle_target_write(stmt.target, held)
        return self.scan_stmt(stmt, held, in_loop)

    def _group_loop_var(self, stmt: ast.stmt) -> Optional[str]:
        """The loop variable when iterating a sorted lock group."""
        iter_expr = getattr(stmt, "iter", None)
        target = getattr(stmt, "target", None)
        if not isinstance(target, ast.Name) or iter_expr is None:
            return None
        if self._is_sorted_sequence(iter_expr):
            return target.id
        return None

    def _is_sorted_sequence(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in self.sorted_locals
        if isinstance(expr, ast.Call):
            name = call_name(expr)
            if name in ("sorted", "reversed"):
                if name == "sorted":
                    return True
                return any(self._is_sorted_sequence(arg) for arg in expr.args)
        return False

    def _contains_sorted_call(self, expr: ast.expr) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call) and call_name(node) == "sorted":
                return True
            if isinstance(node, ast.Name) and node.id in self.sorted_locals:
                return True
        return False

    # -- simple-statement bookkeeping ---------------------------------- #
    def _handle_assign(self, stmt: ast.Assign, held: List[str]) -> None:
        lock_id = self.resolve_lock(stmt.value)
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                self.aliases.pop(target.id, None)
                self.sorted_locals.discard(target.id)
                if lock_id is not None:
                    self.aliases[target.id] = lock_id
                elif self._contains_sorted_call(stmt.value):
                    self.sorted_locals.add(target.id)
            else:
                self._handle_target_write(target, held)

    def _handle_target_write(self, target: ast.expr, held: List[str]) -> None:
        chain = attribute_chain(target)
        if chain is not None and len(chain) == 2 and chain[0] == "self":
            self.events.writes.append(
                WriteEvent(chain[1], target, tuple(held))
            )

    # -- event scan ---------------------------------------------------- #
    def scan_stmt(
        self, stmt: ast.stmt, held: List[str], in_loop: bool
    ) -> List[str]:
        for call in self._calls_in(stmt):
            held = self._classify_call(call, held, in_loop)
        return held

    def scan_expr(
        self, expr: ast.expr, held: List[str], in_loop: bool
    ) -> List[str]:
        for call in self._calls_in(expr):
            held = self._classify_call(call, held, in_loop)
        return held

    def _calls_in(self, root: ast.AST) -> List[ast.Call]:
        """Every call under ``root`` (nested scopes excluded), in order."""
        calls: List[ast.Call] = []
        queue: List[ast.AST] = [root]
        while queue:
            node = queue.pop()
            if node is not root and isinstance(node, _NESTED_SCOPES):
                continue
            if isinstance(node, ast.Call):
                calls.append(node)
            queue.extend(ast.iter_child_nodes(node))
        calls.sort(
            key=lambda c: (
                getattr(c, "lineno", 0),
                getattr(c, "col_offset", 0),
            )
        )
        return calls

    def _classify_call(
        self, call: ast.Call, held: List[str], in_loop: bool
    ) -> List[str]:
        func = call.func
        if isinstance(func, ast.Attribute):
            method = func.attr
            if method in ("acquire", "release"):
                receiver = func.value
                if (
                    isinstance(receiver, ast.Name)
                    and receiver.id in self.group_vars
                ):
                    return held  # ordered-group member: acyclic by design
                lock_id = self.resolve_lock(receiver)
                if lock_id is not None:
                    held = list(held)
                    if method == "acquire":
                        self._note_acquire(lock_id, call, held)
                        held.append(lock_id)
                    elif lock_id in held:
                        held.reverse()
                        held.remove(lock_id)
                        held.reverse()
                    return held
            if method == "wait":
                lock_id = self.resolve_lock(func.value)
                if (
                    lock_id is not None
                    and self.model.decls[lock_id].kind == "condition"
                ):
                    bounded = bool(call.args) or any(
                        kw.arg == "timeout" for kw in call.keywords
                    )
                    self.events.waits.append(
                        WaitEvent(
                            lock_id, call, tuple(held), in_loop, bounded
                        )
                    )
                    return held
            if method in _MUTATORS:
                chain = attribute_chain(func.value)
                if chain is not None and len(chain) == 2 and chain[0] == "self":
                    self.events.writes.append(
                        WriteEvent(chain[1], call, tuple(held))
                    )
        name = call_name(call)
        imports = self.model.module_imports.get(self.info.path, frozenset())
        if name == "Thread" and "threading" in imports:
            self._note_spawn(call, "thread")
            return held
        if name in ("Process", "Pool") and "multiprocessing" in imports:
            self._note_spawn(call, "process")
            return held
        chain = chain_through_calls(func)
        self.events.calls.append(
            CallEvent(call, chain, self.resolve_callee(func), tuple(held))
        )
        return held

    def _note_acquire(
        self, lock_id: str, node: ast.AST, held: List[str]
    ) -> None:
        self.events.acquires.append(
            AcquireEvent(lock_id, node, tuple(held))
        )

    def _note_spawn(self, call: ast.Call, kind: str) -> None:
        target_key: Optional[str] = None
        bound_class: Optional[str] = None
        captured: List[Tuple[str, ast.expr]] = []
        for keyword in call.keywords:
            if keyword.arg == "target":
                target_key = self._resolve_spawn_target(keyword.value)
                chain = attribute_chain(keyword.value)
                if (
                    chain is not None
                    and len(chain) == 2
                    and chain[0] == "self"
                    and self.info.class_name is not None
                    and self.model.locks_of_class(self.info.class_name)
                ):
                    bound_class = self.info.class_name
            elif keyword.arg in ("args", "kwargs"):
                captured.extend(self._locks_under(keyword.value))
        for arg in call.args:
            captured.extend(self._locks_under(arg))
        self.model.spawns.append(
            SpawnEvent(
                call, self.info.path, kind, target_key, bound_class, captured
            )
        )

    def _locks_under(self, expr: ast.expr) -> List[Tuple[str, ast.expr]]:
        found: List[Tuple[str, ast.expr]] = []
        for node in ast.walk(expr):
            if isinstance(node, (ast.Attribute, ast.Name)):
                lock_id = self.resolve_lock(node)
                if lock_id is not None:
                    found.append((lock_id, node))
        return found


# --------------------------------------------------------------------- #
# the whole-package model
# --------------------------------------------------------------------- #
class LockModel:
    """Package-wide lock declarations, events and the order graph."""

    def __init__(self, index: SymbolIndex) -> None:
        self.index = index
        #: lock id -> declaration
        self.decls: Dict[str, LockDecl] = {}
        #: attribute name -> every class-level declaration using it
        self.attr_decls: Dict[str, List[LockDecl]] = {}
        #: function key -> recorded events
        self.functions: Dict[str, FunctionEvents] = {}
        #: module path -> imported top-level module names
        self.module_imports: Dict[str, FrozenSet[str]] = {}
        self.spawns: List[SpawnEvent] = []
        #: thread entry points (targets + RequestHandler.handle methods)
        self.thread_entries: Set[str] = set()
        #: function key -> every lock it may acquire (transitively)
        self.may_acquire: Dict[str, FrozenSet[str]] = {}
        #: function key -> locks held at *every* in-package call site
        self.callers_held: Dict[str, FrozenSet[str]] = {}
        #: functions reachable from a thread entry -> entry-held locks
        self.concurrent_entry_held: Dict[str, FrozenSet[str]] = {}
        #: directed order edges with their acquisition sites
        self.order_edges: Dict[Tuple[str, str], List[Site]] = {}
        self.self_deadlocks: List[SelfDeadlock] = []

    # -- lookups -------------------------------------------------------- #
    def class_method(
        self, class_name: Optional[str], path: str, method: str
    ) -> Optional[FunctionInfo]:
        if class_name is None:
            return None
        for cls_info in self.index.classes_named(class_name):
            if cls_info.path == path and method in cls_info.methods:
                return cls_info.methods[method]
        return None

    def locks_of_class(self, class_name: str) -> FrozenSet[str]:
        return frozenset(
            lock_id
            for lock_id, decl in self.decls.items()
            if decl.class_name == class_name
        )

    def module_spawns_thread(self, path: str) -> bool:
        return any(
            spawn.kind == "thread" and spawn.path == path
            for spawn in self.spawns
        )

    def site_of(self, path: str, node: ast.AST) -> Site:
        return Site(
            path,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
        )

    # -- construction --------------------------------------------------- #
    @classmethod
    def build(cls, index: SymbolIndex) -> "LockModel":
        model = cls(index)
        model._collect_imports()
        model._collect_decls()
        model._walk_functions()
        model._collect_entries()
        model._fix_may_acquire()
        model._build_order_graph()
        model._fix_callers_held()
        model._fix_concurrent()
        return model

    def _collect_imports(self) -> None:
        for path, module in self.index.modules.items():
            roots: Set[str] = set()
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        roots.add(alias.name.split(".")[0])
                        if alias.asname is not None:
                            roots.add(alias.asname)
                elif isinstance(node, ast.ImportFrom):
                    if node.module is not None:
                        roots.add(node.module.split(".")[0])
            self.module_imports[path] = frozenset(roots)

    def _collect_decls(self) -> None:
        for cls_info in self.index.all_classes():
            for stmt in cls_info.node.body:
                if isinstance(stmt, ast.Assign):
                    self._try_decl(cls_info, stmt.targets, stmt.value, None)
            for method in cls_info.methods.values():
                for node in ast.walk(method.node):
                    if isinstance(node, ast.Assign):
                        self._try_decl(
                            cls_info, node.targets, node.value, "self"
                        )

    def _try_decl(
        self,
        cls_info: ClassInfo,
        targets: Sequence[ast.expr],
        value: ast.expr,
        base: Optional[str],
    ) -> None:
        factory = self._lock_factory(value)
        if factory is None:
            return
        kind, reentrant = factory
        for target in targets:
            attr: Optional[str] = None
            if base is None and isinstance(target, ast.Name):
                attr = target.id
            elif (
                base is not None
                and isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == base
            ):
                attr = target.attr
            if attr is None:
                continue
            decl = LockDecl(
                cls_info.name,
                attr,
                kind,
                reentrant,
                cls_info.path,
                getattr(target, "lineno", 1),
            )
            existing = self.decls.get(decl.lock_id)
            if existing is None:
                self.decls[decl.lock_id] = decl
                self.attr_decls.setdefault(attr, []).append(decl)
            elif existing.reentrant != reentrant:
                # Two same-named classes (different modules) disagree on
                # the factory: the identity is ambiguous, so claim only
                # what both agree on — treat it as reentrant and never
                # report a self-deadlock for it.
                self.decls[decl.lock_id] = dataclasses.replace(
                    existing, reentrant=True
                )

    def _lock_factory(self, value: ast.expr) -> Optional[Tuple[str, bool]]:
        if not isinstance(value, ast.Call):
            return None
        chain = attribute_chain(value.func)
        if chain is None or chain[-1] not in _LOCK_FACTORIES:
            return None
        if len(chain) > 1 and chain[0] not in _LOCK_MODULES:
            return None
        kind, reentrant = _LOCK_FACTORIES[chain[-1]]
        if kind == "condition" and value.args:
            inner = value.args[0]
            if isinstance(inner, ast.Call):
                inner_chain = attribute_chain(inner.func)
                if inner_chain is not None and inner_chain[-1] == "Lock":
                    reentrant = False
        return (kind, reentrant)

    def _walk_functions(self) -> None:
        for info in sorted(
            self.index.all_functions(), key=lambda f: (f.path, f.qualname)
        ):
            key = function_key(info)
            if key in self.functions:
                continue
            self.functions[key] = _FunctionWalker(self, info).walk()

    def _collect_entries(self) -> None:
        for spawn in self.spawns:
            if spawn.kind == "thread" and spawn.target_key is not None:
                self.thread_entries.add(spawn.target_key)
        for cls_info in self.index.all_classes():
            if not self._is_handler_class(cls_info):
                continue
            handle = cls_info.methods.get("handle")
            if handle is not None:
                self.thread_entries.add(function_key(handle))
        self.thread_entries = {
            key for key in self.thread_entries if key in self.functions
        }

    @staticmethod
    def _is_handler_class(cls_info: ClassInfo) -> bool:
        for base in cls_info.node.bases:
            chain = attribute_chain(base)
            if chain is not None and "RequestHandler" in chain[-1]:
                return True
        return False

    def _fix_may_acquire(self) -> None:
        may: Dict[str, Set[str]] = {
            key: {event.lock for event in events.acquires}
            for key, events in self.functions.items()
        }
        changed = True
        while changed:
            changed = False
            for key, events in self.functions.items():
                for call in events.calls:
                    if call.callee is None or call.callee not in may:
                        continue
                    extra = may[call.callee] - may[key]
                    if extra:
                        may[key].update(extra)
                        changed = True
        self.may_acquire = {
            key: frozenset(locks) for key, locks in may.items()
        }

    def _build_order_graph(self) -> None:
        for key in sorted(self.functions):
            events = self.functions[key]
            path = events.info.path
            for acquire in events.acquires:
                site = self.site_of(path, acquire.node)
                if acquire.lock in acquire.held:
                    decl = self.decls[acquire.lock]
                    if not decl.reentrant:
                        self.self_deadlocks.append(
                            SelfDeadlock(
                                acquire.lock,
                                acquire.node,
                                path,
                                "re-acquired directly while already held",
                            )
                        )
                for held in dict.fromkeys(acquire.held):
                    if held != acquire.lock:
                        self.order_edges.setdefault(
                            (held, acquire.lock), []
                        ).append(site)
            for call in events.calls:
                if call.callee is None or not call.held:
                    continue
                acquired = self.may_acquire.get(call.callee, frozenset())
                if not acquired:
                    continue
                site = self.site_of(path, call.node)
                held_set = set(call.held)
                for lock in sorted(acquired):
                    decl = self.decls[lock]
                    if lock in held_set:
                        if not decl.reentrant:
                            self.self_deadlocks.append(
                                SelfDeadlock(
                                    lock,
                                    call.node,
                                    path,
                                    "re-acquired through the call "
                                    f"'{call.callee.rsplit('::', 1)[-1]}'",
                                )
                            )
                        continue
                    for held in dict.fromkeys(call.held):
                        if held != lock:
                            self.order_edges.setdefault(
                                (held, lock), []
                            ).append(site)

    def _fix_callers_held(self) -> None:
        """Intersection of held sets across every in-package call site.

        Only private (underscore-named) helpers participate: a public
        function is externally callable with no locks held, so its
        callers-held is pinned to the empty set up front.
        """
        has_callers: Set[str] = set()
        for events in self.functions.values():
            for call in events.calls:
                if call.callee is not None:
                    has_callers.add(call.callee)
        state: Dict[str, Optional[FrozenSet[str]]] = {}
        for key, events in self.functions.items():
            private = events.info.name.startswith("_")
            is_root = (
                not private
                or key not in has_callers
                or key in self.thread_entries
            )
            state[key] = frozenset() if is_root else None
        changed = True
        while changed:
            changed = False
            for key, events in self.functions.items():
                base = state[key]
                if base is None:
                    continue
                for call in events.calls:
                    callee = call.callee
                    if callee is None or callee not in state:
                        continue
                    contribution = base | frozenset(call.held)
                    current = state[callee]
                    merged = (
                        contribution
                        if current is None
                        else current & contribution
                    )
                    if merged != current:
                        state[callee] = merged
                        changed = True
        self.callers_held = {
            key: (value if value is not None else frozenset())
            for key, value in state.items()
        }

    def _fix_concurrent(self) -> None:
        """Entry-held locks for functions reachable from thread entries."""
        state: Dict[str, FrozenSet[str]] = {
            key: frozenset() for key in self.thread_entries
        }
        changed = True
        while changed:
            changed = False
            for key in list(state):
                events = self.functions.get(key)
                if events is None:
                    continue
                base = state[key]
                for call in events.calls:
                    callee = call.callee
                    if callee is None or callee not in self.functions:
                        continue
                    contribution = base | frozenset(call.held)
                    if callee not in state:
                        state[callee] = contribution
                        changed = True
                        continue
                    merged = state[callee] & contribution
                    if merged != state[callee]:
                        state[callee] = merged
                        changed = True
        self.concurrent_entry_held = state


_MODEL_CACHE: "WeakKeyDictionary[SymbolIndex, LockModel]" = (
    WeakKeyDictionary()
)


def lock_model(package: PackageContext) -> LockModel:
    """The (memoized) lock model for one linted package."""
    cached = _MODEL_CACHE.get(package.index)
    if cached is None:
        cached = LockModel.build(package.index)
        _MODEL_CACHE[package.index] = cached
    return cached
