"""SARIF 2.1.0 output for sketchlint.

One ``run`` per invocation: the tool component lists every registered
rule (id, summary, full description), each violation becomes a
``result`` with a physical location and a content-addressed
``partialFingerprints`` entry so GitHub code scanning can track findings
across commits the same way the baseline does — by (code, path, line
content) rather than by line number.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Sequence

from tools.sketchlint.baseline import fingerprint_of
from tools.sketchlint.engine import LintReport, Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "sketchlint"
TOOL_VERSION = "3.0.0"
TOOL_URI = "https://github.com/example/davinci-sketch-repro"


def _rule_descriptor(rule: Rule) -> Dict[str, Any]:
    descriptor: Dict[str, Any] = {
        "id": rule.code,
        "name": type(rule).__name__,
        "shortDescription": {"text": rule.summary},
        "defaultConfiguration": {"level": "error"},
    }
    if rule.description:
        descriptor["fullDescription"] = {"text": rule.description}
    return descriptor


def _fingerprint_hash(code: str, path: str, content: str) -> str:
    digest = hashlib.sha256(f"{code}|{path}|{content}".encode("utf-8"))
    return digest.hexdigest()[:32]


def render_sarif(
    report: LintReport, rules: Sequence[Rule], pretty: bool = True
) -> str:
    """Serialize ``report`` as a SARIF 2.1.0 log (a JSON string)."""
    rule_index = {rule.code: position for position, rule in enumerate(rules)}
    results: List[Dict[str, Any]] = []
    content_cache: Dict[str, List[str]] = {}
    for violation in report.violations:
        code, path, content = fingerprint_of(violation, content_cache)
        result: Dict[str, Any] = {
            "ruleId": code,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": path.replace("\\", "/"),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": violation.line,
                            "startColumn": violation.column + 1,
                        },
                    }
                }
            ],
            "partialFingerprints": {
                "sketchlint/v1": _fingerprint_hash(code, path, content)
            },
        }
        index: Optional[int] = rule_index.get(code)
        if index is not None:
            result["ruleIndex"] = index
        results.append(result)

    notifications: List[Dict[str, Any]] = [
        {
            "level": "error",
            "message": {"text": message},
            "descriptor": {"id": "SKPARSE"},
        }
        for message in report.parse_errors
    ]

    invocation: Dict[str, Any] = {
        "executionSuccessful": not report.parse_errors,
    }
    if notifications:
        invocation["toolExecutionNotifications"] = notifications

    log: Dict[str, Any] = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": TOOL_VERSION,
                        "informationUri": TOOL_URI,
                        "rules": [_rule_descriptor(rule) for rule in rules],
                    }
                },
                "invocations": [invocation],
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
    if pretty:
        return json.dumps(log, indent=2, sort_keys=False) + "\n"
    return json.dumps(log, sort_keys=False)
