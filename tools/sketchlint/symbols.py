"""A whole-package symbol index for interprocedural sketchlint rules.

One pass over every file being linted collects:

* every module-level function and every class with its methods, as
  :class:`FunctionInfo` records carrying the AST node, the owning class
  (if any) and the parameter list;
* per class, the set of ``self.<attr>`` names assigned anywhere in its
  methods (SK101 uses this to find the classes that own a
  ``_decode_cache``).

Lookup is by simple name — the package under analysis is small and its
style keeps function names unique per purpose (``to_state``,
``heavy_changers`` ...), so name-based resolution plus the caller's
module context is precise enough for the contract rules, and deliberately
*conservative*: a name that resolves to several functions is reported via
:meth:`SymbolIndex.functions_named` and rules decide how to merge.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

FunctionNode = ast.FunctionDef  # async defs are folded in via _FUNC_NODES
_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


class FunctionInfo:
    """One function or method definition, with its context."""

    __slots__ = ("name", "qualname", "node", "path", "class_name")

    def __init__(
        self,
        name: str,
        qualname: str,
        node: ast.AST,
        path: str,
        class_name: Optional[str],
    ) -> None:
        self.name = name
        self.qualname = qualname
        self.node = node
        self.path = path
        self.class_name = class_name

    # ------------------------------------------------------------------ #
    @property
    def args(self) -> ast.arguments:
        args = getattr(self.node, "args", None)
        if not isinstance(args, ast.arguments):  # pragma: no cover - guard
            return ast.arguments(
                posonlyargs=[], args=[], kwonlyargs=[], kw_defaults=[], defaults=[]
            )
        return args

    def param_names(self) -> List[str]:
        args = self.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg is not None:
            names.append(args.vararg.arg)
        if args.kwarg is not None:
            names.append(args.kwarg.arg)
        return names

    def positional_param_names(self) -> List[str]:
        args = self.args
        return [a.arg for a in args.posonlyargs + args.args]

    def has_param(self, name: str) -> bool:
        return name in self.param_names()

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionInfo({self.qualname} @ {self.path})"


class ClassInfo:
    """One class definition: its methods and the self-attributes it binds."""

    __slots__ = ("name", "node", "path", "methods", "self_attributes")

    def __init__(self, name: str, node: ast.ClassDef, path: str) -> None:
        self.name = name
        self.node = node
        self.path = path
        self.methods: Dict[str, FunctionInfo] = {}
        #: every attribute name assigned as ``self.<attr> = ...`` (or via
        #: AugAssign/AnnAssign) anywhere in the class body
        self.self_attributes: Set[str] = set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClassInfo({self.name} @ {self.path})"


class ModuleInfo:
    """One parsed module: its tree plus the symbols defined in it."""

    __slots__ = ("path", "tree", "functions", "classes")

    def __init__(self, path: str, tree: ast.AST) -> None:
        self.path = path
        self.tree = tree
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}


def _self_attribute_stores(func: ast.AST) -> Iterator[str]:
    for node in ast.walk(func):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                yield target.attr


class SymbolIndex:
    """Package-wide lookup tables built from every linted file."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self._functions_by_name: Dict[str, List[FunctionInfo]] = {}
        self._classes_by_name: Dict[str, List[ClassInfo]] = {}

    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, files: Dict[str, ast.AST]) -> "SymbolIndex":
        index = cls()
        for path, tree in files.items():
            index._index_module(path, tree)
        return index

    def _index_module(self, path: str, tree: ast.AST) -> None:
        module = ModuleInfo(path, tree)
        self.modules[path] = module
        for node in getattr(tree, "body", []):
            if isinstance(node, _FUNC_NODES):
                info = FunctionInfo(node.name, node.name, node, path, None)
                module.functions[node.name] = info
                self._functions_by_name.setdefault(node.name, []).append(info)
            elif isinstance(node, ast.ClassDef):
                self._index_class(module, node, path)

    def _index_class(
        self, module: ModuleInfo, node: ast.ClassDef, path: str
    ) -> None:
        cls_info = ClassInfo(node.name, node, path)
        module.classes[node.name] = cls_info
        self._classes_by_name.setdefault(node.name, []).append(cls_info)
        for item in node.body:
            if isinstance(item, _FUNC_NODES):
                qualname = f"{node.name}.{item.name}"
                info = FunctionInfo(item.name, qualname, item, path, node.name)
                cls_info.methods[item.name] = info
                self._functions_by_name.setdefault(item.name, []).append(info)
                cls_info.self_attributes.update(_self_attribute_stores(item))

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def functions_named(self, name: str) -> List[FunctionInfo]:
        """Every function or method definition with this simple name."""
        return list(self._functions_by_name.get(name, []))

    def module_function(self, path: str, name: str) -> Optional[FunctionInfo]:
        """A module-level function in a specific file, if defined there."""
        module = self.modules.get(path)
        if module is None:
            return None
        return module.functions.get(name)

    def classes_named(self, name: str) -> List[ClassInfo]:
        return list(self._classes_by_name.get(name, []))

    def all_classes(self) -> Iterator[ClassInfo]:
        for module in self.modules.values():
            yield from module.classes.values()

    def all_functions(self) -> Iterator[FunctionInfo]:
        for infos in self._functions_by_name.values():
            yield from infos

    def classes_with_attribute(self, attribute: str) -> Iterator[ClassInfo]:
        """Classes whose methods assign ``self.<attribute>`` anywhere."""
        for cls_info in self.all_classes():
            if attribute in cls_info.self_attributes:
                yield cls_info
