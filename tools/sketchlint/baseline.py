"""Baseline (grandfathered-findings) support for sketchlint.

New rules land against an existing codebase; findings that are accepted
debt get recorded in a checked-in baseline file and suppressed on later
runs, so the repo gate can stay red-on-regression without forcing a
big-bang cleanup.  Every baseline entry must carry a ``justification`` —
the repo-gate test rejects unexplained entries.

Fingerprints are content-addressed, not line-addressed: an entry is
``(code, path, stripped source line)`` with an occurrence count, so
unrelated edits that shift line numbers do not resurrect baselined
findings, while *new* occurrences of the same pattern past the recorded
count still fail the build.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from tools.sketchlint.engine import LintReport, Violation

BASELINE_VERSION = 1
DEFAULT_BASELINE_PATH = Path(".sketchlint-baseline.json")

Fingerprint = Tuple[str, str, str]  # (code, path, stripped line content)


def _line_content(path: str, line: int, cache: Dict[str, List[str]]) -> str:
    lines = cache.get(path)
    if lines is None:
        try:
            lines = Path(path).read_text(encoding="utf-8").splitlines()
        except OSError:
            lines = []
        cache[path] = lines
    index = line - 1
    if 0 <= index < len(lines):
        return lines[index].strip()
    return ""


def fingerprint_of(
    violation: Violation, cache: Optional[Dict[str, List[str]]] = None
) -> Fingerprint:
    content_cache = cache if cache is not None else {}
    return (
        violation.code,
        violation.path,
        _line_content(violation.path, violation.line, content_cache),
    )


class Baseline:
    """A checked-in map of grandfathered findings with justifications."""

    def __init__(
        self,
        path: Path = DEFAULT_BASELINE_PATH,
        entries: Optional[Dict[Fingerprint, Dict[str, object]]] = None,
    ) -> None:
        self.path = path
        #: fingerprint -> {"count": int, "justification": str}
        self.entries: Dict[Fingerprint, Dict[str, object]] = entries or {}

    # ------------------------------------------------------------------ #
    @classmethod
    def load(cls, path: Path = DEFAULT_BASELINE_PATH) -> "Baseline":
        baseline = cls(path)
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except OSError:
            return baseline
        except ValueError as exc:
            # Tool-facing config error, not library code. sketchlint: disable=SK003
            raise ValueError(  # sketchlint: disable=SK003
                f"{path}: invalid baseline JSON: {exc}"
            ) from exc
        for item in raw.get("findings", []):
            key = (str(item["code"]), str(item["path"]), str(item["content"]))
            baseline.entries[key] = {
                "count": int(item.get("count", 1)),
                "justification": str(item.get("justification", "")),
            }
        return baseline

    def save(self) -> None:
        findings = [
            {
                "code": code,
                "path": path,
                "content": content,
                "count": meta["count"],
                "justification": meta["justification"],
            }
            for (code, path, content), meta in sorted(self.entries.items())
        ]
        payload = {"version": BASELINE_VERSION, "findings": findings}
        self.path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    # ------------------------------------------------------------------ #
    def unjustified(self) -> List[Fingerprint]:
        """Entries missing a justification (repo gate rejects these)."""
        return [
            key
            for key, meta in sorted(self.entries.items())
            if not str(meta.get("justification", "")).strip()
        ]

    def apply(self, report: LintReport) -> LintReport:
        """Drop baselined findings from ``report`` (up to recorded counts)."""
        budget: Dict[Fingerprint, int] = {
            key: int(meta["count"]) for key, meta in self.entries.items()
        }
        content_cache: Dict[str, List[str]] = {}
        kept: List[Violation] = []
        suppressed = 0
        for violation in report.violations:
            key = fingerprint_of(violation, content_cache)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                suppressed += 1
            else:
                kept.append(violation)
        report.violations = kept
        report.baseline_suppressed += suppressed
        return report

    @classmethod
    def from_report(
        cls,
        report: LintReport,
        path: Path = DEFAULT_BASELINE_PATH,
        justification: str = "grandfathered by --update-baseline",
    ) -> "Baseline":
        """Build a baseline covering every finding in ``report``.

        Justifications of entries already present in the on-disk baseline
        are preserved so a refresh never loses the recorded reasoning.
        """
        previous = cls.load(path)
        baseline = cls(path)
        content_cache: Dict[str, List[str]] = {}
        for violation in report.violations:
            key = fingerprint_of(violation, content_cache)
            entry = baseline.entries.setdefault(
                key,
                {
                    "count": 0,
                    "justification": str(
                        previous.entries.get(key, {}).get("justification", "")
                    )
                    or justification,
                },
            )
            entry["count"] = int(entry["count"]) + 1
        return baseline
