"""sketchlint — domain-specific static analysis for sketch data structures.

The DaVinci reproduction is three linear/field-arithmetic components whose
bugs are *silent*: an un-reduced ``iID`` update, a merge of incompatible
geometries, or a float creeping into a counter produces plausible-but-wrong
estimates rather than crashes.  Generic linters cannot see these contracts,
so sketchlint encodes them as AST rules:

=======  ==============================================================
 code    contract
=======  ==============================================================
 SK001   field-arithmetic hygiene — writes to ``iID``/field-residue
         state must be reduced ``% p`` in the same statement
 SK002   no global-state randomness — every ``random.*`` /
         ``np.random.*`` draw must flow through an injected, seeded rng
 SK003   exception discipline — library code raises only ``ReproError``
         subclasses, no bare ``except:``, no ``assert`` (stripped under
         ``python -O``; use :mod:`repro.common.invariants` instead)
 SK004   merge safety — ``merge``/``union``/``subtract``/``difference``
         methods must run a compatibility check before touching counters
 SK005   hot-path purity — per-item ``insert``/``update`` methods must
         not contain try/except, comprehension allocation, or float
         literals on counter state
=======  ==============================================================

Run it with ``python -m tools.sketchlint src/repro``; it exits non-zero on
any violation.  Violations can be suppressed per line with a
``# sketchlint: disable=SK001`` (comma-separated codes, or ``all``)
trailing comment.
"""

from tools.sketchlint.engine import (
    LintReport,
    Rule,
    Violation,
    lint_file,
    lint_paths,
    lint_source,
)
from tools.sketchlint.rules import ALL_RULES, rules_by_code

__all__ = [
    "ALL_RULES",
    "LintReport",
    "Rule",
    "Violation",
    "lint_file",
    "lint_paths",
    "lint_source",
    "rules_by_code",
]
