"""SK005 — hot-path purity.

Per-item ``insert``/``update`` methods are the only code that runs once
per stream element; the throughput figures stand or fall on them.  Three
constructs are banned there:

* **try/except** — setting up a handler per item costs more than the body,
  and silently-caught exceptions are exactly the corruption mode the
  runtime sanitizer exists to surface;
* **comprehension/generator allocation** — a fresh list/dict/generator per
  item is hidden allocator traffic; hoist it to construction time or use
  an explicit loop over preallocated state;
* **float literals** — counters are exact integers (field residues, signed
  counts); a float literal in the update path is how ``0.5``-style
  "corrections" leak inexactness into counter state.  Module-level float
  *constants* (decay bases and the like) remain fine — only literals
  inside the method body are flagged.

Scope: methods named ``insert`` or ``update`` defined inside a class
(``insert_all`` batch helpers are deliberately out of scope — they may
amortize allocations across items).  Abstract declarations are skipped.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.sketchlint.engine import FileContext, Rule, Violation

HOT_METHOD_NAMES = frozenset({"insert", "update"})

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _is_abstract(node: ast.FunctionDef) -> bool:
    for decorator in node.decorator_list:
        name = decorator.attr if isinstance(decorator, ast.Attribute) else (
            decorator.id if isinstance(decorator, ast.Name) else ""
        )
        if name in ("abstractmethod", "abstractproperty"):
            return True
    return False


class HotPathPurityRule(Rule):
    """SK005: insert/update must stay allocation-free, exact, and direct."""

    code = "SK005"
    summary = "per-item insert/update: no try/except, comprehensions, or float literals"

    def check(self, tree: ast.AST, context: FileContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if (
                    isinstance(item, ast.FunctionDef)
                    and item.name in HOT_METHOD_NAMES
                    and not _is_abstract(item)
                ):
                    yield from self._check_method(item, node.name, context)

    # ------------------------------------------------------------------ #
    def _check_method(
        self, node: ast.FunctionDef, class_name: str, context: FileContext
    ) -> Iterator[Violation]:
        where = f"{class_name}.{node.name}"
        for sub in ast.walk(node):
            if isinstance(sub, ast.Try):
                yield self.violation(
                    context,
                    sub,
                    f"try/except in hot path {where}; hoist error handling "
                    "out of the per-item method",
                )
            elif isinstance(sub, _COMPREHENSIONS):
                kind = type(sub).__name__
                yield self.violation(
                    context,
                    sub,
                    f"{kind} allocates per item in hot path {where}; use an "
                    "explicit loop over preallocated state",
                )
            elif isinstance(sub, ast.Constant) and isinstance(sub.value, float):
                yield self.violation(
                    context,
                    sub,
                    f"float literal {sub.value!r} in hot path {where}; "
                    "counter state must stay exact-integer (hoist float "
                    "constants to module level if truly needed)",
                )
