"""SK004 — merge safety.

Mergeable sketches are *linear*: union and difference are counter-wise
add/subtract, which is only meaningful between identically-hashed,
identically-shaped structures.  Combining two sketches that differ in
geometry or seed does not crash — it produces a well-formed structure full
of meaningless counters.  Every ``merge``/``union``/``subtract``/
``difference`` method must therefore establish compatibility *before* it
touches any counter state.

Accepted evidence of a compatibility check (must precede the first
counter write):

* a call to a method/function whose name contains ``check_compatible`` or
  ``check_same_type``;
* an explicit ``raise IncompatibleSketchError(...)`` /
  ``raise ConfigurationError(...)`` (the inline-``if`` style some
  baselines use).

Counter writes are subscript stores (``result.counts[r][c] = ...``) and
attribute stores on objects other than ``self`` (``out.positive = ...``,
``result.registers = [...]``).  Methods that only *delegate* (e.g. CSOA's
``union_with`` calling its constituent's checked ``merge``) touch no
counters and pass vacuously.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from tools.sketchlint.engine import FileContext, Rule, Violation

#: method/function names treated as merge-family operations
MERGE_METHOD_NAMES = frozenset(
    {
        "merge",
        "merged",
        "subtract",
        "subtracted",
        "union",
        "difference",
        "union_with",
        "difference_with",
    }
)

_CHECK_TOKENS = ("check_compatible", "check_same_type")
_CHECK_RAISES = frozenset({"IncompatibleSketchError", "ConfigurationError"})


def _is_abstract(node: ast.FunctionDef) -> bool:
    for decorator in node.decorator_list:
        name = decorator.attr if isinstance(decorator, ast.Attribute) else (
            decorator.id if isinstance(decorator, ast.Name) else ""
        )
        if name in ("abstractmethod", "abstractproperty"):
            return True
    return False


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _first_compat_check(node: ast.FunctionDef) -> Optional[int]:
    """Line of the earliest compatibility-check evidence, if any."""
    best: Optional[int] = None
    for sub in ast.walk(node):
        line: Optional[int] = None
        if isinstance(sub, ast.Call):
            name = _call_name(sub)
            if any(token in name for token in _CHECK_TOKENS):
                line = sub.lineno
        elif isinstance(sub, ast.Raise) and isinstance(sub.exc, ast.Call):
            if _call_name(sub.exc) in _CHECK_RAISES:
                line = sub.lineno
        if line is not None and (best is None or line < best):
            best = line
    return best


def _counter_writes(node: ast.FunctionDef) -> List[Tuple[int, str]]:
    """(line, description) of statements writing counter state."""
    writes: List[Tuple[int, str]] = []
    for sub in ast.walk(node):
        targets: List[ast.expr] = []
        if isinstance(sub, ast.Assign):
            targets = list(sub.targets)
        elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
            targets = [sub.target]
        for target in targets:
            flattened = (
                list(target.elts) if isinstance(target, ast.Tuple) else [target]
            )
            for item in flattened:
                if isinstance(item, ast.Subscript):
                    writes.append((sub.lineno, "subscript store"))
                elif isinstance(item, ast.Attribute):
                    base = item.value
                    if isinstance(base, ast.Name) and base.id != "self":
                        writes.append(
                            (sub.lineno, f"attribute store on '{base.id}'")
                        )
    return writes


class MergeSafetyRule(Rule):
    """SK004: merge-family methods check compatibility before counters."""

    code = "SK004"
    summary = "merge/union/subtract/difference must check compatibility first"

    def check(self, tree: ast.AST, context: FileContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                for item in node.body:
                    if (
                        isinstance(item, ast.FunctionDef)
                        and item.name in MERGE_METHOD_NAMES
                        and not _is_abstract(item)
                    ):
                        yield from self._check_method(item, context)
            elif isinstance(node, ast.Module):
                for item in node.body:
                    if (
                        isinstance(item, ast.FunctionDef)
                        and item.name in MERGE_METHOD_NAMES
                        and len(item.args.args) >= 2
                    ):
                        yield from self._check_method(item, context)

    # ------------------------------------------------------------------ #
    def _check_method(
        self, node: ast.FunctionDef, context: FileContext
    ) -> Iterator[Violation]:
        writes = _counter_writes(node)
        if not writes:
            return  # pure delegation — safety is the delegate's job
        first_write = min(line for line, _ in writes)
        check_line = _first_compat_check(node)
        if check_line is None:
            yield self.violation(
                context,
                node,
                f"merge-family method '{node.name}' touches counters without "
                "any compatibility check (call check_compatible / raise "
                "IncompatibleSketchError before writing)",
            )
        elif check_line > first_write:
            yield self.violation(
                context,
                node,
                f"merge-family method '{node.name}' writes counters on line "
                f"{first_write} before its compatibility check on line "
                f"{check_line}",
            )
