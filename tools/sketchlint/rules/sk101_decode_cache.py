"""SK101 — decode-cache invalidation on every mutating exit path.

Classes that memoize their decode (``self._decode_cache``) must reset the
cache whenever sketch state changes, or a later ``decode()`` returns the
*pre-mutation* answer — the silent-staleness bug class the DaVinci decode
memoization is most exposed to.  The syntactic predecessor rules cannot
see this: invalidation and mutation are routinely in different branches,
different statements, or different (private) methods.

The rule is a path property, checked with the CFG/dataflow engine:

* **entry points** are the class's public methods (helpers prefixed with
  ``_`` are reached through summaries instead, so a public method that
  delegates its mutation *and* its invalidation to a helper is fine);
* a path **mutates** when it stores into any ``self.<attr>`` the class
  owns (other than the cache itself), directly or through a same-class
  helper whose summary says it may mutate;
* a path **invalidates** when it assigns ``self._decode_cache`` (any
  value — ``None`` and a recomputed cache both count), directly or
  through a helper that *must* invalidate on every normal exit.

A method is flagged when some **normal-exit** path mutates without ever
invalidating.  Order within the path is deliberately ignored —
invalidate-then-mutate is the repo's idiom (the cache is cleared up
front) and is just as correct as mutate-then-invalidate.  Paths that
raise are exempt: a failed operation reports the failure; it does not
promise cache coherence.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from tools.sketchlint.cfg import CFG, Node, build_cfg
from tools.sketchlint.dataflow import (
    ForwardAnalysis,
    attribute_chain,
    run_forward,
)
from tools.sketchlint.engine import PackageContext, PackageRule, Violation
from tools.sketchlint.symbols import ClassInfo, FunctionInfo

CACHE_ATTRIBUTE = "_decode_cache"

#: per-sketch bookkeeping counters that do not affect decode answers —
#: mutating them never stales the cache
BOOKKEEPING_ATTRIBUTES = frozenset({"memory_accesses", "insertions"})

#: one path's summary: (has mutated, has invalidated)
PathFacts = Tuple[bool, bool]
#: the lattice element: the set of distinct path summaries reaching here
PathSet = FrozenSet[PathFacts]

_IDENTITY: PathSet = frozenset({(False, False)})


def _is_recorder(name: str) -> bool:
    """Observability recorder helpers — exempt, they touch no sketch state
    that decode reads (the lazily-bound metrics bundle is not state)."""
    return name == "_observe" or name.startswith("_record")


def _self_call_target(call: ast.Call) -> Optional[str]:
    """``self.helper(...)`` -> ``helper``; anything else -> None."""
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
    ):
        return func.attr
    return None


def _compose(paths: PathSet, effects: PathSet) -> PathSet:
    """Sequential composition: every path extended by every callee path."""
    return frozenset(
        (mutated or extra_mutated, invalidated or extra_invalidated)
        for mutated, invalidated in paths
        for extra_mutated, extra_invalidated in effects
    )


def _statement_effects(
    stmt: ast.stmt,
    state_attrs: Set[str],
    summaries: Dict[str, PathSet],
) -> PathSet:
    """The path-set transformer contributed by one simple statement.

    Direct ``self.<attr>`` stores give a single (mutates, invalidates)
    fact; each ``self.helper(...)`` call splices in the helper's own
    per-path summary, so a helper that only mutates on *some* paths does
    not poison the caller's other paths.
    """
    mutates = False
    invalidates = False
    callee_sets: List[PathSet] = []
    for node in ast.walk(stmt):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            chain = attribute_chain(target)
            if not chain or len(chain) < 2 or chain[0] != "self":
                continue
            if chain[1] == CACHE_ATTRIBUTE:
                invalidates = True
            elif chain[1] in state_attrs:
                mutates = True
        if isinstance(node, ast.Call):
            helper = _self_call_target(node)
            if helper is not None and helper in summaries:
                callee_sets.append(summaries[helper])
    effects: PathSet = frozenset({(mutates, invalidates)})
    for callee in callee_sets:
        effects = _compose(effects, callee)
    return effects


class _PathAnalysis(ForwardAnalysis[PathSet]):
    """Tracks the set of (mutated, invalidated) summaries along each path."""

    def __init__(
        self, state_attrs: Set[str], summaries: Dict[str, PathSet]
    ) -> None:
        self.state_attrs = state_attrs
        self.summaries = summaries

    def initial(self) -> PathSet:
        return _IDENTITY

    def join(self, states: List[PathSet]) -> PathSet:
        merged: Set[PathFacts] = set()
        for state in states:
            merged.update(state)
        return frozenset(merged)

    def transfer(self, node: Node, state: PathSet) -> PathSet:
        stmt = node.stmt
        if stmt is None:
            return state
        effects = _statement_effects(stmt, self.state_attrs, self.summaries)
        if effects == _IDENTITY:
            return state
        return _compose(state, effects)


def _analyze_method(
    method: FunctionInfo,
    state_attrs: Set[str],
    summaries: Dict[str, PathSet],
) -> Tuple[Optional[PathSet], CFG]:
    cfg = build_cfg(method.node)
    result = run_forward(cfg, _PathAnalysis(state_attrs, summaries))
    return result.exit_state, cfg


def _compute_summaries(
    cls_info: ClassInfo, state_attrs: Set[str]
) -> Dict[str, PathSet]:
    """Per-method exit path-sets, to a fixpoint.

    Summaries start at the identity path-set and are recomputed from the
    dataflow until stable; recorder helpers are pinned to the identity
    (their lazily-bound metrics bundle is not sketch state).  Ten rounds
    is far beyond any realistic same-class call-chain depth here.
    """
    summaries: Dict[str, PathSet] = {
        name: _IDENTITY for name in cls_info.methods
    }
    pinned = {name for name in cls_info.methods if _is_recorder(name)}
    for _round in range(10):
        changed = False
        for name, method in cls_info.methods.items():
            if name in pinned:
                continue
            exit_state, _cfg = _analyze_method(method, state_attrs, summaries)
            updated = exit_state if exit_state else _IDENTITY
            if updated != summaries[name]:
                summaries[name] = updated
                changed = True
        if not changed:
            break
    return summaries


class DecodeCacheInvalidationRule(PackageRule):
    """SK101: mutating paths must invalidate the decode cache."""

    code = "SK101"
    summary = "state mutations must invalidate self._decode_cache on every exit path"
    description = (
        "In classes that memoize decode results in self._decode_cache, every "
        "public method path that mutates sketch state must also assign the "
        "cache (normally `self._decode_cache = None`) before returning, "
        "directly or via a helper method. A path that mutates and exits "
        "without invalidating serves stale decodes."
    )

    def check_package(self, package: PackageContext) -> Iterator[Violation]:
        for cls_info in package.index.classes_with_attribute(CACHE_ATTRIBUTE):
            state_attrs = {
                attr
                for attr in cls_info.self_attributes
                if attr != CACHE_ATTRIBUTE
                and attr not in BOOKKEEPING_ATTRIBUTES
                and not attr.startswith("_obs")
            }
            if not state_attrs:
                continue
            summaries = _compute_summaries(cls_info, state_attrs)
            for name, method in cls_info.methods.items():
                if name.startswith("_"):
                    continue  # helpers are covered through summaries
                exit_state, _cfg = _analyze_method(method, state_attrs, summaries)
                if not exit_state:
                    continue
                if any(mutated and not inv for mutated, inv in exit_state):
                    yield self.violation_at(
                        method.path,
                        method.node,
                        f"{cls_info.name}.{name} mutates sketch state on a "
                        "path that returns without assigning "
                        f"self.{CACHE_ATTRIBUTE}; a later decode() would "
                        "serve the pre-mutation answer",
                    )
