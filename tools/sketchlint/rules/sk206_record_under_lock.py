"""SK206 — no metrics/trace recording inside a lock region.

The observability layer promises ~1% overhead when disabled and "cheap
enough to leave on" when enabled — but a recorder call under a hot lock
multiplies its cost by every thread queued on that lock, and a trace
sink that blocks (file, socket) turns the lock region into SK202's
convoy.  The service layer already follows the convention by hand:
snapshot state under the lock, release, *then* record (see
``SketchServer._dispatch`` and ``_handle_push``).  This rule generalizes
that convention with the SK102 recorder-call vocabulary on top of the
:mod:`~tools.sketchlint.lockgraph` held-region model.

The ``_observe``/``_record*`` helpers themselves stay exempt — they are
the recording implementation, and the convention is enforced at their
call sites instead.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Optional, Set, Tuple

from tools.sketchlint.engine import PackageContext, PackageRule, Violation
from tools.sketchlint.lockgraph import lock_model

#: module aliases whose calls are observability recording (as in SK102)
_OBS_ROOTS = frozenset({"_obs", "obs", "observability"})

#: control-plane entry points recording rules never flag (as in SK102)
_CONTROL_PLANE = frozenset(
    {"enabled", "disabled", "configure", "snapshot", "reset", "registry"}
)


def _is_recording(chain: Optional[List[str]]) -> bool:
    if not chain:
        return False
    if chain[-1] in _CONTROL_PLANE:
        return False
    if chain[0] in _OBS_ROOTS:
        return True
    if any(part in ("_sink", "_trace") for part in chain) and (
        chain[-1] == "emit"
    ):
        return True
    if chain[0] == "self":
        return any(
            part == "_observe" or part.startswith("_record")
            for part in chain[1:]
        )
    return False


class RecordUnderLockRule(PackageRule):
    """SK206: record after releasing, never inside the lock region."""

    code = "SK206"
    summary = "metrics/trace recording inside a lock region"
    description = (
        "Recorder and trace-sink calls (self._observe().*, "
        "self._record*, self._sink().emit, _obs.*) must not run while a "
        "lock is held: the recording cost is paid by every thread "
        "queued on the lock, and a blocking sink turns the region into "
        "a convoy. Snapshot the state under the lock, release, then "
        "record — the convention the service layer follows by hand. "
        "Held regions include private helpers only ever called under a "
        "lock."
    )

    def check_package(self, package: PackageContext) -> Iterator[Violation]:
        model = lock_model(package)
        seen: Set[Tuple[str, int, int]] = set()
        for key in sorted(model.functions):
            events = model.functions[key]
            name = events.info.name
            if name == "_observe" or name.startswith("_record"):
                continue
            base: FrozenSet[str] = model.callers_held.get(key, frozenset())
            for event in events.calls:
                held = base | frozenset(event.held)
                if not held:
                    continue
                if not _is_recording(event.chain):
                    continue
                # a chained recorder (``_obs.counter(...).inc()``) matches
                # both the inner and the outer call at one source position
                spot = (
                    events.info.path,
                    event.node.lineno,
                    event.node.col_offset,
                )
                if spot in seen:
                    continue
                seen.add(spot)
                locks = ", ".join(f"'{lock}'" for lock in sorted(held))
                yield self.violation_at(
                    events.info.path,
                    event.node,
                    f"recording call while holding {locks}; snapshot "
                    "under the lock and record after releasing it",
                )
