"""SK203 — shared attributes written from thread-reachable code need a lock.

A class that owns locks has declared its instances shared; once a method
is reachable from a thread entry point (a ``threading.Thread(target=...)``
site or a ``socketserver`` ``RequestHandler.handle``), every
``self.<attr>`` store or in-place mutation it performs races with the
other threads unless one of the class's own locks is held.

Reachability and held sets come from the
:mod:`~tools.sketchlint.lockgraph` model: the rule follows the call
graph out of the thread entries and intersects the locks held across
every concurrent call path, so a helper that is only ever invoked under
the right lock stays silent.  ``__init__`` is exempt (the instance has
not escaped yet), as are the ``_observe``/``_record*`` recorder helpers
the observability convention already treats as special — their lazy
memo writes are idempotent by construction (racing initializations
resolve to the same registry-owned instrument).
"""

from __future__ import annotations

from typing import Iterator

from tools.sketchlint.engine import PackageContext, PackageRule, Violation
from tools.sketchlint.lockgraph import lock_model


def _exempt(name: str) -> bool:
    return (
        name == "__init__" or name == "_observe" or name.startswith("_record")
    )


class UnguardedSharedWriteRule(PackageRule):
    """SK203: thread-reachable writes must hold an owning-class lock."""

    code = "SK203"
    summary = "shared attribute written from a thread without its owning lock"
    description = (
        "In a class that declares locks, any self.<attr> assignment or "
        "in-place mutation (append/add/update/...) executed by a method "
        "reachable from a threading.Thread target or a socketserver "
        "handler must happen while one of the class's locks is held — "
        "otherwise concurrent requests race on the shared state. "
        "Escape analysis follows Thread(target=...) and handle() entry "
        "points through the call graph; locks held at every concurrent "
        "call site of a helper count as held inside it. __init__ and "
        "the _observe/_record* recorder helpers are exempt."
    )

    def check_package(self, package: PackageContext) -> Iterator[Violation]:
        model = lock_model(package)
        for key in sorted(model.concurrent_entry_held):
            events = model.functions.get(key)
            if events is None:
                continue
            info = events.info
            if info.class_name is None or _exempt(info.name):
                continue
            class_locks = model.locks_of_class(info.class_name)
            if not class_locks:
                continue
            base = model.concurrent_entry_held[key]
            for write in events.writes:
                if f"{info.class_name}.{write.attr}" in model.decls:
                    continue  # assigning the lock attribute itself
                held = base | frozenset(write.held)
                if held & class_locks:
                    continue
                locks = ", ".join(f"'{lock}'" for lock in sorted(class_locks))
                yield self.violation_at(
                    info.path,
                    write.node,
                    f"'self.{write.attr}' is written from "
                    f"'{info.qualname}', which runs on a service thread, "
                    f"without holding any lock of '{info.class_name}' "
                    f"({locks}); guard the write",
                )
