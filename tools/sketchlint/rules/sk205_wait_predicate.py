"""SK205 — ``Condition.wait()`` must sit in a predicate re-check loop.

``wait()`` can return for reasons other than the predicate becoming
true: spurious wakeups are permitted by the underlying primitives,
``notify_all`` wakes every waiter though only one can consume the
state change, and a timeout expiry returns with the predicate still
false.  The only correct shape is the classic loop::

    with cond:
        while not predicate():
            cond.wait(timeout=...)

An ``if``-guarded (or bare) wait acts on stale state after waking.
``wait_for`` embeds the loop and is always fine.  The drain loop in
``SketchServer.close`` — ``while self._inflight > 0: ...wait(...)`` —
is the in-repo reference for the pattern this rule enforces.
"""

from __future__ import annotations

from typing import Iterator

from tools.sketchlint.engine import PackageContext, PackageRule, Violation
from tools.sketchlint.lockgraph import lock_model


class ConditionWaitLoopRule(PackageRule):
    """SK205: every Condition.wait() needs an enclosing predicate loop."""

    code = "SK205"
    summary = "Condition.wait() outside a predicate re-check loop"
    description = (
        "Condition variables wake spuriously, notify_all over-wakes, "
        "and timeouts expire with the predicate still false — wait() "
        "must be wrapped in `while not predicate(): cond.wait(...)`, "
        "never in a plain `if` or a bare call. wait_for() embeds the "
        "re-check loop and is exempt."
    )

    def check_package(self, package: PackageContext) -> Iterator[Violation]:
        model = lock_model(package)
        for key in sorted(model.functions):
            events = model.functions[key]
            for wait in events.waits:
                if wait.in_loop:
                    continue
                yield self.violation_at(
                    events.info.path,
                    wait.node,
                    f"wait() on '{wait.lock}' is not wrapped in a "
                    "predicate re-check loop; use `while not "
                    "predicate(): cond.wait(...)` (or wait_for) so "
                    "spurious wakeups and timeouts re-test the state",
                )
