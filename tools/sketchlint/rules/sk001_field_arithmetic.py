"""SK001 — field-arithmetic hygiene.

The infrequent part and the Fermat sketches store ``iID`` residues in the
prime field: every *element write* into that state must be reduced modulo
the field prime **in the same statement**, otherwise a later decode sees an
out-of-range residue and silently mis-inverts (the count is plausible, the
key is wrong — the worst failure mode an invertible sketch has).

Checked targets are subscript stores whose root name is field state
(``ids``, ``iid``, ``id_sum`` — case-insensitive), e.g.::

    self.ids[row][j] = (self.ids[row][j] + count * key) % p   # ok
    self.ids[row][j] = self.ids[row][j] + count * key          # SK001
    self.ids[row][j] += count * key                            # SK001
    self.ids[row][j] %= p                                      # ok

Whole-array (re)bindings (``self.ids = [[0] * w ...]``) are structural and
exempt; so is a top-level call to the sanctioned reducer ``to_field``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from tools.sketchlint.engine import FileContext, Rule, Violation

#: names whose subscripted stores are treated as field-residue state
FIELD_STATE_NAMES = frozenset({"ids", "iid", "id_sum", "idsum"})

#: arithmetic operators that can push a residue out of the field
_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Pow, ast.Div, ast.FloorDiv)

#: functions accepted as an explicit in-statement reduction
_SANCTIONED_REDUCERS = frozenset({"to_field"})


def _subscript_root(node: ast.expr) -> Optional[str]:
    """The root field name of a subscript chain, if any.

    ``self.ids[row][j]`` → ``ids``; ``ids[j]`` → ``ids``; anything whose
    chain does not bottom out in a recognized field name → ``None``.
    """
    current = node
    while isinstance(current, ast.Subscript):
        current = current.value
    if isinstance(current, ast.Attribute):
        name = current.attr
    elif isinstance(current, ast.Name):
        name = current.id
    else:
        return None
    return name if name.lower() in FIELD_STATE_NAMES else None


def _contains_arithmetic(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, _ARITH_OPS):
            return True
        if isinstance(sub, ast.UnaryOp) and isinstance(sub.op, (ast.USub, ast.UAdd)):
            return True
    return False


def _is_reduced(rhs: ast.expr) -> bool:
    """True when the statement's value is reduced at its top level."""
    if isinstance(rhs, ast.BinOp) and isinstance(rhs.op, ast.Mod):
        return True
    if isinstance(rhs, ast.Call):
        func = rhs.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        if name in _SANCTIONED_REDUCERS:
            return True
    return False


class FieldArithmeticRule(Rule):
    """SK001: writes into ``iID`` field state must be reduced ``% p``."""

    code = "SK001"
    summary = "field-residue writes must be reduced modulo p in the same statement"

    def check(self, tree: ast.AST, context: FileContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.AugAssign):
                yield from self._check_augassign(node, context)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                yield from self._check_assign(node, context)

    # ------------------------------------------------------------------ #
    def _field_targets(self, node: ast.stmt) -> Iterator[Tuple[ast.expr, str]]:
        if isinstance(node, ast.Assign):
            targets = node.targets
        else:
            targets = [node.target]  # type: ignore[attr-defined]
        for target in targets:
            if isinstance(target, ast.Subscript):
                root = _subscript_root(target)
                if root is not None:
                    yield target, root

    def _check_augassign(
        self, node: ast.AugAssign, context: FileContext
    ) -> Iterator[Violation]:
        if not isinstance(node.target, ast.Subscript):
            return
        root = _subscript_root(node.target)
        if root is None:
            return
        if isinstance(node.op, ast.Mod):
            return  # ``ids[j] %= p`` is itself a reduction
        if isinstance(node.op, _ARITH_OPS):
            yield self.violation(
                context,
                node,
                f"augmented arithmetic on field state '{root}' cannot be "
                "reduced in the same statement; write "
                f"'{root}[...] = ({root}[...] <op> ...) % p' instead",
            )

    def _check_assign(self, node: ast.stmt, context: FileContext) -> Iterator[Violation]:
        value = getattr(node, "value", None)
        if value is None:
            return
        for _target, root in self._field_targets(node):
            if _contains_arithmetic(value) and not _is_reduced(value):
                yield self.violation(
                    context,
                    node,
                    f"arithmetic written into field state '{root}' is not "
                    "reduced '% p' at the top level of the statement",
                )
