"""SK102 — observability must stay behind hoisted ``_obs.ENABLED`` guards.

The observability layer is pinned to ~1% overhead when disabled, and that
pin rests on two conventions everywhere in the hot paths:

1. every recorder/metrics call sits on a path dominated by a truthy
   ``_obs.ENABLED`` check (directly, or via a variable assigned from it,
   idiomatically ``observing = _obs.ENABLED``); and
2. the ``ENABLED`` attribute itself is read **once per operation**, never
   once per item — inside a loop the module-attribute load is the
   overhead, so the read must be hoisted and the loop may branch on the
   saved local.

This is the dataflow rule the syntactic SK00x passes could not express:
"guarded" is a property of paths, not of lexical nesting (a guard inside
a loop body whose both arms immediately leave the loop is fine; a guard
lexically outside any loop but re-evaluated through a ``continue`` cycle
is not).  The CFG's ``on_cycle`` answers the hoisting question exactly:
can this ``ENABLED`` read execute more than once per call?

Recorder helpers themselves (``_observe``, ``_record_*``) are exempt —
they are the guarded region's implementation, called only after a guard.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from tools.sketchlint.cfg import KIND_BRANCH, KIND_STMT, Node, build_cfg
from tools.sketchlint.dataflow import TagAnalysis, TagState, run_forward
from tools.sketchlint.engine import FileContext, Rule, Violation

#: module aliases whose ``.ENABLED`` is the observability kill switch
OBS_ROOTS = frozenset({"_obs", "obs", "observability"})

#: control-plane entry points — enabling, configuring and dumping the
#: observability layer happens *outside* any guard by definition
CONTROL_PLANE = frozenset(
    {"enabled", "disabled", "configure", "snapshot", "reset", "registry"}
)

#: pseudo-variable carrying the "path is guarded" fact
_GUARD = "@guarded"
_TAG_GUARDED = "guarded"
#: tag for locals holding a saved ``_obs.ENABLED`` value
_TAG_OBSVAL = "obsval"

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_NESTED_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _chain_through_calls(node: ast.expr) -> Optional[List[str]]:
    """Attribute chain that looks through calls and subscripts.

    ``self._observe().rejections.inc`` -> ``["self", "_observe",
    "rejections", "inc"]`` — needed because recorder access is lazy.
    """
    parts: List[str] = []
    current: ast.expr = node
    while True:
        if isinstance(current, ast.Subscript):
            current = current.value
        elif isinstance(current, ast.Call):
            current = current.func
        elif isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        elif isinstance(current, ast.Name):
            parts.append(current.id)
            return list(reversed(parts))
        else:
            return None


def _is_enabled_read(expr: ast.expr) -> bool:
    """True for a bare ``_obs.ENABLED`` attribute load."""
    return (
        isinstance(expr, ast.Attribute)
        and expr.attr == "ENABLED"
        and isinstance(expr.value, ast.Name)
        and expr.value.id in OBS_ROOTS
    )


def _is_obs_call(call: ast.Call) -> bool:
    chain = _chain_through_calls(call.func)
    if not chain:
        return False
    if chain[-1] in CONTROL_PLANE:
        return False
    if chain[0] in OBS_ROOTS:
        return True
    if chain[0] == "self":
        return any(
            part == "_observe" or part.startswith("_record") for part in chain[1:]
        )
    return False


def _shallow_walk(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Walk a statement without descending into nested scopes."""
    queue: List[ast.AST] = [stmt]
    while queue:
        node = queue.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _NESTED_SCOPES):
                continue
            queue.append(child)


def _implies_enabled(expr: ast.expr, state: TagState) -> bool:
    """Does this test expression being *truthy* imply ENABLED is truthy?"""
    if _is_enabled_read(expr):
        return True
    if isinstance(expr, ast.Name) and state.has(expr.id, _TAG_OBSVAL):
        return True
    if isinstance(expr, ast.BoolOp) and isinstance(expr.op, ast.And):
        return any(_implies_enabled(value, state) for value in expr.values)
    return False


class _GuardAnalysis(TagAnalysis):
    """Propagates guardedness and saved-ENABLED locals along the CFG."""

    def transfer(self, node: Node, state: TagState) -> TagState:
        stmt = node.stmt
        if isinstance(stmt, ast.Assign):
            is_obsval = _is_enabled_read(stmt.value) or (
                isinstance(stmt.value, ast.Name)
                and state.has(stmt.value.id, _TAG_OBSVAL)
            )
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if is_obsval:
                        state = state.set(target.id, {_TAG_OBSVAL})
                    else:
                        state = state.clear(target.id)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(stmt.target, ast.Name):
                state = state.clear(stmt.target.id)
        return state

    def refine(
        self, test: Optional[ast.expr], label: Optional[str], state: TagState
    ) -> TagState:
        if test is None:
            return state
        if label == "true" and _implies_enabled(test, state):
            return state.set(_GUARD, {_TAG_GUARDED})
        if (
            label == "false"
            and isinstance(test, ast.UnaryOp)
            and isinstance(test.op, ast.Not)
            and _implies_enabled(test.operand, state)
        ):
            return state.set(_GUARD, {_TAG_GUARDED})
        if label == "false" and _implies_enabled(test, state):
            # definitely-disabled arm: drop any (contradictory) guard fact
            return state.clear(_GUARD)
        return state


class ObsGuardRule(Rule):
    """SK102: obs calls need a dominating guard; guard reads must be hoisted."""

    code = "SK102"
    summary = "observability calls must be _obs.ENABLED-guarded; hoist the read out of loops"
    description = (
        "Metrics/tracing recorder calls must execute only on paths where a "
        "_obs.ENABLED check (or a local saved from it) is known truthy, and "
        "the ENABLED attribute itself must not be re-read on a control-flow "
        "cycle — hoist `observing = _obs.ENABLED` before the loop and branch "
        "on the local instead. Keeps the disabled-observability overhead "
        "within its pinned budget."
    )

    def check(self, tree: ast.AST, context: FileContext) -> Iterator[Violation]:
        for func in ast.walk(tree):
            if not isinstance(func, _FUNC_NODES):
                continue
            if func.name == "_observe" or func.name.startswith("_record"):
                continue
            yield from self._check_function(func, context)

    # ------------------------------------------------------------------ #
    def _check_function(
        self, func: ast.AST, context: FileContext
    ) -> Iterator[Violation]:
        cfg = build_cfg(func)
        result = run_forward(cfg, _GuardAnalysis())
        for node in cfg.nodes.values():
            if node.kind == KIND_BRANCH:
                if (
                    node.test is not None
                    and cfg.on_cycle(node)
                    and any(
                        _is_enabled_read(sub) for sub in ast.walk(node.test)
                    )
                ):
                    yield self.violation(
                        context,
                        node.test,
                        "_obs.ENABLED is re-read on every loop iteration; "
                        "hoist `observing = _obs.ENABLED` before the loop "
                        "and branch on the local",
                    )
                continue
            if node.kind != KIND_STMT or node.stmt is None:
                continue
            before = result.before.get(node.uid)
            if before is None:
                continue  # unreachable statement
            if cfg.on_cycle(node) and not isinstance(node.stmt, _FUNC_NODES):
                for sub in _shallow_walk(node.stmt):
                    if isinstance(sub, ast.expr) and _is_enabled_read(sub):
                        yield self.violation(
                            context,
                            sub,
                            "_obs.ENABLED is re-read on every loop "
                            "iteration; hoist the read before the loop",
                        )
                        break
            if not before.has(_GUARD, _TAG_GUARDED):
                for sub in _shallow_walk(node.stmt):
                    if isinstance(sub, ast.Call) and _is_obs_call(sub):
                        yield self.violation(
                            context,
                            sub,
                            "observability call on a path with no truthy "
                            "_obs.ENABLED guard; wrap it in "
                            "`if _obs.ENABLED:` (or a hoisted local)",
                        )
                        break
