"""SK105 — ``DegradationPolicy`` must thread through task consumers.

The degradation contract (ROADMAP: "graceful decode degradation") holds
only if the ``policy=`` a caller hands to a facade actually reaches the
task implementation doing the work.  Three ways the thread gets dropped,
each checked against the whole-package symbol index:

* **signature asymmetry** — a facade method accepts ``policy`` but the
  same-named task-consumer function it pairs with (a module-level
  function of the same name elsewhere in the package) does not, or vice
  versa: one half of the pair silently cannot receive the setting;
* **dropped forwarding** — inside a function that accepts ``policy``, a
  *delegation call* (a call to a function with the caller's own name —
  the facade→task hop) omits ``policy=`` on a path where the dataflow
  engine cannot prove ``policy is None``.  The repo's idiom branches on
  ``policy is not None`` and forwards inside the non-None arm; the CFG
  refinement recognizes exactly that, so the bare call in the
  known-None arm stays legal;
* **dead parameter** — a function accepts ``policy`` and never loads it
  (``typing.overload`` stubs and empty/abstract bodies are exempt).

Calls to *differently named* policy-aware callees are deliberately not
checked: composing tasks apply the policy at their own boundary
(e.g. ``heavy_changers`` calling ``difference`` without a policy is the
documented design), and flagging those would teach people to pass
``policy`` twice.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from tools.sketchlint.cfg import build_cfg, Node
from tools.sketchlint.dataflow import TagAnalysis, TagState, run_forward
from tools.sketchlint.engine import PackageContext, PackageRule, Violation
from tools.sketchlint.symbols import FunctionInfo, SymbolIndex

PARAM = "policy"

#: tag meaning "may hold a non-None policy on this path"
_TAG_MAYBE = "maybe-set"

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _is_overload_stub(func: ast.AST) -> bool:
    for decorator in getattr(func, "decorator_list", []):
        name = ""
        if isinstance(decorator, ast.Name):
            name = decorator.id
        elif isinstance(decorator, ast.Attribute):
            name = decorator.attr
        if name == "overload":
            return True
    return False


def _is_trivial_body(func: ast.AST) -> bool:
    """Docstring/``...``/``pass``/``raise``-only bodies (stubs, abstracts)."""
    for stmt in getattr(func, "body", []):
        if isinstance(stmt, (ast.Pass, ast.Raise)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or Ellipsis
        return False
    return True


def _loads_param(func: ast.AST, param: str) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and node.id == param and isinstance(
            node.ctx, ast.Load
        ):
            return True
    return False


def _is_policy_none_test(test: ast.expr) -> Optional[bool]:
    """``policy is not None`` -> True; ``policy is None`` -> False; else None.

    The return value is "does the *truthy* arm imply policy is set?".
    """
    if not (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.left, ast.Name)
        and test.left.id == PARAM
        and len(test.comparators) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        return None
    if isinstance(test.ops[0], ast.IsNot):
        return True
    if isinstance(test.ops[0], ast.Is):
        return False
    return None


class _PolicyAnalysis(TagAnalysis):
    """Tracks whether ``policy`` may still be non-None on each path."""

    def initial(self) -> TagState:
        return TagState().set(PARAM, {_TAG_MAYBE})

    def transfer(self, node: Node, state: TagState) -> TagState:
        stmt = node.stmt
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == PARAM:
                    value = stmt.value
                    if isinstance(value, ast.Constant) and value.value is None:
                        state = state.clear(PARAM)
                    else:
                        state = state.set(PARAM, {_TAG_MAYBE})
        return state

    def refine(
        self, test: Optional[ast.expr], label: Optional[str], state: TagState
    ) -> TagState:
        if test is None:
            return state
        implies_set = _is_policy_none_test(test)
        if implies_set is None:
            return state
        # the arm on which policy is known-None:
        none_label = "false" if implies_set else "true"
        if label == none_label:
            return state.clear(PARAM)
        return state.set(PARAM, {_TAG_MAYBE})


def _delegation_calls(stmt: ast.stmt, own_name: str) -> Iterator[ast.Call]:
    """Calls to a function with the enclosing function's own name."""
    for node in ast.walk(stmt):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name) else ""
        )
        if name == own_name:
            yield node


def _forwards_policy(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == PARAM:
            return True
        if keyword.arg is None:  # **kwargs may carry it; stay silent
            return True
    for arg in call.args:
        if isinstance(arg, ast.Name) and arg.id == PARAM:
            return True
    return False


class PolicyThreadingRule(PackageRule):
    """SK105: facades and task consumers must agree on and forward policy."""

    code = "SK105"
    summary = "degradation policy must be accepted and forwarded by task consumers"
    description = (
        "Facade methods and their same-named task-consumer functions must "
        "agree on accepting policy=, a function accepting policy must not "
        "ignore it, and a delegation call (facade to same-named task "
        "function) must forward policy= on every path where it may be "
        "non-None. Otherwise a caller's degradation setting is silently "
        "dropped between layers."
    )

    def check_package(self, package: PackageContext) -> Iterator[Violation]:
        index = package.index
        yield from self._check_signatures(index)
        for info in index.all_functions():
            if _is_overload_stub(info.node) or _is_trivial_body(info.node):
                continue
            if not info.has_param(PARAM):
                continue
            yield from self._check_dead_param(info)
            yield from self._check_forwarding(info)

    # ------------------------------------------------------------------ #
    def _check_signatures(self, index: SymbolIndex) -> Iterator[Violation]:
        """Flag facades whose task-consumer side cannot accept policy.

        Name-only resolution cannot tell the real delegation target from
        an identically named reference oracle (``workloads.groundtruth``
        defines ``heavy_hitters`` etc. as ground-truth checks), so the
        pairing is conservative: the contract is satisfied as soon as
        *any* same-named module-level function accepts ``policy``.  Only
        when every candidate lacks the parameter is the thread provably
        broken, and then every candidate is reported.
        """
        seen: Set[int] = set()
        for info in index.all_functions():
            if not info.is_method or not info.has_param(PARAM):
                continue
            if _is_overload_stub(info.node):
                continue
            partners = [
                other
                for other in index.functions_named(info.name)
                if not other.is_method and not _is_overload_stub(other.node)
            ]
            if not partners or any(p.has_param(PARAM) for p in partners):
                continue
            for partner in partners:
                if id(partner.node) in seen:
                    continue
                seen.add(id(partner.node))
                yield self.violation_at(
                    partner.path,
                    partner.node,
                    f"task consumer {partner.name}() pairs with the "
                    f"policy-accepting facade {info.qualname} but no "
                    f"same-named function accepts '{PARAM}' — the "
                    "caller's degradation setting cannot reach the task",
                )

    def _check_dead_param(self, info: FunctionInfo) -> Iterator[Violation]:
        if not _loads_param(info.node, PARAM):
            yield self.violation_at(
                info.path,
                info.node,
                f"{info.qualname} accepts '{PARAM}' but never uses it; the "
                "argument is silently dropped — forward it or remove the "
                "parameter",
            )

    def _check_forwarding(self, info: FunctionInfo) -> Iterator[Violation]:
        cfg = build_cfg(info.node)
        result = run_forward(cfg, _PolicyAnalysis())
        reported: Set[int] = set()
        for node in cfg.statement_nodes():
            stmt = node.stmt
            if stmt is None:
                continue
            state = result.before.get(node.uid)
            if state is None or not state.has(PARAM, _TAG_MAYBE):
                continue
            for call in _delegation_calls(stmt, info.name):
                if _forwards_policy(call) or id(call) in reported:
                    continue
                reported.add(id(call))
                yield self.violation_at(
                    info.path,
                    call,
                    f"delegation call to {info.name}() drops '{PARAM}=' on "
                    "a path where it may be non-None; forward "
                    f"{PARAM}={PARAM} (the known-None branch may omit it)",
                )
