"""SK202 — no blocking calls while holding a lock.

A lock region is a convoy: every thread that wants the lock waits for
the holder, so the holder must not block on anything slower than memory.
Socket I/O, ``time.sleep``, unbounded ``queue.put``/``get``, ``fsync``,
subprocess waits and timeout-less ``join()`` calls inside a held region
turn one slow peer into a server-wide stall — exactly the failure mode
the service layer's bounded-admission design exists to prevent.

``Condition.wait()`` on the *held* condition is the one legitimate
"block under lock": waiting releases the condition's own lock.  Waiting
while holding any *other* lock is still reported (those are not
released).  Held regions come from the :mod:`~tools.sketchlint.lockgraph`
model, so a private helper only ever called with a lock held (the
callers-held intersection) is checked too.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Optional

from tools.sketchlint.engine import PackageContext, PackageRule, Violation
from tools.sketchlint.lockgraph import CallEvent, lock_model

#: method/function names that block on the network or the disk
_BLOCKING_IO = frozenset(
    {
        "accept",
        "connect",
        "create_connection",
        "fsync",
        "recv",
        "recv_into",
        "recvfrom",
        "recv_message",
        "select",
        "send",
        "sendall",
        "sendto",
        "send_message",
    }
)

#: subprocess entry points that wait for the child
_SUBPROCESS_WAITS = frozenset(
    {"call", "check_call", "check_output", "communicate", "run"}
)


def _has_timeout(call: ast.Call) -> bool:
    return any(kw.arg == "timeout" for kw in call.keywords)


def _blocks(event: CallEvent) -> Optional[str]:
    """Why this call blocks, or None when it does not."""
    chain = event.chain
    if not chain:
        return None
    last = chain[-1]
    call = event.node
    if last in _BLOCKING_IO:
        return f"'{'.'.join(chain)}' blocks on I/O"
    if last == "sleep":
        return f"'{'.'.join(chain)}' stalls every waiter"
    if last == "join" and not call.args and not _has_timeout(call):
        return f"'{'.'.join(chain)}' waits without a timeout"
    if last in ("put", "get"):
        if not any("queue" in part.lower() for part in chain[:-1]):
            return None
        if _has_timeout(call):
            return None
        if any(
            kw.arg == "block"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is False
            for kw in call.keywords
        ):
            return None
        return f"'{'.'.join(chain)}' blocks without a timeout"
    if last in _SUBPROCESS_WAITS and chain[0] == "subprocess":
        return f"'{'.'.join(chain)}' waits for a child process"
    return None


def _render_held(held: FrozenSet[str]) -> str:
    return ", ".join(f"'{lock}'" for lock in sorted(held))


class BlockingUnderLockRule(PackageRule):
    """SK202: lock regions must not perform blocking calls."""

    code = "SK202"
    summary = "no blocking I/O, sleeps or unbounded waits inside a lock region"
    description = (
        "Socket send/recv/accept/connect, time.sleep, fsync, select, "
        "subprocess waits, timeout-less join() and unbounded queue "
        "put/get must not run while a lock is held: every other thread "
        "needing the lock inherits the stall. Held regions are tracked "
        "lexically through with-blocks and acquire/release pairs, and "
        "interprocedurally into private helpers only ever called under "
        "a lock. Condition.wait() on the held condition itself is "
        "exempt (waiting releases that lock), but waiting while holding "
        "any other lock is reported."
    )

    def check_package(self, package: PackageContext) -> Iterator[Violation]:
        model = lock_model(package)
        for key in sorted(model.functions):
            events = model.functions[key]
            base = model.callers_held.get(key, frozenset())
            for event in events.calls:
                held = base | frozenset(event.held)
                if not held:
                    continue
                reason = _blocks(event)
                if reason is None:
                    continue
                yield self.violation_at(
                    events.info.path,
                    event.node,
                    f"{reason} while holding {_render_held(held)}; move "
                    "it outside the lock region or bound it with a "
                    "timeout",
                )
            for wait in events.waits:
                others = (base | frozenset(wait.held)) - {wait.lock}
                if not others:
                    continue
                yield self.violation_at(
                    events.info.path,
                    wait.node,
                    f"Condition.wait() on '{wait.lock}' releases only "
                    f"its own lock; still holding {_render_held(others)} "
                    "while blocked",
                )
