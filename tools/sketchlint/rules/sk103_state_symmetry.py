"""SK103 — ``to_state``/``from_state`` key-set symmetry.

The wire-v2 state dict is written by one function and read back by
another, usually far apart (and partly through helpers like
``sign_state``/``verify_state``).  A key written but never read is dead
payload that silently bloats every checkpoint; a key read but never
written is a latent ``KeyError`` (or a silently-None ``.get``) that only
fires on the restore path — the one exercised least in tests.

The rule pairs serializer/deserializer functions per scope (the
module-level pair and any per-class method pair, for each name pair in
:data:`PAIR_NAMES`) and compares the key sets:

* **written** keys: string keys of dict literals bound to the state
  variable, ``state["k"] = ...`` subscript stores, ``state.setdefault``/
  ``state.update({...})`` — plus, one call level deep, subscript stores
  to the matching parameter of a same-package helper the dict is passed
  to (how ``sign_state`` adds ``digest``);
* **read** keys: ``state["k"]`` loads, ``state.get("k")``/``pop``,
  ``"k" in state`` membership, and loop-membership reads
  (``for f in ("a", "b"): state[f]``) — again following the dict one
  call level into helpers such as ``verify_state``.

Scopes where either side's key set comes out empty are skipped: a pair
that just delegates (``return serialization.to_state(self)``) carries no
key information and must not drown the report in noise.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from tools.sketchlint.dataflow import call_name
from tools.sketchlint.engine import PackageContext, PackageRule, Violation
from tools.sketchlint.symbols import FunctionInfo, SymbolIndex

#: serializer/deserializer name pairs checked for key symmetry
PAIR_NAMES: Tuple[Tuple[str, str], ...] = (
    ("to_state", "from_state"),
    ("to_wire", "from_wire"),
)

_GET_METHODS = frozenset({"get", "pop"})


def _const_str(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _tuple_consts(node: ast.expr) -> List[str]:
    """String constants of a tuple/list literal (else empty)."""
    if isinstance(node, (ast.Tuple, ast.List)):
        found = [_const_str(element) for element in node.elts]
        return [value for value in found if value is not None]
    return []


def _loop_alias_map(func: ast.AST) -> Dict[str, List[str]]:
    """``for f in ("a", "b"):`` -> ``{"f": ["a", "b"]}``."""
    aliases: Dict[str, List[str]] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.For) and isinstance(node.target, ast.Name):
            consts = _tuple_consts(node.iter)
            if consts:
                aliases.setdefault(node.target.id, []).extend(consts)
    return aliases


def _keys_from_subscript(
    sub: ast.Subscript, var: str, aliases: Dict[str, List[str]]
) -> List[str]:
    if not (isinstance(sub.value, ast.Name) and sub.value.id == var):
        return []
    index = sub.slice
    key = _const_str(index)
    if key is not None:
        return [key]
    if isinstance(index, ast.Name) and index.id in aliases:
        return list(aliases[index.id])
    return []


class _KeyCollector:
    """Reads/writes of string keys on one dict variable in one function."""

    def __init__(self, index: SymbolIndex, path: str) -> None:
        self.index = index
        self.path = path

    # ------------------------------------------------------------------ #
    def collect(
        self, func: ast.AST, var: str, follow_calls: bool = True
    ) -> Tuple[Set[str], Set[str]]:
        """(written, read) key sets for ``var`` inside ``func``."""
        written: Set[str] = set()
        read: Set[str] = set()
        aliases = _loop_alias_map(func)
        tracked = {var}
        # one extra name: ``state = {...}`` then returned via helper chains
        for node in ast.walk(func):
            # writes --------------------------------------------------- #
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        for name in tracked:
                            written.update(
                                _keys_from_subscript(target, name, aliases)
                            )
                    if isinstance(target, ast.Name) and target.id in tracked:
                        if isinstance(node.value, ast.Dict):
                            written.update(
                                key
                                for key in map(
                                    lambda k: _const_str(k) if k else None,
                                    node.value.keys,
                                )
                                if key is not None
                            )
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if (
                    isinstance(node.target, ast.Name)
                    and node.target.id in tracked
                    and isinstance(node.value, ast.Dict)
                ):
                    written.update(
                        key
                        for key in (
                            _const_str(k) for k in node.value.keys if k
                        )
                        if key is not None
                    )
            # reads ---------------------------------------------------- #
            if isinstance(node, ast.Subscript) and isinstance(
                node.ctx, ast.Load
            ):
                for name in tracked:
                    read.update(_keys_from_subscript(node, name, aliases))
            if isinstance(node, ast.Compare) and node.ops:
                if isinstance(node.ops[0], (ast.In, ast.NotIn)):
                    comparator = node.comparators[0]
                    if (
                        isinstance(comparator, ast.Name)
                        and comparator.id in tracked
                    ):
                        key = _const_str(node.left)
                        if key is not None:
                            read.add(key)
                        elif (
                            isinstance(node.left, ast.Name)
                            and node.left.id in aliases
                        ):
                            read.update(aliases[node.left.id])
            if isinstance(node, ast.Call):
                func_expr = node.func
                if (
                    isinstance(func_expr, ast.Attribute)
                    and isinstance(func_expr.value, ast.Name)
                    and func_expr.value.id in tracked
                ):
                    if func_expr.attr in _GET_METHODS and node.args:
                        key = _const_str(node.args[0])
                        if key is not None:
                            read.add(key)
                    elif func_expr.attr == "setdefault" and node.args:
                        key = _const_str(node.args[0])
                        if key is not None:
                            written.add(key)
                    elif func_expr.attr == "update":
                        for arg in node.args:
                            if isinstance(arg, ast.Dict):
                                written.update(
                                    key
                                    for key in (
                                        _const_str(k) for k in arg.keys if k
                                    )
                                    if key is not None
                                )
                elif follow_calls:
                    helper_written, helper_read = self._follow_call(
                        node, tracked
                    )
                    written.update(helper_written)
                    read.update(helper_read)
        return written, read

    # ------------------------------------------------------------------ #
    def _follow_call(
        self, call: ast.Call, tracked: Set[str]
    ) -> Tuple[Set[str], Set[str]]:
        """Keys a same-package helper touches on the dict we pass it."""
        positions = [
            position
            for position, arg in enumerate(call.args)
            if isinstance(arg, ast.Name) and arg.id in tracked
        ]
        if not positions:
            return set(), set()
        name = call_name(call)
        candidates = [
            info
            for info in self.index.functions_named(name)
            if not info.is_method
        ]
        if len(candidates) != 1:
            return set(), set()  # unresolvable or ambiguous: stay silent
        helper = candidates[0]
        params = helper.positional_param_names()
        written: Set[str] = set()
        read: Set[str] = set()
        for position in positions:
            if position >= len(params):
                continue
            helper_written, helper_read = self.collect(
                helper.node, params[position], follow_calls=False
            )
            written.update(helper_written)
            read.update(helper_read)
        return written, read


def _first_param(info: FunctionInfo) -> Optional[str]:
    params = info.positional_param_names()
    if info.is_method and params and params[0] in ("self", "cls"):
        params = params[1:]
    return params[0] if params else None


def _state_var_for_writer(info: FunctionInfo) -> Optional[str]:
    """The local the state dict is built in (first dict-literal binding)."""
    for node in ast.walk(info.node):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Dict):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    return target.id
        if (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.value, ast.Dict)
            and isinstance(node.target, ast.Name)
        ):
            return node.target.id
    return None


class StateSymmetryRule(PackageRule):
    """SK103: serializer and deserializer must agree on the key set."""

    code = "SK103"
    summary = "to_state/from_state (and wire) pairs must read and write the same keys"
    description = (
        "For each to_state/from_state (and to_wire/from_wire) pair in the "
        "same module or class, the set of string keys the serializer writes "
        "into the state dict must equal the set the deserializer reads "
        "(helpers like sign_state/verify_state are followed one call deep). "
        "Written-never-read keys are dead checkpoint payload; "
        "read-never-written keys are restore-path KeyErrors."
    )

    def check_package(self, package: PackageContext) -> Iterator[Violation]:
        for writer, reader in self._pairs(package.index):
            yield from self._check_pair(package.index, writer, reader)

    # ------------------------------------------------------------------ #
    def _pairs(
        self, index: SymbolIndex
    ) -> Iterator[Tuple[FunctionInfo, FunctionInfo]]:
        for module in index.modules.values():
            for write_name, read_name in PAIR_NAMES:
                writer = module.functions.get(write_name)
                reader = module.functions.get(read_name)
                if writer is not None and reader is not None:
                    yield writer, reader
            for cls_info in module.classes.values():
                for write_name, read_name in PAIR_NAMES:
                    writer = cls_info.methods.get(write_name)
                    reader = cls_info.methods.get(read_name)
                    if writer is not None and reader is not None:
                        yield writer, reader

    def _check_pair(
        self,
        index: SymbolIndex,
        writer: FunctionInfo,
        reader: FunctionInfo,
    ) -> Iterator[Violation]:
        write_var = _state_var_for_writer(writer)
        if write_var is None:
            return
        read_var = _first_param(reader)
        if read_var is None:
            return
        collector = _KeyCollector(index, writer.path)
        written, _ = collector.collect(writer.node, write_var)
        _, read = collector.collect(reader.node, read_var)
        if not written or not read:
            return  # a delegating pair carries no key information
        unread = sorted(written - read)
        unwritten = sorted(read - written)
        scope = writer.qualname.rsplit(".", 1)[0] if writer.is_method else "module"
        if unread:
            yield self.violation_at(
                writer.path,
                writer.node,
                f"{writer.qualname} writes state key(s) "
                f"{', '.join(repr(k) for k in unread)} that "
                f"{reader.qualname} never reads ({scope} pair) — dead "
                "payload or a missed restore",
            )
        if unwritten:
            yield self.violation_at(
                reader.path,
                reader.node,
                f"{reader.qualname} reads state key(s) "
                f"{', '.join(repr(k) for k in unwritten)} that "
                f"{writer.qualname} never writes ({scope} pair) — "
                "restore-path KeyError waiting to fire",
            )
