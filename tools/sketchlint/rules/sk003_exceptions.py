"""SK003 — exception discipline.

Library code must fail in ways callers can rely on:

* every raise uses a :class:`repro.common.errors.ReproError` subclass, so
  ``except ReproError`` catches everything the package originates while
  foreign bugs (TypeError from a caller's mistake) propagate untouched;
* no bare ``except:`` — it swallows ``KeyboardInterrupt``/``SystemExit``
  and hides the silent-corruption bugs this linter exists to catch;
* no ``assert`` statements — they vanish under ``python -O`` exactly when
  a production deployment switches optimizations on.  Use
  :func:`repro.common.invariants.check` (raises, never stripped) instead.

Subclasses of the allowed exceptions defined in the *same file* are
accepted, so a module may introduce its own ``ReproError`` child without
touching the linter.  ``raise`` / ``raise exc`` re-raises are accepted.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from tools.sketchlint.engine import FileContext, Rule, Violation

#: the package's exception hierarchy (see src/repro/common/errors.py)
ALLOWED_EXCEPTIONS = frozenset(
    {
        "ReproError",
        "CheckpointError",
        "CircuitOpenError",
        "ConfigurationError",
        "DeadlineExceededError",
        "DecodeError",
        "IncompatibleSketchError",
        "InvariantViolation",
        "ObservabilityError",
        "RemoteError",
        "ResourceExhaustedError",
        "RetryExhaustedError",
        "ServiceError",
        "ShardFailureError",
        "ShardTimeoutError",
        "SketchModeError",
        "StateCorruptionError",
        "TransportError",
    }
)


def _local_subclasses(tree: ast.AST) -> Set[str]:
    """Names of classes in this module deriving from an allowed exception.

    Resolved transitively within the file (``A(ReproError)`` then
    ``B(A)``), in definition order; cross-file hierarchies need the parent
    imported by its canonical name, which the package style already does.
    """
    allowed = set(ALLOWED_EXCEPTIONS)
    changed = True
    while changed:
        changed = False
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef) or node.name in allowed:
                continue
            for base in node.bases:
                name = base.attr if isinstance(base, ast.Attribute) else (
                    base.id if isinstance(base, ast.Name) else ""
                )
                if name in allowed:
                    allowed.add(node.name)
                    changed = True
                    break
    return allowed


class ExceptionDisciplineRule(Rule):
    """SK003: only ReproError subclasses; no bare except; no assert."""

    code = "SK003"
    summary = "raise only ReproError subclasses; no bare except; no assert"

    def check(self, tree: ast.AST, context: FileContext) -> Iterator[Violation]:
        allowed = _local_subclasses(tree)

        for node in ast.walk(tree):
            if isinstance(node, ast.Assert):
                yield self.violation(
                    context,
                    node,
                    "assert is stripped under 'python -O'; use "
                    "repro.common.invariants.check() or an explicit raise",
                )
            elif isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.violation(
                    context,
                    node,
                    "bare 'except:' swallows SystemExit/KeyboardInterrupt "
                    "and masks corruption; catch a concrete exception",
                )
            elif isinstance(node, ast.Raise):
                yield from self._check_raise(node, context, allowed)

    # ------------------------------------------------------------------ #
    def _check_raise(
        self, node: ast.Raise, context: FileContext, allowed: Set[str]
    ) -> Iterator[Violation]:
        exc = node.exc
        if exc is None:
            return  # bare re-raise inside a handler
        if isinstance(exc, ast.Name):
            # ``raise err`` — almost always re-raising a caught/constructed
            # object; class names are checked when called, so only flag
            # raising a *class* we know to be foreign.
            if exc.id not in allowed and exc.id in _KNOWN_FOREIGN:
                yield self.violation(
                    context, node, f"raising foreign exception class {exc.id}"
                )
            return
        if not isinstance(exc, ast.Call):
            return
        func = exc.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        if not name or name in allowed:
            return
        yield self.violation(
            context,
            node,
            f"library code must raise ReproError subclasses, not {name}; "
            "see repro.common.errors",
        )


#: builtin exception classes occasionally raised bare (``raise ValueError``)
_KNOWN_FOREIGN = frozenset(
    {
        "Exception",
        "BaseException",
        "ValueError",
        "TypeError",
        "KeyError",
        "IndexError",
        "RuntimeError",
        "OSError",
        "IOError",
        "ArithmeticError",
        "ZeroDivisionError",
        "NotImplementedError",
        "StopIteration",
        "AssertionError",
    }
)
