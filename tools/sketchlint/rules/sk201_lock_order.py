"""SK201 — lock-acquisition order must be acyclic (no ABBA deadlocks).

Two code paths that acquire the same pair of locks in opposite order can
deadlock the moment they run concurrently: thread one holds A and waits
for B while thread two holds B and waits for A.  The service layer's
convention is a single global order — ``SketchServer._handle_query``
sorts the aggregate locks by name before acquiring them, which the
:mod:`~tools.sketchlint.lockgraph` model recognizes as an *ordered
group* (no order edges, acyclic by construction).

The rule reports every directed edge that participates in a cycle of
the whole-package acquisition-order graph.  For an opposite-order pair
both acquisition sites are reported — one violation per direction, each
naming the conflicting site — so a SARIF consumer sees both halves of
the ABBA pattern.  It also reports *self* deadlocks: a non-reentrant
``Lock`` (or a ``Condition`` wrapping one) acquired again — directly or
through a callee — while already held.  Re-entrant ``RLock``/bare
``Condition`` self-edges are fine and stay silent.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from tools.sketchlint.engine import PackageContext, PackageRule, Violation
from tools.sketchlint.lockgraph import Site, lock_model


def _first(sites: List[Site]) -> Site:
    return sorted(sites, key=lambda s: (s.path, s.line, s.column))[0]


def _reaches(
    edges: Dict[Tuple[str, str], List[Site]], start: str, goal: str
) -> bool:
    """Is ``goal`` reachable from ``start`` over the order edges?"""
    seen: Set[str] = set()
    stack: List[str] = [start]
    while stack:
        node = stack.pop()
        if node == goal:
            return True
        if node in seen:
            continue
        seen.add(node)
        stack.extend(b for (a, b) in edges if a == node)
    return False


class LockOrderCycleRule(PackageRule):
    """SK201: opposite-order pair acquisition and self-deadlocks."""

    code = "SK201"
    summary = "lock-acquisition order must be acyclic (single global order)"
    description = (
        "Builds the whole-package lock-acquisition-order graph (an edge "
        "A->B for every site acquiring B while holding A, directly or "
        "through a callee) and reports every edge on a cycle: two paths "
        "taking the same pair of locks in opposite order can deadlock "
        "under concurrency. Both acquisition sites of an opposite-order "
        "pair are reported. Non-reentrant locks re-acquired while held "
        "(self-deadlock) are reported too; RLock/bare-Condition "
        "re-entries and name-sorted ordered-group acquisition are "
        "recognized as safe."
    )

    def check_package(self, package: PackageContext) -> Iterator[Violation]:
        model = lock_model(package)
        edges = model.order_edges
        reported: Set[Tuple[str, str]] = set()
        for a, b in sorted(edges):
            if (a, b) in reported or (b, a) not in edges:
                continue
            reported.add((a, b))
            reported.add((b, a))
            site_ab = _first(edges[(a, b)])
            site_ba = _first(edges[(b, a)])
            yield self._edge_violation(a, b, site_ab, site_ba)
            yield self._edge_violation(b, a, site_ba, site_ab)
        for a, b in sorted(edges):
            if (a, b) in reported:
                continue
            if not _reaches(edges, b, a):
                continue
            reported.add((a, b))
            site = _first(edges[(a, b)])
            yield Violation(
                code=self.code,
                message=(
                    f"lock-order cycle: '{b}' is acquired while holding "
                    f"'{a}' here, and a chain of acquisitions leads from "
                    f"'{b}' back to '{a}'; pick one global order"
                ),
                path=site.path,
                line=site.line,
                column=site.column,
            )
        for deadlock in model.self_deadlocks:
            yield Violation(
                code=self.code,
                message=(
                    f"self-deadlock: non-reentrant lock '{deadlock.lock}' "
                    f"is {deadlock.detail}; use an RLock or drop the "
                    "inner acquisition"
                ),
                path=deadlock.path,
                line=getattr(deadlock.node, "lineno", 1),
                column=getattr(deadlock.node, "col_offset", 0),
            )

    def _edge_violation(
        self, held: str, acquired: str, site: Site, opposite: Site
    ) -> Violation:
        return Violation(
            code=self.code,
            message=(
                f"lock-order cycle: '{acquired}' is acquired while "
                f"holding '{held}' here, but '{held}' is acquired while "
                f"holding '{acquired}' at {opposite.render()}; acquire "
                "both in one global (e.g. name-sorted) order"
            ),
            path=site.path,
            line=site.line,
            column=site.column,
        )
