"""Rule registry: one module per checker, discovered statically.

SK001–SK005 are the original per-file syntactic passes; SK101–SK105 are
the CFG/dataflow generation (interprocedural contract rules built on
:mod:`tools.sketchlint.cfg`, :mod:`tools.sketchlint.dataflow` and
:mod:`tools.sketchlint.symbols`); SK201–SK206 are the concurrency pack
built on the :mod:`tools.sketchlint.lockgraph` lock-order model.
"""

from __future__ import annotations

from typing import Dict, List, Type

from tools.sketchlint.engine import Rule
from tools.sketchlint.rules.sk001_field_arithmetic import FieldArithmeticRule
from tools.sketchlint.rules.sk002_rng import InjectedRngRule
from tools.sketchlint.rules.sk003_exceptions import ExceptionDisciplineRule
from tools.sketchlint.rules.sk004_merge_safety import MergeSafetyRule
from tools.sketchlint.rules.sk005_hot_path import HotPathPurityRule
from tools.sketchlint.rules.sk101_decode_cache import DecodeCacheInvalidationRule
from tools.sketchlint.rules.sk102_obs_guard import ObsGuardRule
from tools.sketchlint.rules.sk103_state_symmetry import StateSymmetryRule
from tools.sketchlint.rules.sk104_field_flow import FieldFlowRule
from tools.sketchlint.rules.sk105_policy_threading import PolicyThreadingRule
from tools.sketchlint.rules.sk201_lock_order import LockOrderCycleRule
from tools.sketchlint.rules.sk202_blocking_under_lock import (
    BlockingUnderLockRule,
)
from tools.sketchlint.rules.sk203_unguarded_shared_write import (
    UnguardedSharedWriteRule,
)
from tools.sketchlint.rules.sk204_fork_safety import ForkSafetyRule
from tools.sketchlint.rules.sk205_wait_predicate import ConditionWaitLoopRule
from tools.sketchlint.rules.sk206_record_under_lock import RecordUnderLockRule

#: the rule-pack version, folded into the result-cache signature so a
#: rule upgrade invalidates every cached finding even when the package
#: sources look unchanged (e.g. an installed wheel with frozen mtimes).
#: Bump on any behavior change to a rule or to the shared models.
RULE_PACK_VERSION = "3.0.0"

ALL_RULES: List[Type[Rule]] = [
    FieldArithmeticRule,
    InjectedRngRule,
    ExceptionDisciplineRule,
    MergeSafetyRule,
    HotPathPurityRule,
    DecodeCacheInvalidationRule,
    ObsGuardRule,
    StateSymmetryRule,
    FieldFlowRule,
    PolicyThreadingRule,
    LockOrderCycleRule,
    BlockingUnderLockRule,
    UnguardedSharedWriteRule,
    ForkSafetyRule,
    ConditionWaitLoopRule,
    RecordUnderLockRule,
]


def rules_by_code() -> Dict[str, Type[Rule]]:
    """Map rule codes (``SK001`` ...) to their classes."""
    return {cls.code: cls for cls in ALL_RULES}


__all__ = [
    "ALL_RULES",
    "RULE_PACK_VERSION",
    "rules_by_code",
    "FieldArithmeticRule",
    "InjectedRngRule",
    "ExceptionDisciplineRule",
    "MergeSafetyRule",
    "HotPathPurityRule",
    "DecodeCacheInvalidationRule",
    "ObsGuardRule",
    "StateSymmetryRule",
    "FieldFlowRule",
    "PolicyThreadingRule",
    "LockOrderCycleRule",
    "BlockingUnderLockRule",
    "UnguardedSharedWriteRule",
    "ForkSafetyRule",
    "ConditionWaitLoopRule",
    "RecordUnderLockRule",
]
