"""Rule registry: one module per checker, discovered statically.

SK001–SK005 are the original per-file syntactic passes; SK101–SK105 are
the CFG/dataflow generation (interprocedural contract rules built on
:mod:`tools.sketchlint.cfg`, :mod:`tools.sketchlint.dataflow` and
:mod:`tools.sketchlint.symbols`).
"""

from __future__ import annotations

from typing import Dict, List, Type

from tools.sketchlint.engine import Rule
from tools.sketchlint.rules.sk001_field_arithmetic import FieldArithmeticRule
from tools.sketchlint.rules.sk002_rng import InjectedRngRule
from tools.sketchlint.rules.sk003_exceptions import ExceptionDisciplineRule
from tools.sketchlint.rules.sk004_merge_safety import MergeSafetyRule
from tools.sketchlint.rules.sk005_hot_path import HotPathPurityRule
from tools.sketchlint.rules.sk101_decode_cache import DecodeCacheInvalidationRule
from tools.sketchlint.rules.sk102_obs_guard import ObsGuardRule
from tools.sketchlint.rules.sk103_state_symmetry import StateSymmetryRule
from tools.sketchlint.rules.sk104_field_flow import FieldFlowRule
from tools.sketchlint.rules.sk105_policy_threading import PolicyThreadingRule

ALL_RULES: List[Type[Rule]] = [
    FieldArithmeticRule,
    InjectedRngRule,
    ExceptionDisciplineRule,
    MergeSafetyRule,
    HotPathPurityRule,
    DecodeCacheInvalidationRule,
    ObsGuardRule,
    StateSymmetryRule,
    FieldFlowRule,
    PolicyThreadingRule,
]


def rules_by_code() -> Dict[str, Type[Rule]]:
    """Map rule codes (``SK001`` ...) to their classes."""
    return {cls.code: cls for cls in ALL_RULES}


__all__ = [
    "ALL_RULES",
    "rules_by_code",
    "FieldArithmeticRule",
    "InjectedRngRule",
    "ExceptionDisciplineRule",
    "MergeSafetyRule",
    "HotPathPurityRule",
    "DecodeCacheInvalidationRule",
    "ObsGuardRule",
    "StateSymmetryRule",
    "FieldFlowRule",
    "PolicyThreadingRule",
]
