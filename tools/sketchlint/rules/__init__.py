"""Rule registry: one module per checker, discovered statically."""

from __future__ import annotations

from typing import Dict, List, Type

from tools.sketchlint.engine import Rule
from tools.sketchlint.rules.sk001_field_arithmetic import FieldArithmeticRule
from tools.sketchlint.rules.sk002_rng import InjectedRngRule
from tools.sketchlint.rules.sk003_exceptions import ExceptionDisciplineRule
from tools.sketchlint.rules.sk004_merge_safety import MergeSafetyRule
from tools.sketchlint.rules.sk005_hot_path import HotPathPurityRule

ALL_RULES: List[Type[Rule]] = [
    FieldArithmeticRule,
    InjectedRngRule,
    ExceptionDisciplineRule,
    MergeSafetyRule,
    HotPathPurityRule,
]


def rules_by_code() -> Dict[str, Type[Rule]]:
    """Map rule codes (``SK001`` ...) to their classes."""
    return {cls.code: cls for cls in ALL_RULES}


__all__ = [
    "ALL_RULES",
    "rules_by_code",
    "FieldArithmeticRule",
    "InjectedRngRule",
    "ExceptionDisciplineRule",
    "MergeSafetyRule",
    "HotPathPurityRule",
]
