"""SK204 — fork safety: processes and threads must not mix carelessly.

``fork()`` clones exactly one thread.  Any lock another thread happened
to hold at fork time is copied into the child permanently locked, and no
thread exists to release it — the classic post-fork deadlock.  Three
concrete hazards are reported:

* a module that creates ``threading.Thread`` workers *and* spawns
  ``multiprocessing`` children: under the default ``fork`` start method
  the child inherits whatever lock states the threads left behind;
* a ``threading`` lock/Condition passed into a child process through
  ``Process(args=...)`` — the child gets a pickled/forked copy whose
  state is meaningless (and ``threading`` primitives do not synchronize
  across processes at all);
* a *bound method* of a lock-owning class used as the child's
  ``target=`` — the instance, its locks and everything they guard are
  dragged across the fork boundary.

The sharded ingestion runtime stays clean by construction: module-level
worker functions, queue-only arguments, and no threads in the spawning
module.
"""

from __future__ import annotations

from typing import Iterator

from tools.sketchlint.engine import PackageContext, PackageRule, Violation
from tools.sketchlint.lockgraph import lock_model


class ForkSafetyRule(PackageRule):
    """SK204: no fork-after-thread, no locks across the fork boundary."""

    code = "SK204"
    summary = "fork-after-thread hazard or lock captured into a child process"
    description = (
        "Spawning multiprocessing workers from a module that also "
        "starts threads risks the classic post-fork deadlock (a forked "
        "child inherits locks mid-held by other threads). Passing a "
        "threading lock or Condition into Process(args=...), or using a "
        "bound method of a lock-owning class as the child target, "
        "carries lock state across the fork/pickle boundary where it "
        "cannot synchronize anything. Spawn children from thread-free "
        "modules, with module-level targets and queue/pipe arguments."
    )

    def check_package(self, package: PackageContext) -> Iterator[Violation]:
        model = lock_model(package)
        for spawn in model.spawns:
            if spawn.kind != "process":
                continue
            if model.module_spawns_thread(spawn.path):
                yield self.violation_at(
                    spawn.path,
                    spawn.node,
                    "child process spawned from a module that also "
                    "starts threads; under the default fork start "
                    "method the child inherits locks held by those "
                    "threads — spawn workers from a thread-free module",
                )
            for lock_id, expr in spawn.captured_locks:
                yield self.violation_at(
                    spawn.path,
                    expr,
                    f"lock '{lock_id}' is passed into a child process; "
                    "threading primitives do not synchronize across "
                    "processes — pass a queue/pipe instead",
                )
            if spawn.bound_target_class is not None:
                yield self.violation_at(
                    spawn.path,
                    spawn.node,
                    "child-process target is a bound method of "
                    f"'{spawn.bound_target_class}', which owns locks; "
                    "the instance and its lock state cross the fork "
                    "boundary — use a module-level worker function",
                )
