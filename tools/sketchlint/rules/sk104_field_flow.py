"""SK104 — unreduced field values must not *flow* into sensitive sinks.

SK001 checks the statement-local contract: arithmetic written straight
into ``iID`` field state must end in ``% p``.  It cannot see the two-step
version of the same bug::

    acc = self.ids[row][j] + count * key     # unreduced intermediate
    ...
    self.ids[row][j] = acc                   # SK001-silent, still wrong
    if acc == other:                         # compares out-of-range residue
    payload.append(acc)                      # serializes out-of-range residue

This rule runs the taint-style dataflow pass over each function's CFG:
a local becomes **unreduced** when it is assigned arithmetic over field
state (or over another unreduced local) whose top level is not a ``% p``
reduction or a sanctioned reducer (``to_field``); a ``% p`` / reducer
assignment clears the tag.  Flagged sinks for tagged values:

* equality/ordering comparisons (``==``, ``!=``, ``<`` ... — a residue
  outside ``[0, p)`` never compares equal to its canonical form);
* stores into field state (the deferred SK001 case above);
* serialization calls (``pack``/``dumps``/``to_bytes``/``append``-into
  payload style sinks listed in :data:`SERIALIZATION_SINKS`).

Only flows the fixpoint proves reachable are reported, so reducing on
every path (including inside an ``if``/``else`` split) is recognized.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from tools.sketchlint.cfg import KIND_STMT, Node, build_cfg
from tools.sketchlint.dataflow import TagAnalysis, TagState, run_forward
from tools.sketchlint.engine import FileContext, Rule, Violation
from tools.sketchlint.rules.sk001_field_arithmetic import (
    FIELD_STATE_NAMES,
    _ARITH_OPS,
    _SANCTIONED_REDUCERS,
    _is_reduced,
    _subscript_root,
)

_TAG = "unreduced"

#: call names treated as serialization sinks for residues
SERIALIZATION_SINKS = frozenset({"pack", "dumps", "to_bytes", "tobytes", "write"})

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _is_field_load(expr: ast.expr) -> bool:
    """A load of field state: ``self.ids[r][j]``, ``iid``, ``id_sum`` ..."""
    if isinstance(expr, ast.Subscript):
        return _subscript_root(expr) is not None
    if isinstance(expr, ast.Name):
        return expr.id.lower() in FIELD_STATE_NAMES
    if isinstance(expr, ast.Attribute):
        return expr.attr.lower() in FIELD_STATE_NAMES
    return False


def _expr_unreduced(expr: ast.expr, state: TagState) -> bool:
    """Is this expression's value arithmetic over field state, unreduced?

    Reduction is recognized at the expression's top level: ``x % p`` and
    ``to_field(x)`` launder the value back into the field.
    """
    if _is_reduced(expr):
        return False
    if isinstance(expr, ast.Name):
        return state.has(expr.id, _TAG)
    if isinstance(expr, ast.BinOp):
        if not isinstance(expr.op, _ARITH_OPS):
            return False
        return any(
            _is_field_load(operand) or _expr_unreduced(operand, state)
            for operand in (expr.left, expr.right)
        )
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, (ast.USub, ast.UAdd)):
        return _is_field_load(expr.operand) or _expr_unreduced(expr.operand, state)
    return False


class _FlowAnalysis(TagAnalysis):
    """Tags locals holding unreduced field arithmetic."""

    def transfer(self, node: Node, state: TagState) -> TagState:
        stmt = node.stmt
        if isinstance(stmt, ast.Assign):
            tagged = _expr_unreduced(stmt.value, state)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if tagged:
                        state = state.set(target.id, {_TAG})
                    else:
                        state = state.clear(target.id)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                if _expr_unreduced(stmt.value, state):
                    state = state.set(stmt.target.id, {_TAG})
                else:
                    state = state.clear(stmt.target.id)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                if isinstance(stmt.op, ast.Mod):
                    state = state.clear(stmt.target.id)  # ``acc %= p``
                elif isinstance(stmt.op, _ARITH_OPS) and (
                    state.has(stmt.target.id, _TAG)
                    or _expr_unreduced(stmt.value, state)
                    or _is_field_load(stmt.value)
                ):
                    state = state.set(stmt.target.id, {_TAG})
        return state


def _tagged_name_in(expr: ast.expr, state: TagState) -> Optional[str]:
    if isinstance(expr, ast.Name) and state.has(expr.id, _TAG):
        return expr.id
    return None


class FieldFlowRule(Rule):
    """SK104: the dataflow generalization of SK001."""

    code = "SK104"
    summary = "unreduced field arithmetic must not flow into compares/stores/serialization"
    description = (
        "A local assigned arithmetic over iID field state without a "
        "top-level % p (or to_field) stays out of the field's canonical "
        "range; using it in a comparison, storing it back into field state, "
        "or serializing it propagates a residue that decodes to the wrong "
        "key. Reduce at the assignment or before the sink."
    )

    def check(self, tree: ast.AST, context: FileContext) -> Iterator[Violation]:
        for func in ast.walk(tree):
            if isinstance(func, _FUNC_NODES):
                yield from self._check_function(func, context)

    # ------------------------------------------------------------------ #
    def _check_function(
        self, func: ast.AST, context: FileContext
    ) -> Iterator[Violation]:
        cfg = build_cfg(func)
        result = run_forward(cfg, _FlowAnalysis())
        reported: Set[int] = set()
        for node in cfg.nodes.values():
            state = result.before.get(node.uid)
            if state is None:
                continue
            if node.kind == KIND_STMT and node.stmt is not None:
                yield from self._check_stmt(node.stmt, state, context, reported)
            elif node.test is not None:
                yield from self._check_expr_tree(
                    node.test, state, context, reported
                )

    def _check_stmt(
        self,
        stmt: ast.stmt,
        state: TagState,
        context: FileContext,
        reported: Set[int],
    ) -> Iterator[Violation]:
        # sink: store back into field state
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        value = getattr(stmt, "value", None)
        for target in targets:
            if (
                isinstance(target, ast.Subscript)
                and _subscript_root(target) is not None
                and value is not None
            ):
                name = _tagged_name_in(value, state)
                if name is not None and id(stmt) not in reported:
                    reported.add(id(stmt))
                    yield self.violation(
                        context,
                        stmt,
                        f"'{name}' carries unreduced field arithmetic into a "
                        "field-state store; reduce it '% p' (or via "
                        f"{'/'.join(sorted(_SANCTIONED_REDUCERS))}) first",
                    )
        yield from self._check_expr_tree(stmt, state, context, reported)

    def _check_expr_tree(
        self,
        root: ast.AST,
        state: TagState,
        context: FileContext,
        reported: Set[int],
    ) -> Iterator[Violation]:
        for node in ast.walk(root):
            if isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for operand in operands:
                    name = _tagged_name_in(operand, state)
                    if name is not None and id(node) not in reported:
                        reported.add(id(node))
                        yield self.violation(
                            context,
                            node,
                            f"'{name}' holds an unreduced field value in a "
                            "comparison; residues outside [0, p) never "
                            "match their canonical form — reduce first",
                        )
                        break
            elif isinstance(node, ast.Call):
                func = node.func
                call = (
                    func.attr
                    if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name) else ""
                )
                if call not in SERIALIZATION_SINKS:
                    continue
                for arg in node.args:
                    name = _tagged_name_in(arg, state)
                    if name is not None and id(node) not in reported:
                        reported.add(id(node))
                        yield self.violation(
                            context,
                            node,
                            f"'{name}' holds an unreduced field value passed "
                            f"to serialization sink '{call}'; reduce it "
                            "'% p' before emitting",
                        )
                        break
