"""SK002 — no global-state randomness in library code.

Reproducibility (and every accuracy figure in the paper) depends on the
experiment harness controlling *all* randomness through seeds.  A stray
``random.random()`` or ``np.random.rand()`` draws from interpreter-global
state: results change run to run and sketches constructed with the same
seed stop being merge-identical.

Allowed:

* constructing a *seeded* generator — ``random.Random(seed)``,
  ``np.random.default_rng(seed)`` — typically inside
  :func:`repro.common.hashing.resolve_rng`;
* drawing from an injected instance (``self._rng.random()`` — the receiver
  is not the ``random`` module).

Flagged:

* any module-level draw: ``random.random()``, ``random.shuffle(...)``,
  ``np.random.rand()``, ``np.random.seed(...)``, ...;
* unseeded constructors: ``random.Random()``, ``np.random.default_rng()``;
* importing draw functions directly (``from random import random``),
  which hides the global state behind a local name.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from tools.sketchlint.engine import FileContext, Rule, Violation

#: draw functions of the stdlib ``random`` module (non-exhaustive list not
#: needed — any attribute other than a constructor is flagged)
_STDLIB_CONSTRUCTORS = frozenset({"Random", "SystemRandom"})

#: numpy.random entry points that construct (rather than draw from) state
_NUMPY_CONSTRUCTORS = frozenset({"default_rng", "Generator", "RandomState"})

#: ``from random import X`` names that smuggle global state
_STDLIB_DRAWS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "betavariate",
        "gammavariate",
        "getrandbits",
        "randbytes",
        "seed",
    }
)


class InjectedRngRule(Rule):
    """SK002: randomness must flow through an injected, seeded rng."""

    code = "SK002"
    summary = "random.*/np.random.* must flow through an injected, seeded rng"

    def check(self, tree: ast.AST, context: FileContext) -> Iterator[Violation]:
        random_aliases: Set[str] = set()
        nprandom_aliases: Set[str] = set()
        numpy_aliases: Set[str] = set()

        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        random_aliases.add(alias.asname or "random")
                    elif alias.name == "numpy.random":
                        nprandom_aliases.add(alias.asname or "numpy")
                    elif alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy" and any(
                    alias.name == "random" for alias in node.names
                ):
                    for alias in node.names:
                        if alias.name == "random":
                            nprandom_aliases.add(alias.asname or "random")
                elif node.module == "random":
                    for alias in node.names:
                        if alias.name in _STDLIB_DRAWS:
                            yield self.violation(
                                context,
                                node,
                                f"importing 'random.{alias.name}' binds "
                                "global-state randomness to a local name; "
                                "inject a seeded random.Random instead",
                            )

        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            yield from self._check_call(
                node, context, random_aliases, nprandom_aliases, numpy_aliases
            )

    # ------------------------------------------------------------------ #
    def _check_call(
        self,
        node: ast.Call,
        context: FileContext,
        random_aliases: Set[str],
        nprandom_aliases: Set[str],
        numpy_aliases: Set[str],
    ) -> Iterator[Violation]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        base = func.value
        has_args = bool(node.args or node.keywords)

        # random.<attr>(...)
        if isinstance(base, ast.Name) and base.id in random_aliases:
            if func.attr in _STDLIB_CONSTRUCTORS:
                if not has_args:
                    yield self.violation(
                        context,
                        node,
                        f"random.{func.attr}() without a seed is "
                        "non-deterministic; pass an explicit seed",
                    )
                return
            yield self.violation(
                context,
                node,
                f"module-level random.{func.attr}() draws from global "
                "state; use an injected, seeded rng "
                "(common.hashing.resolve_rng)",
            )
            return

        # <np>.random.<attr>(...) or <npr>.<attr>(...)
        is_numpy_random = (
            isinstance(base, ast.Name) and base.id in nprandom_aliases
        ) or (
            isinstance(base, ast.Attribute)
            and base.attr == "random"
            and isinstance(base.value, ast.Name)
            and base.value.id in numpy_aliases
        )
        if not is_numpy_random:
            return
        if func.attr in _NUMPY_CONSTRUCTORS:
            if func.attr != "Generator" and not has_args:
                yield self.violation(
                    context,
                    node,
                    f"np.random.{func.attr}() without a seed is "
                    "non-deterministic; pass an explicit seed",
                )
            return
        yield self.violation(
            context,
            node,
            f"np.random.{func.attr}() uses numpy's global state; "
            "construct np.random.default_rng(seed) and draw from it",
        )
