"""A small forward dataflow engine over :mod:`tools.sketchlint.cfg` graphs.

An analysis supplies three things:

* :meth:`ForwardAnalysis.initial` — the state at function entry;
* :meth:`ForwardAnalysis.transfer` — the effect of one statement node;
* :meth:`ForwardAnalysis.refine` — (optional) sharpening of the state
  along a labelled branch edge, e.g. "on the ``true`` arm of
  ``policy is not None`` the variable is definitely set".

States must be hashable-equality values (frozensets, tuples, small
dataclasses with ``__eq__``); :meth:`ForwardAnalysis.join` merges the
states arriving over multiple in-edges.  The engine runs a worklist to a
fixpoint and returns the state *entering* every node plus the joined
states reaching the two exits; all the lattices the SK10x rules use are
finite, so termination is structural rather than relying on widening.

The module also ships the classic instance rules are built from:
:class:`TagLattice`, a per-variable tag map with union join (the
reaching-definitions / taint-style layer named in the roadmap).
"""

from __future__ import annotations

import ast
from typing import (
    Dict,
    FrozenSet,
    Generic,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    TypeVar,
)

from tools.sketchlint.cfg import CFG, KIND_BRANCH, KIND_STMT, Node

S = TypeVar("S")

#: safety valve: no realistic method needs more worklist passes than this
MAX_ITERATIONS = 100_000


class ForwardAnalysis(Generic[S]):
    """Base class for forward analyses (subclass and override)."""

    def initial(self) -> S:
        raise NotImplementedError  # sketchlint: disable=SK003

    def join(self, states: List[S]) -> S:
        raise NotImplementedError  # sketchlint: disable=SK003

    def transfer(self, node: Node, state: S) -> S:
        """State after executing ``node`` (statement nodes only)."""
        return state

    def refine(self, test: Optional[ast.expr], label: Optional[str], state: S) -> S:
        """Sharpen ``state`` along a labelled edge out of a branch node."""
        return state


class DataflowResult(Generic[S]):
    """Fixpoint states: per-node inputs plus the joined exit states."""

    def __init__(
        self,
        before: Dict[int, S],
        exit_state: Optional[S],
        raise_state: Optional[S],
    ) -> None:
        #: state entering each node, keyed by node uid
        self.before = before
        #: joined state reaching the normal exit (None when unreachable)
        self.exit_state = exit_state
        #: joined state reaching the raise exit (None when unreachable)
        self.raise_state = raise_state


def run_forward(cfg: CFG, analysis: ForwardAnalysis[S]) -> DataflowResult[S]:
    """Run ``analysis`` over ``cfg`` to a fixpoint."""
    before: Dict[int, S] = {cfg.entry.uid: analysis.initial()}
    # Incoming contributions per (target, source) edge, so joins stay exact
    # when a predecessor's contribution changes across iterations.
    contributions: Dict[int, Dict[Tuple[int, Optional[str]], S]] = {}

    worklist: List[int] = [cfg.entry.uid]
    iterations = 0
    while worklist:
        iterations += 1
        if iterations > MAX_ITERATIONS:  # pragma: no cover - safety valve
            break
        uid = worklist.pop()
        node = cfg.nodes[uid]
        in_state = before.get(uid)
        if in_state is None:
            continue
        if node.kind == KIND_STMT:
            out_state = analysis.transfer(node, in_state)
        else:
            out_state = in_state
        for succ_uid, label in cfg.edges[uid]:
            if node.kind == KIND_BRANCH:
                edge_state = analysis.refine(node.test, label, out_state)
            else:
                edge_state = out_state
            slot = contributions.setdefault(succ_uid, {})
            key = (uid, label)
            if slot.get(key) == edge_state and succ_uid in before:
                continue
            slot[key] = edge_state
            merged = analysis.join(list(slot.values()))
            if before.get(succ_uid) != merged:
                before[succ_uid] = merged
                worklist.append(succ_uid)

    return DataflowResult(
        before,
        before.get(cfg.exit.uid),
        before.get(cfg.raise_exit.uid),
    )


# --------------------------------------------------------------------- #
# the stock lattice: per-variable tag sets (taint / reaching definitions)
# --------------------------------------------------------------------- #
class TagState:
    """An immutable map ``variable -> frozenset(tags)`` with union join."""

    __slots__ = ("_tags",)

    def __init__(self, tags: Optional[Mapping[str, FrozenSet[str]]] = None) -> None:
        self._tags: Dict[str, FrozenSet[str]] = dict(tags or {})

    def tags_of(self, name: str) -> FrozenSet[str]:
        return self._tags.get(name, frozenset())

    def has(self, name: str, tag: str) -> bool:
        return tag in self._tags.get(name, frozenset())

    def set(self, name: str, tags: Iterable[str]) -> "TagState":
        updated = dict(self._tags)
        frozen = frozenset(tags)
        if frozen:
            updated[name] = frozen
        else:
            updated.pop(name, None)
        return TagState(updated)

    def clear(self, name: str) -> "TagState":
        if name not in self._tags:
            return self
        updated = dict(self._tags)
        del updated[name]
        return TagState(updated)

    # Lattice join, not a sketch merge — no counters. sketchlint: disable=SK004
    def merge(self, other: "TagState") -> "TagState":  # sketchlint: disable=SK004
        updated = dict(self._tags)
        for name, tags in other._tags.items():
            updated[name] = updated.get(name, frozenset()) | tags
        return TagState(updated)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TagState) and self._tags == other._tags

    def __hash__(self) -> int:
        return hash(frozenset(self._tags.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TagState({self._tags!r})"


class TagAnalysis(ForwardAnalysis[TagState]):
    """Union-join analysis over :class:`TagState` (override ``transfer``)."""

    def initial(self) -> TagState:
        return TagState()

    def join(self, states: List[TagState]) -> TagState:
        if not states:
            return TagState()
        merged = states[0]
        for state in states[1:]:
            merged = merged.merge(state)
        return merged


# --------------------------------------------------------------------- #
# shared syntactic helpers for rules
# --------------------------------------------------------------------- #
def assigned_names(target: ast.expr) -> List[str]:
    """Plain variable names bound by an assignment target."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            names.extend(assigned_names(element))
        return names
    return []


def attribute_chain(node: ast.expr) -> Optional[List[str]]:
    """``a.b.c`` -> ``["a", "b", "c"]``; None for anything non-trivial.

    Subscripts are transparent (``a.b[i].c`` -> ``["a", "b", "c"]``) so
    rules can reason about element stores into nested structures.
    """
    parts: List[str] = []
    current = node
    while True:
        if isinstance(current, ast.Subscript):
            current = current.value
        elif isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        elif isinstance(current, ast.Name):
            parts.append(current.id)
            return list(reversed(parts))
        else:
            return None


def call_name(call: ast.Call) -> str:
    """The called name: ``f(...)`` -> ``f``; ``a.b.f(...)`` -> ``f``."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""
