"""Per-function control-flow graphs for sketchlint's dataflow rules.

The graph is deliberately small: nodes are *simple statements* plus
``branch`` pseudo-nodes for every test expression (``if``/``while``
conditions and ``for`` iteration headers), and edges carry an optional
label — ``"true"``/``"false"`` out of a branch node — so analyses can
refine their state along the arms of a condition (the SK102 guard
analysis and SK105's ``policy is not None`` tracking both need this).

Exception modelling is conservative but cheap: every statement inside a
``try`` body gets an edge to each handler's entry, and ``raise`` jumps to
the innermost matching construct or the function's dedicated *raise exit*.
Two distinct exit nodes (normal vs. raise) let rules quantify over
"every path that returns normally" without being confused by guard
clauses that throw.

A :class:`CFG` also answers the one structural question the rules ask
beyond plain reachability: :meth:`CFG.on_cycle` — can this node execute
twice in a single call?  (Used by SK102 to tell a genuinely per-item
``_obs.ENABLED`` read apart from one that merely sits lexically inside a
loop but always exits it immediately.)
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

#: edge labels out of branch nodes
TRUE = "true"
FALSE = "false"

KIND_ENTRY = "entry"
KIND_EXIT = "exit"
KIND_RAISE_EXIT = "raise-exit"
KIND_STMT = "stmt"
KIND_BRANCH = "branch"
#: pass-through pseudo-nodes (loop-exit joins, finally markers, handler
#: entries) — dataflow treats them as identity transfers
KIND_JOIN = "join"


class Node:
    """One CFG node: a simple statement, a branch test, or an entry/exit."""

    __slots__ = ("uid", "kind", "stmt", "test")

    def __init__(
        self,
        uid: int,
        kind: str,
        stmt: Optional[ast.stmt] = None,
        test: Optional[ast.expr] = None,
    ) -> None:
        self.uid = uid
        self.kind = kind
        #: the simple statement (``kind == "stmt"``) or the owning compound
        #: statement (``kind == "branch"``)
        self.stmt = stmt
        #: the test expression for branch nodes (None for ``for`` headers)
        self.test = test

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        line = getattr(self.stmt, "lineno", "?")
        return f"Node({self.uid}, {self.kind}, line={line})"


class CFG:
    """Control-flow graph of one function body."""

    def __init__(self, func: ast.AST) -> None:
        self.func = func
        self.nodes: Dict[int, Node] = {}
        self.edges: Dict[int, List[Tuple[int, Optional[str]]]] = {}
        self._next_uid = 0
        self.entry = self._new_node(KIND_ENTRY)
        self.exit = self._new_node(KIND_EXIT)
        self.raise_exit = self._new_node(KIND_RAISE_EXIT)
        self._cycle_cache: Optional[FrozenSet[int]] = None

    # ------------------------------------------------------------------ #
    def _new_node(
        self,
        kind: str,
        stmt: Optional[ast.stmt] = None,
        test: Optional[ast.expr] = None,
    ) -> Node:
        node = Node(self._next_uid, kind, stmt, test)
        self.nodes[node.uid] = node
        self.edges[node.uid] = []
        self._next_uid += 1
        return node

    def add_edge(self, src: Node, dst: Node, label: Optional[str] = None) -> None:
        pair = (dst.uid, label)
        if pair not in self.edges[src.uid]:
            self.edges[src.uid].append(pair)

    def successors(self, node: Node) -> Iterator[Tuple[Node, Optional[str]]]:
        for uid, label in self.edges[node.uid]:
            yield self.nodes[uid], label

    def predecessors(self, node: Node) -> Iterator[Tuple[Node, Optional[str]]]:
        for src_uid, targets in self.edges.items():
            for uid, label in targets:
                if uid == node.uid:
                    yield self.nodes[src_uid], label

    def statement_nodes(self) -> Iterator[Node]:
        for node in self.nodes.values():
            if node.kind == KIND_STMT:
                yield node

    # ------------------------------------------------------------------ #
    def on_cycle(self, node: Node) -> bool:
        """True when ``node`` can execute more than once per call."""
        if self._cycle_cache is None:
            self._cycle_cache = self._nodes_on_cycles()
        return node.uid in self._cycle_cache

    def _nodes_on_cycles(self) -> FrozenSet[int]:
        """UIDs of nodes reachable from themselves (Tarjan SCCs, iterative)."""
        index_of: Dict[int, int] = {}
        lowlink: Dict[int, int] = {}
        on_stack: Set[int] = set()
        stack: List[int] = []
        result: Set[int] = set()
        counter = [0]

        for root in list(self.nodes):
            if root in index_of:
                continue
            work: List[Tuple[int, int]] = [(root, 0)]
            while work:
                uid, edge_index = work[-1]
                if edge_index == 0:
                    index_of[uid] = lowlink[uid] = counter[0]
                    counter[0] += 1
                    stack.append(uid)
                    on_stack.add(uid)
                targets = self.edges[uid]
                if edge_index < len(targets):
                    work[-1] = (uid, edge_index + 1)
                    succ = targets[edge_index][0]
                    if succ not in index_of:
                        work.append((succ, 0))
                    elif succ in on_stack:
                        lowlink[uid] = min(lowlink[uid], index_of[succ])
                else:
                    work.pop()
                    if work:
                        parent = work[-1][0]
                        lowlink[parent] = min(lowlink[parent], lowlink[uid])
                    if lowlink[uid] == index_of[uid]:
                        component: List[int] = []
                        while True:
                            member = stack.pop()
                            on_stack.discard(member)
                            component.append(member)
                            if member == uid:
                                break
                        if len(component) > 1:
                            result.update(component)
                        else:
                            only = component[0]
                            if any(t == only for t, _ in self.edges[only]):
                                result.add(only)
        return frozenset(result)


class _LoopFrame:
    """Targets for break/continue while building a loop body."""

    __slots__ = ("header", "after")

    def __init__(self, header: Node, after: "_Joiner") -> None:
        self.header = header
        self.after = after


class _Joiner:
    """A forward-reference target: edges added now, node resolved later."""

    __slots__ = ("pending",)

    def __init__(self) -> None:
        self.pending: List[Tuple[Node, Optional[str]]] = []

    def add(self, src: Node, label: Optional[str] = None) -> None:
        self.pending.append((src, label))

    def resolve(self, cfg: CFG, target: Node) -> None:
        for src, label in self.pending:
            cfg.add_edge(src, target, label)
        self.pending = []


class _Builder:
    """Builds the CFG by threading a frontier of dangling edges."""

    def __init__(self, func: ast.AST, body: List[ast.stmt]) -> None:
        self.cfg = CFG(func)
        self.loops: List[_LoopFrame] = []
        #: entry nodes of the active try handlers (innermost last); every
        #: statement built inside a try body links to each of these
        self.handler_targets: List[List[Node]] = []
        frontier = self._build_body(body, [(self.cfg.entry, None)])
        for src, label in frontier:
            self.cfg.add_edge(src, self.cfg.exit, label)

    # ------------------------------------------------------------------ #
    def _link(
        self, sources: List[Tuple[Node, Optional[str]]], target: Node
    ) -> None:
        for src, label in sources:
            self.cfg.add_edge(src, target, label)

    def _exception_edges(self, node: Node) -> None:
        """Wire conservative may-raise edges for one statement node."""
        if self.handler_targets:
            for handlers in self.handler_targets:
                for handler in handlers:
                    self.cfg.add_edge(node, handler)
        # Any statement may also propagate an exception out of the function;
        # modelling that for *every* node would drown must-analyses in
        # impossible paths, so only explicit ``raise`` reaches raise_exit.

    def _build_body(
        self,
        body: List[ast.stmt],
        frontier: List[Tuple[Node, Optional[str]]],
    ) -> List[Tuple[Node, Optional[str]]]:
        for stmt in body:
            if not frontier:
                break  # unreachable code after return/raise/break
            frontier = self._build_stmt(stmt, frontier)
        return frontier

    # ------------------------------------------------------------------ #
    def _build_stmt(
        self,
        stmt: ast.stmt,
        frontier: List[Tuple[Node, Optional[str]]],
    ) -> List[Tuple[Node, Optional[str]]]:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            branch = cfg._new_node(KIND_BRANCH, stmt, stmt.test)
            self._link(frontier, branch)
            then_out = self._build_body(stmt.body, [(branch, TRUE)])
            else_out = self._build_body(stmt.orelse, [(branch, FALSE)])
            return then_out + else_out

        if isinstance(stmt, ast.While):
            branch = cfg._new_node(KIND_BRANCH, stmt, stmt.test)
            self._link(frontier, branch)
            after = _Joiner()
            self.loops.append(_LoopFrame(branch, after))
            body_out = self._build_body(stmt.body, [(branch, TRUE)])
            self._link(body_out, branch)  # back edge
            self.loops.pop()
            else_out = self._build_body(stmt.orelse, [(branch, FALSE)])
            out = list(else_out) if stmt.orelse else [(branch, FALSE)]
            joined = cfg._new_node(KIND_JOIN, stmt)  # loop-exit join point
            after.resolve(cfg, joined)
            self._link(out, joined)
            return [(joined, None)]

        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            header = cfg._new_node(KIND_BRANCH, stmt, None)
            self._link(frontier, header)
            after = _Joiner()
            self.loops.append(_LoopFrame(header, after))
            body_out = self._build_body(stmt.body, [(header, TRUE)])
            self._link(body_out, header)  # back edge
            self.loops.pop()
            else_out = self._build_body(stmt.orelse, [(header, FALSE)])
            out = list(else_out) if stmt.orelse else [(header, FALSE)]
            joined = cfg._new_node(KIND_JOIN, stmt)
            after.resolve(cfg, joined)
            self._link(out, joined)
            return [(joined, None)]

        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, frontier)

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = cfg._new_node(KIND_STMT, stmt)
            self._link(frontier, node)
            self._exception_edges(node)
            return self._build_body(stmt.body, [(node, None)])

        if isinstance(stmt, ast.Return):
            node = cfg._new_node(KIND_STMT, stmt)
            self._link(frontier, node)
            self._exception_edges(node)
            cfg.add_edge(node, cfg.exit)
            return []

        if isinstance(stmt, ast.Raise):
            node = cfg._new_node(KIND_STMT, stmt)
            self._link(frontier, node)
            if self.handler_targets:
                self._exception_edges(node)
            else:
                cfg.add_edge(node, cfg.raise_exit)
            return []

        if isinstance(stmt, ast.Break):
            node = cfg._new_node(KIND_STMT, stmt)
            self._link(frontier, node)
            if self.loops:
                self.loops[-1].after.add(node)
            return []

        if isinstance(stmt, ast.Continue):
            node = cfg._new_node(KIND_STMT, stmt)
            self._link(frontier, node)
            if self.loops:
                cfg.add_edge(node, self.loops[-1].header)
            return []

        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # Nested definitions are opaque single steps for the enclosing
            # function's flow (their bodies get their own CFGs when needed).
            node = cfg._new_node(KIND_STMT, stmt)
            self._link(frontier, node)
            return [(node, None)]

        # every simple statement: Assign/AugAssign/AnnAssign/Expr/...
        node = cfg._new_node(KIND_STMT, stmt)
        self._link(frontier, node)
        self._exception_edges(node)
        return [(node, None)]

    # ------------------------------------------------------------------ #
    def _build_try(
        self,
        stmt: ast.Try,
        frontier: List[Tuple[Node, Optional[str]]],
    ) -> List[Tuple[Node, Optional[str]]]:
        cfg = self.cfg
        handler_entries: List[Node] = []
        for handler in stmt.handlers:
            handler_entries.append(cfg._new_node(KIND_JOIN, handler))  # type: ignore[arg-type]

        self.handler_targets.append(handler_entries)
        body_out = self._build_body(stmt.body, frontier)
        self.handler_targets.pop()

        else_out = self._build_body(stmt.orelse, body_out) if stmt.orelse else body_out

        handler_outs: List[Tuple[Node, Optional[str]]] = []
        for handler, entry in zip(stmt.handlers, handler_entries):
            handler_outs.extend(
                self._build_body(handler.body, [(entry, None)])
            )

        merged = else_out + handler_outs
        if stmt.finalbody:
            if not merged:
                return []
            final_entry = cfg._new_node(KIND_JOIN, stmt)  # finally join marker
            self._link(merged, final_entry)
            return self._build_body(stmt.finalbody, [(final_entry, None)])
        return merged


def build_cfg(func: ast.AST) -> CFG:
    """Build the CFG of a function (or any object with a ``body`` list)."""
    body = getattr(func, "body", None)
    if not isinstance(body, list):
        body = [func] if isinstance(func, ast.stmt) else []
    return _Builder(func, body).cfg
