"""An mtime-keyed result cache for sketchlint.

Full-repo analysis is cheap (well under the 10s budget pinned by
``benchmarks/bench_sketchlint.py``) but editors and pre-commit hooks call
the linter repeatedly on an unchanged tree, so results are cached on disk
keyed by ``(path, mtime, size, rule codes, engine signature)``.  The
engine signature folds in the sketchlint package's own source mtimes, so
editing a rule invalidates everything — stale findings after a rule
change would be worse than no cache at all.

Per-file rule results are cached per file; package-rule results are
cached under a single joint key covering every file in the batch (any
file change re-runs the interprocedural pass, which is the only sound
granularity for whole-package rules).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from tools.sketchlint.engine import Violation

CACHE_VERSION = 1
DEFAULT_CACHE_PATH = Path(".sketchlint-cache.json")


def _engine_signature() -> str:
    """A fingerprint of the linter's own sources (mtimes + sizes).

    The declared rule-pack version is folded in alongside the source
    stamps: a rule upgrade must invalidate stale entries even when the
    package files carry frozen mtimes (installed wheels, checkouts with
    normalized timestamps).  Imported late so the registry is only
    loaded when a cache is actually constructed — and so tests can
    monkeypatch ``tools.sketchlint.rules.RULE_PACK_VERSION`` and watch
    the signature change.
    """
    from tools.sketchlint import rules as _rules

    package_dir = Path(__file__).resolve().parent
    parts: List[str] = [
        f"v{CACHE_VERSION}",
        f"rules:{_rules.RULE_PACK_VERSION}",
    ]
    for source in sorted(package_dir.rglob("*.py")):
        try:
            stat = source.stat()
        except OSError:  # pragma: no cover - racing deletes
            continue
        parts.append(f"{source.name}:{stat.st_mtime_ns}:{stat.st_size}")
    return "|".join(parts)


def _violation_to_dict(violation: Violation) -> Dict[str, object]:
    return {
        "code": violation.code,
        "message": violation.message,
        "path": violation.path,
        "line": violation.line,
        "column": violation.column,
    }


def _violation_from_dict(raw: Dict[str, object]) -> Violation:
    return Violation(
        code=str(raw["code"]),
        message=str(raw["message"]),
        path=str(raw["path"]),
        line=int(raw["line"]),  # type: ignore[arg-type]
        column=int(raw["column"]),  # type: ignore[arg-type]
    )


class ResultCache:
    """Disk-backed map from cache keys to violation lists."""

    def __init__(self, path: Path = DEFAULT_CACHE_PATH) -> None:
        self.path = path
        self.signature = _engine_signature()
        self._entries: Dict[str, List[Dict[str, object]]] = {}
        self._dirty = False
        self._load()

    # ------------------------------------------------------------------ #
    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict) or raw.get("signature") != self.signature:
            return
        entries = raw.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    def save(self) -> None:
        if not self._dirty:
            return
        payload = {"signature": self.signature, "entries": self._entries}
        try:
            self.path.write_text(
                json.dumps(payload, indent=0, sort_keys=True), encoding="utf-8"
            )
        except OSError:  # pragma: no cover - read-only checkouts
            return
        self._dirty = False

    # ------------------------------------------------------------------ #
    # keys
    # ------------------------------------------------------------------ #
    def file_key(self, path: Path, rule_codes: Sequence[str]) -> str:
        try:
            stat = path.stat()
            stamp = f"{stat.st_mtime_ns}:{stat.st_size}"
        except OSError:
            stamp = "missing"
        return f"file::{path}::{stamp}::{','.join(rule_codes)}"

    def package_key(self, paths: Sequence[Path], rule_codes: Sequence[str]) -> str:
        stamps: List[str] = []
        for path in sorted(str(p) for p in paths):
            try:
                stat = Path(path).stat()
                stamps.append(f"{path}@{stat.st_mtime_ns}:{stat.st_size}")
            except OSError:
                stamps.append(f"{path}@missing")
        return f"package::{','.join(rule_codes)}::{'|'.join(stamps)}"

    # ------------------------------------------------------------------ #
    # lookup / store
    # ------------------------------------------------------------------ #
    def get_file(self, key: str) -> Optional[List[Violation]]:
        return self._get(key)

    def put_file(self, key: str, violations: List[Violation]) -> None:
        self._put(key, violations)

    def get_package(self, key: str) -> Optional[List[Violation]]:
        return self._get(key)

    def put_package(self, key: str, violations: List[Violation]) -> None:
        self._put(key, violations)

    def _get(self, key: str) -> Optional[List[Violation]]:
        raw = self._entries.get(key)
        if raw is None:
            return None
        try:
            return [_violation_from_dict(item) for item in raw]
        except (KeyError, TypeError, ValueError):  # pragma: no cover - corrupt
            return None

    def _put(self, key: str, violations: List[Violation]) -> None:
        self._entries[key] = [_violation_to_dict(v) for v in violations]
        self._dirty = True
