"""The sketchlint engine: rule protocol, pragma handling, file walking.

A *rule* is an object with a ``code`` (``SK001`` ...), a one-line
``summary``, and a ``check(tree, context)`` method yielding
:class:`Violation` instances.  The engine owns everything rules should not
have to care about: file discovery, source parsing, per-line suppression
pragmas, and report aggregation.

Suppression: a trailing comment ``# sketchlint: disable=SK003`` silences
the named codes (comma separated; ``all`` silences every rule) for
violations reported *on that physical line*.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

_PRAGMA = re.compile(r"#\s*sketchlint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Violation:
    """One rule violation at a concrete source location."""

    code: str
    message: str
    path: str
    line: int
    column: int = 0

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.column + 1}: {self.code} {self.message}"


@dataclass
class FileContext:
    """Everything a rule may want to know about the file under analysis."""

    path: str
    source: str
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    @property
    def name(self) -> str:
        """Base filename, e.g. ``infrequent_part.py``."""
        return Path(self.path).name


class Rule:
    """Base class for sketchlint rules (subclasses override ``check``)."""

    code: str = "SK000"
    summary: str = ""

    def check(self, tree: ast.AST, context: FileContext) -> Iterator[Violation]:
        raise NotImplementedError  # sketchlint: disable=SK003

    # Helper for subclasses ------------------------------------------------
    def violation(
        self, context: FileContext, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            code=self.code,
            message=message,
            path=context.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
        )


@dataclass
class LintReport:
    """Aggregated violations across one lint invocation."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.parse_errors

    def render(self) -> str:
        out = [v.render() for v in self.violations]
        out.extend(self.parse_errors)
        out.append(
            f"sketchlint: {self.files_checked} file(s) checked, "
            f"{len(self.violations)} violation(s)"
        )
        return "\n".join(out)


def _suppressed_codes(line: str) -> Set[str]:
    """Codes suppressed by a ``# sketchlint: disable=...`` pragma, if any."""
    match = _PRAGMA.search(line)
    if not match:
        return set()
    return {token.strip().upper() for token in match.group(1).split(",") if token.strip()}


def _apply_pragmas(
    violations: Iterable[Violation], lines: Sequence[str]
) -> List[Violation]:
    kept = []
    for violation in violations:
        index = violation.line - 1
        if 0 <= index < len(lines):
            suppressed = _suppressed_codes(lines[index])
            if "ALL" in suppressed or violation.code.upper() in suppressed:
                continue
        kept.append(violation)
    return kept


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Violation]:
    """Lint a source string; returns the (pragma-filtered) violations."""
    from tools.sketchlint.rules import ALL_RULES

    active = list(rules) if rules is not None else [cls() for cls in ALL_RULES]
    tree = ast.parse(source, filename=path)
    context = FileContext(path=path, source=source)
    collected: List[Violation] = []
    for rule in active:
        collected.extend(rule.check(tree, context))
    collected = _apply_pragmas(collected, context.lines)
    collected.sort(key=lambda v: (v.path, v.line, v.column, v.code))
    return collected


def lint_file(path: Path, rules: Optional[Sequence[Rule]] = None) -> List[Violation]:
    """Lint one file on disk."""
    return lint_source(path.read_text(encoding="utf-8"), str(path), rules)


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into the ordered set of ``.py`` files."""
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    select: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint every Python file under ``paths``.

    ``select`` restricts the run to the given rule codes (case-insensitive);
    unknown codes raise ``ValueError`` so typos in CI configs fail loudly.
    """
    from tools.sketchlint.rules import ALL_RULES, rules_by_code

    if select is not None:
        registry = rules_by_code()
        unknown = [code for code in select if code.upper() not in registry]
        if unknown:
            raise ValueError(f"unknown rule code(s): {', '.join(unknown)}")
        active: List[Rule] = [registry[code.upper()]() for code in select]
    elif rules is not None:
        active = list(rules)
    else:
        active = [cls() for cls in ALL_RULES]

    report = LintReport()
    for file_path in iter_python_files(paths):
        report.files_checked += 1
        try:
            report.violations.extend(lint_file(file_path, active))
        except SyntaxError as exc:
            report.parse_errors.append(f"{file_path}: syntax error: {exc}")
    return report
