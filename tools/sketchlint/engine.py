"""The sketchlint engine: rule protocol, pragma handling, file walking.

A *rule* is an object with a ``code`` (``SK001`` ...), a one-line
``summary``, and a ``check(tree, context)`` method yielding
:class:`Violation` instances.  Rules with ``package_level = True``
(subclasses of :class:`PackageRule`) additionally see the whole batch of
files at once through :meth:`PackageRule.check_package` — the
:class:`PackageContext` carries a :class:`~tools.sketchlint.symbols.SymbolIndex`
so interprocedural rules (SK101–SK105) can resolve calls across files.
The engine owns everything rules should not have to care about: file
discovery, source parsing, per-line suppression pragmas, result caching
and report aggregation.

Suppression: a trailing comment ``# sketchlint: disable=SK003`` silences
the named codes (comma separated; ``all`` silences every rule) for
violations reported on that physical line — and, when the pragma sits on
the *first* line of a multi-line **simple** statement (an assignment or
call spanning several lines), for the whole statement span via the AST's
``end_lineno``.  Compound statements (``if``/``for``/``def`` ...) are
deliberately excluded from span suppression: a pragma on a ``for`` header
must not silently blanket the entire loop body.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from tools.sketchlint.symbols import SymbolIndex

if TYPE_CHECKING:  # cycle guard: cache stores Violations
    from tools.sketchlint.cache import ResultCache

_PRAGMA = re.compile(r"#\s*sketchlint:\s*disable=([A-Za-z0-9_,\s]+)")

#: statement types whose first-line pragma covers the whole span.  These
#: are the *simple* statements — the ones black/formatters legitimately
#: wrap across lines with the trailing comment stuck on line one.
_SPAN_STATEMENTS = (
    ast.Assign,
    ast.AnnAssign,
    ast.AugAssign,
    ast.Expr,
    ast.Return,
    ast.Raise,
    ast.Assert,
    ast.Delete,
    ast.Import,
    ast.ImportFrom,
)


@dataclass(frozen=True)
class Violation:
    """One rule violation at a concrete source location."""

    code: str
    message: str
    path: str
    line: int
    column: int = 0

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.column + 1}: {self.code} {self.message}"


@dataclass
class FileContext:
    """Everything a rule may want to know about the file under analysis."""

    path: str
    source: str
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    @property
    def name(self) -> str:
        """Base filename, e.g. ``infrequent_part.py``."""
        return Path(self.path).name

    def line_at(self, lineno: int) -> str:
        """The 1-indexed physical line ('' when out of range)."""
        index = lineno - 1
        if 0 <= index < len(self.lines):
            return self.lines[index]
        return ""


@dataclass
class PackageContext:
    """The whole linted batch, for interprocedural (package-level) rules."""

    index: SymbolIndex
    files: Dict[str, FileContext]
    trees: Dict[str, ast.AST]


class Rule:
    """Base class for sketchlint rules (subclasses override ``check``)."""

    code: str = "SK000"
    summary: str = ""
    #: one-paragraph description used by the SARIF rule metadata
    description: str = ""
    #: True for rules that analyze the whole batch (see PackageRule)
    package_level: bool = False

    def check(self, tree: ast.AST, context: FileContext) -> Iterator[Violation]:
        raise NotImplementedError  # sketchlint: disable=SK003

    # Helper for subclasses ------------------------------------------------
    def violation(
        self, context: FileContext, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            code=self.code,
            message=message,
            path=context.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
        )

    def violation_at(
        self, path: str, node: ast.AST, message: str
    ) -> Violation:
        """Like :meth:`violation` for package rules (path, not context)."""
        return Violation(
            code=self.code,
            message=message,
            path=path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
        )


class PackageRule(Rule):
    """A rule that needs the whole-package view (symbol index, all files).

    ``check`` is satisfied trivially — package rules report everything
    through :meth:`check_package`, which the engine calls exactly once
    per lint invocation with every file of the batch.
    """

    package_level = True

    def check(self, tree: ast.AST, context: FileContext) -> Iterator[Violation]:
        return iter(())

    def check_package(self, package: PackageContext) -> Iterator[Violation]:
        raise NotImplementedError  # sketchlint: disable=SK003


@dataclass
class LintReport:
    """Aggregated violations across one lint invocation."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)
    #: findings hidden by the baseline file (grandfathered debt)
    baseline_suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations and not self.parse_errors

    def render(self) -> str:
        out = [v.render() for v in self.violations]
        out.extend(self.parse_errors)
        summary = (
            f"sketchlint: {self.files_checked} file(s) checked, "
            f"{len(self.violations)} violation(s)"
        )
        if self.baseline_suppressed:
            summary += f" ({self.baseline_suppressed} baselined)"
        out.append(summary)
        return "\n".join(out)


def _suppressed_codes(line: str) -> Set[str]:
    """Codes suppressed by a ``# sketchlint: disable=...`` pragma, if any."""
    match = _PRAGMA.search(line)
    if not match:
        return set()
    return {token.strip().upper() for token in match.group(1).split(",") if token.strip()}


def _pragma_map(tree: ast.AST, lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Per-line suppressed codes: direct pragmas plus statement spans.

    A pragma on any physical line always covers that line.  When the line
    is the *first* line of a multi-line simple statement, the pragma
    covers every line through the statement's ``end_lineno`` — so one
    trailing comment suppresses a wrapped call or assignment whose
    violation is reported on a continuation line.
    """
    per_line: Dict[int, Set[str]] = {}
    for number, text in enumerate(lines, start=1):
        codes = _suppressed_codes(text)
        if codes:
            per_line.setdefault(number, set()).update(codes)
    if per_line:
        for node in ast.walk(tree):
            if not isinstance(node, _SPAN_STATEMENTS):
                continue
            start = node.lineno
            end = getattr(node, "end_lineno", start) or start
            if end <= start:
                continue
            codes = per_line.get(start)
            if not codes:
                continue
            for covered in range(start + 1, end + 1):
                per_line.setdefault(covered, set()).update(codes)
    return per_line


def _apply_pragmas(
    violations: Iterable[Violation], pragmas: Dict[int, Set[str]]
) -> List[Violation]:
    kept = []
    for violation in violations:
        suppressed = pragmas.get(violation.line, set())
        if "ALL" in suppressed or violation.code.upper() in suppressed:
            continue
        kept.append(violation)
    return kept


def _split_rules(active: Sequence[Rule]) -> Tuple[List[Rule], List[Rule]]:
    file_rules = [rule for rule in active if not rule.package_level]
    package_rules = [rule for rule in active if rule.package_level]
    return file_rules, package_rules


def _resolve_rules(
    rules: Optional[Sequence[Rule]], select: Optional[Sequence[str]] = None
) -> List[Rule]:
    from tools.sketchlint.rules import ALL_RULES, rules_by_code

    if select is not None:
        registry = rules_by_code()
        unknown = [code for code in select if code.upper() not in registry]
        if unknown:
            # Tool-facing API error, not library code. sketchlint: disable=SK003
            raise ValueError(  # sketchlint: disable=SK003
                f"unknown rule code(s): {', '.join(unknown)}"
            )
        return [registry[code.upper()]() for code in select]
    if rules is not None:
        return list(rules)
    return [cls() for cls in ALL_RULES]


def _sort_key(violation: Violation) -> Tuple[str, int, int, str]:
    return (violation.path, violation.line, violation.column, violation.code)


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Violation]:
    """Lint a source string; returns the (pragma-filtered) violations.

    Package-level rules are supported by treating the single source as a
    one-file package — exactly how the fixture tests exercise SK101–SK105.
    """
    active = _resolve_rules(rules)
    tree = ast.parse(source, filename=path)
    context = FileContext(path=path, source=source)
    file_rules, package_rules = _split_rules(active)
    collected: List[Violation] = []
    for rule in file_rules:
        collected.extend(rule.check(tree, context))
    if package_rules:
        package = PackageContext(
            index=SymbolIndex.build({path: tree}),
            files={path: context},
            trees={path: tree},
        )
        for rule in package_rules:
            collected.extend(
                v for v in rule.check_package(package) if v.path == path
            )
    collected = _apply_pragmas(collected, _pragma_map(tree, context.lines))
    collected.sort(key=_sort_key)
    return collected


def lint_file(path: Path, rules: Optional[Sequence[Rule]] = None) -> List[Violation]:
    """Lint one file on disk."""
    return lint_source(path.read_text(encoding="utf-8"), str(path), rules)


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into the ordered set of ``.py`` files."""
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    select: Optional[Sequence[str]] = None,
    cache: Optional["ResultCache"] = None,
) -> LintReport:
    """Lint every Python file under ``paths``.

    ``select`` restricts the run to the given rule codes (case-insensitive);
    unknown codes raise ``ValueError`` so typos in CI configs fail loudly.
    ``cache`` (see :mod:`tools.sketchlint.cache`) short-circuits per-file
    rule runs and the package-rule pass when nothing relevant changed.
    """
    active = _resolve_rules(rules, select)
    file_rules, package_rules = _split_rules(active)
    file_paths = list(iter_python_files(paths))

    report = LintReport(files_checked=len(file_paths))

    file_codes = sorted(rule.code for rule in file_rules)
    package_codes = sorted(rule.code for rule in package_rules)
    cache_keys: Dict[Path, str] = {}
    if cache is not None:
        for file_path in file_paths:
            cache_keys[file_path] = cache.file_key(file_path, file_codes)
        package_key = cache.package_key(file_paths, package_codes)
        if package_codes:
            fully_cached = cache.get_package(package_key) is not None
        else:
            fully_cached = True
        fully_cached = fully_cached and all(
            cache.get_file(key) is not None for key in cache_keys.values()
        )
        if fully_cached:
            for key in cache_keys.values():
                report.violations.extend(cache.get_file(key) or [])
            if package_codes:
                report.violations.extend(cache.get_package(package_key) or [])
            report.violations.sort(key=_sort_key)
            return report

    parsed: Dict[str, Tuple[ast.AST, FileContext]] = {}
    for file_path in file_paths:
        try:
            source = file_path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(file_path))
        except SyntaxError as exc:
            report.parse_errors.append(f"{file_path}: syntax error: {exc}")
            continue
        parsed[str(file_path)] = (tree, FileContext(path=str(file_path), source=source))

    pragma_maps: Dict[str, Dict[int, Set[str]]] = {
        path: _pragma_map(tree, context.lines)
        for path, (tree, context) in parsed.items()
    }

    for file_path in file_paths:
        key = str(file_path)
        if key not in parsed:
            continue
        tree, context = parsed[key]
        cached: Optional[List[Violation]] = None
        if cache is not None:
            cached = cache.get_file(cache_keys[file_path])
        if cached is not None:
            report.violations.extend(cached)
            continue
        collected: List[Violation] = []
        for rule in file_rules:
            collected.extend(rule.check(tree, context))
        collected = _apply_pragmas(collected, pragma_maps[key])
        if cache is not None:
            cache.put_file(cache_keys[file_path], collected)
        report.violations.extend(collected)

    if package_rules:
        package = PackageContext(
            index=SymbolIndex.build(
                {path: tree for path, (tree, _context) in parsed.items()}
            ),
            files={path: context for path, (_tree, context) in parsed.items()},
            trees={path: tree for path, (tree, _context) in parsed.items()},
        )
        package_violations: List[Violation] = []
        for rule in package_rules:
            package_violations.extend(rule.check_package(package))
        kept: List[Violation] = []
        for violation in package_violations:
            pragmas = pragma_maps.get(violation.path)
            if pragmas is not None:
                filtered = _apply_pragmas([violation], pragmas)
                kept.extend(filtered)
            else:
                kept.append(violation)
        if cache is not None:
            cache.put_package(
                cache.package_key(file_paths, package_codes), kept
            )
        report.violations.extend(kept)

    if cache is not None:
        cache.save()
    report.violations.sort(key=_sort_key)
    return report
