"""Development tooling for the repro package (not shipped with the wheel)."""
