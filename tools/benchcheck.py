"""benchcheck — compare a fresh benchmark report against its baseline.

The acceptance benchmarks (``benchmarks/bench_ingest.py``,
``benchmarks/bench_checkpoint.py``, ``benchmarks/bench_sharded.py`` and
``benchmarks/bench_kernel.py``) write JSON reports; the committed
``BENCH_ingest.json`` / ``BENCH_checkpoint.json`` /
``BENCH_sharded.json`` / ``BENCH_kernel.json`` at the repo root are
the blessed full-scale baselines.  This tool guards against performance
regressions by comparing a *fresh* report against a baseline:

* **dimensionless guarded metrics** — ``speedup`` (higher is better) and
  ``overhead_fraction`` (lower is better) are compared with a relative
  tolerance (default ±20%, the CI posture: quick runs on noisy shared
  machines still track the same ratio the full run measures, because
  both sides of each ratio are measured in the same process seconds
  apart).  Lower-is-better fractions additionally get a small absolute
  slack so a 0.04-baseline overhead is not held to ±0.008;
* **boolean verdicts** — every ``*_identical*`` field present in the
  fresh report must be true, full stop (byte-identity is never a matter
  of tolerance);
* **explicit bounds** — ``--min name=value`` / ``--max name=value``
  replace the relative check for that metric with an absolute floor or
  ceiling (dotted paths reach nested fields, e.g.
  ``--min batched.items_per_second=100000``).

Exit status: 0 when every guard holds, 1 on any regression, 2 on a
malformed invocation or unreadable report.  Intended entry points::

    python -m tools.benchcheck FRESH.json --baseline BENCH_ingest.json
    make benchcheck       # quick benches + both comparisons

Absolute throughput numbers (items/second) are deliberately *not*
guarded by default: they measure the runner, not the code.  Guard them
only via an explicit ``--min`` on hardware you control.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Tuple

#: default relative tolerance (CI posture; see module docstring)
DEFAULT_TOLERANCE = 0.20

#: extra absolute slack for lower-is-better fractions near zero
DEFAULT_ABSOLUTE_SLACK = 0.05

#: dimensionless metrics guarded whenever both reports carry them
GUARDED_METRICS: Dict[str, str] = {
    "speedup": "higher",
    "overhead_fraction": "lower",
}

#: boolean verdict fields that must be true in the fresh report
BOOLEAN_GUARDS = (
    "state_identical_to_sequential",
    "state_identical_to_plain",
    "state_identical_to_object_kernel",
    "recovered_state_identical",
    "merged_identical_to_sequential_fold",
)


class CheckFailure(Exception):
    """A guard did not hold (collected, not raised through main)."""


def lookup(report: Dict[str, Any], path: str) -> Optional[Any]:
    """Resolve a dotted path in a nested report; None when absent."""
    node: Any = report
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def _parse_bound(text: str) -> Tuple[str, float]:
    """Split one ``name=value`` override; raise SystemExit(2) on junk."""
    name, sep, raw = text.partition("=")
    if not sep or not name:
        raise SystemExit(f"benchcheck: malformed bound {text!r} (want name=value)")
    try:
        return name, float(raw)
    except ValueError as exc:
        raise SystemExit(f"benchcheck: non-numeric bound {text!r}") from exc


def _load(path: str) -> Dict[str, Any]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"benchcheck: cannot read report {path!r}: {exc}")
    if not isinstance(report, dict):
        raise SystemExit(f"benchcheck: report {path!r} is not a JSON object")
    return report


def compare(
    fresh: Dict[str, Any],
    baseline: Dict[str, Any],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    absolute_slack: float = DEFAULT_ABSOLUTE_SLACK,
    floors: Optional[Dict[str, float]] = None,
    ceilings: Optional[Dict[str, float]] = None,
) -> List[str]:
    """Return the list of regression messages (empty == pass).

    ``floors``/``ceilings`` are the ``--min``/``--max`` absolute bounds;
    a metric with an explicit bound skips the relative baseline check.
    """
    floors = dict(floors or {})
    ceilings = dict(ceilings or {})
    failures: List[str] = []
    lines: List[str] = []

    def record(name: str, verdict: str, detail: str) -> None:
        lines.append(f"  {verdict:<4} {name:<34} {detail}")
        if verdict == "FAIL":
            failures.append(f"{name}: {detail}")

    for name, floor in sorted(floors.items()):
        value = lookup(fresh, name)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            record(name, "FAIL", f"missing/non-numeric (need >= {floor:g})")
            continue
        verdict = "ok" if value >= floor else "FAIL"
        record(name, verdict, f"{value:g} (floor {floor:g})")

    for name, ceiling in sorted(ceilings.items()):
        value = lookup(fresh, name)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            record(name, "FAIL", f"missing/non-numeric (need <= {ceiling:g})")
            continue
        verdict = "ok" if value <= ceiling else "FAIL"
        record(name, verdict, f"{value:g} (ceiling {ceiling:g})")

    for name, direction in sorted(GUARDED_METRICS.items()):
        if name in floors or name in ceilings:
            continue  # the explicit bound replaced the relative check
        fresh_value = lookup(fresh, name)
        base_value = lookup(baseline, name)
        if not isinstance(fresh_value, (int, float)) or isinstance(
            fresh_value, bool
        ):
            continue  # this report does not carry the metric
        if not isinstance(base_value, (int, float)) or isinstance(
            base_value, bool
        ):
            record(name, "ok", f"{fresh_value:g} (no baseline; skipped)")
            continue
        if direction == "higher":
            bound = base_value * (1.0 - tolerance)
            verdict = "ok" if fresh_value >= bound else "FAIL"
            record(
                name,
                verdict,
                f"{fresh_value:g} vs baseline {base_value:g} "
                f"(floor {bound:g})",
            )
        else:
            bound = max(
                base_value * (1.0 + tolerance), base_value + absolute_slack
            )
            verdict = "ok" if fresh_value <= bound else "FAIL"
            record(
                name,
                verdict,
                f"{fresh_value:g} vs baseline {base_value:g} "
                f"(ceiling {bound:g})",
            )

    for name in BOOLEAN_GUARDS:
        value = lookup(fresh, name)
        if value is None:
            continue
        verdict = "ok" if value is True else "FAIL"
        record(name, verdict, str(value))

    print("\n".join(lines) if lines else "  (no guarded metrics found)")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.benchcheck",
        description="Compare a fresh benchmark report against its baseline.",
    )
    parser.add_argument("fresh", help="freshly-generated report JSON")
    parser.add_argument(
        "--baseline",
        required=True,
        help="committed baseline JSON (e.g. BENCH_ingest.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="relative tolerance for guarded metrics (default 0.20)",
    )
    parser.add_argument(
        "--absolute-slack",
        type=float,
        default=DEFAULT_ABSOLUTE_SLACK,
        help="extra absolute slack for lower-is-better fractions "
        "(default 0.05)",
    )
    parser.add_argument(
        "--min",
        dest="floors",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="absolute floor for a (dotted-path) metric; repeatable",
    )
    parser.add_argument(
        "--max",
        dest="ceilings",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="absolute ceiling for a (dotted-path) metric; repeatable",
    )
    args = parser.parse_args(argv)
    if args.tolerance < 0 or args.absolute_slack < 0:
        raise SystemExit("benchcheck: tolerance/slack must be non-negative")

    fresh = _load(args.fresh)
    baseline = _load(args.baseline)
    floors = dict(_parse_bound(bound) for bound in args.floors)
    ceilings = dict(_parse_bound(bound) for bound in args.ceilings)

    print(f"benchcheck: {args.fresh} vs baseline {args.baseline}")
    failures = compare(
        fresh,
        baseline,
        tolerance=args.tolerance,
        absolute_slack=args.absolute_slack,
        floors=floors,
        ceilings=ceilings,
    )
    if failures:
        print(f"benchcheck: FAIL ({len(failures)} regression(s))")
        return 1
    print("benchcheck: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
