"""covfloor — the single source of truth for the coverage gate's floor.

The ratchet-only floor lives in ``pyproject.toml`` under
``[tool.repro] coverage_floor`` so that the Makefile, the CI workflow
and any local invocation all read the same number::

    python -m pytest --cov=repro --cov-fail-under="$(python -c \
        'import tools.covfloor as c; print(c.floor())')"

Parsed with :mod:`tomllib` where available (3.11+); older interpreters
fall back to a line scan that only has to understand the one
``coverage_floor = <int>`` assignment this file owns.
"""

from __future__ import annotations

import os
import re
import sys

try:  # Python 3.11+
    import tomllib as _toml
except ModuleNotFoundError:  # pragma: no cover - 3.9/3.10 fallback
    _toml = None  # type: ignore[assignment]

#: repo root (this file lives in tools/)
_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_PYPROJECT = os.path.join(_ROOT, "pyproject.toml")

_FLOOR_LINE = re.compile(r"^\s*coverage_floor\s*=\s*(\d+)\s*(#.*)?$")


def floor(pyproject_path: str = _PYPROJECT) -> int:
    """The coverage floor recorded in ``pyproject.toml`` (an integer)."""
    if _toml is not None:
        with open(pyproject_path, "rb") as handle:
            data = _toml.load(handle)
        value = data.get("tool", {}).get("repro", {}).get("coverage_floor")
        if not isinstance(value, int) or isinstance(value, bool):
            raise ValueError(
                "pyproject.toml is missing an integer "
                "[tool.repro] coverage_floor"
            )
        return value
    with open(pyproject_path, "r", encoding="utf-8") as handle:
        for line in handle:
            match = _FLOOR_LINE.match(line)
            if match:
                return int(match.group(1))
    raise ValueError(
        "pyproject.toml is missing an integer [tool.repro] coverage_floor"
    )


if __name__ == "__main__":  # pragma: no cover - tiny CLI shim
    print(floor())
    sys.exit(0)
