# The local gate — identical commands to .github/workflows/ci.yml and
# .pre-commit-config.yaml, so "make check" reproduces CI exactly.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint typecheck sketchlint test test-debug bench-ingest check

lint:
	ruff check src tools

typecheck:
	mypy

sketchlint:
	$(PYTHON) -m tools.sketchlint src/repro

test:
	$(PYTHON) -m pytest -x -q

test-debug:
	REPRO_DEBUG_INVARIANTS=1 $(PYTHON) -m pytest tests/core tests/analysis -q

# acceptance benchmark: 1M-item Zipf(1.1) stream, batched path must be
# >= 2x the per-item loop and byte-identical in state
bench-ingest:
	$(PYTHON) benchmarks/bench_ingest.py --min-speedup 2.0

check: lint typecheck sketchlint test
