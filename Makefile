# The local gate — identical commands to .github/workflows/ci.yml and
# .pre-commit-config.yaml, so "make check" reproduces CI exactly.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint typecheck sketchlint test test-debug faults bench-ingest \
	bench-checkpoint check

lint:
	ruff check src tools

typecheck:
	mypy

sketchlint:
	$(PYTHON) -m tools.sketchlint src/repro

test:
	$(PYTHON) -m pytest -x -q

test-debug:
	REPRO_DEBUG_INVARIANTS=1 $(PYTHON) -m pytest tests/core tests/analysis -q

# fault-injection suite: crash recovery, corruption taxonomy and decode
# degradation, all with runtime invariant checks switched on
faults:
	REPRO_DEBUG_INVARIANTS=1 $(PYTHON) -m pytest tests/runtime \
		tests/core/test_degrade.py \
		tests/core/test_serialization_integrity.py -q

# acceptance benchmark: 1M-item Zipf(1.1) stream, batched path must be
# >= 2x the per-item loop and byte-identical in state
bench-ingest:
	$(PYTHON) benchmarks/bench_ingest.py --min-speedup 2.0

# acceptance benchmark: durable ingestion must stay within 10% of the
# plain batched run at the default cadence, byte-identically
bench-checkpoint:
	$(PYTHON) benchmarks/bench_checkpoint.py --max-overhead 0.10

check: lint typecheck sketchlint test
