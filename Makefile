# The local gate — identical commands to .github/workflows/ci.yml and
# .pre-commit-config.yaml, so "make check" reproduces CI exactly.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint typecheck sketchlint lint-concurrency lint-sarif \
	sketchlint-baseline bench-sketchlint test test-debug faults chaos \
	bench-ingest bench-checkpoint bench-sharded bench-service \
	bench-kernel benchcheck coverage check

lint:
	ruff check src tools

typecheck:
	mypy

# domain rules SK001-SK206 over the library and the tooling itself,
# modulo the checked-in baseline (.sketchlint-baseline.json)
sketchlint:
	$(PYTHON) -m tools.sketchlint src tools

# the SK2xx concurrency rules alone (lock-order graph, blocking under a
# lock, unguarded shared writes, fork safety, wait loops, recording
# under a lock) — must report zero findings, no baseline entries allowed
lint-concurrency:
	$(PYTHON) -m tools.sketchlint --no-baseline \
		--select SK201,SK202,SK203,SK204,SK205,SK206 src tools

# same gate, emitted as a SARIF 2.1.0 log for GitHub code scanning
lint-sarif:
	$(PYTHON) -m tools.sketchlint src tools --format sarif \
		--output sketchlint.sarif

# refresh the grandfathered-findings baseline; every entry still needs a
# hand-written justification (the repo-gate test rejects blank ones)
sketchlint-baseline:
	$(PYTHON) -m tools.sketchlint src tools --update-baseline

# perf pin: a cold full-repo analysis must stay under 10s (cached < 1s)
bench-sketchlint:
	$(PYTHON) benchmarks/bench_sketchlint.py

test:
	$(PYTHON) -m pytest -x -q

test-debug:
	REPRO_DEBUG_INVARIANTS=1 $(PYTHON) -m pytest tests/core tests/analysis -q

# fault-injection suite: crash recovery, corruption taxonomy and decode
# degradation, all with runtime invariant checks switched on
faults:
	REPRO_DEBUG_INVARIANTS=1 $(PYTHON) -m pytest tests/runtime \
		tests/core/test_degrade.py \
		tests/core/test_serialization_integrity.py -q

# networked fault suite: retries/dedup/breaker/shedding/drain plus the
# chaos-proxy acceptance (convergence under resets, corruption, delays
# and blackholes must be byte-identical with zero duplicate applies),
# all with runtime invariant checks switched on and the hang watchdog
# armed — a wedged socket dumps stacks instead of blocking the gate
chaos:
	REPRO_DEBUG_INVARIANTS=1 REPRO_TEST_WATCHDOG=600 \
		$(PYTHON) -m pytest tests/service tests/runtime/test_stall.py -q

# acceptance benchmark: 1M-item Zipf(1.1) stream, batched path must be
# >= 2x the per-item loop and byte-identical in state
bench-ingest:
	$(PYTHON) benchmarks/bench_ingest.py --min-speedup 2.0

# acceptance benchmark: durable ingestion must stay within 10% of the
# plain batched run at the default cadence, byte-identically
bench-checkpoint:
	$(PYTHON) benchmarks/bench_checkpoint.py --max-overhead 0.10

# acceptance benchmark: 4-shard multiprocess ingestion must be >= 2x the
# single-process run on the 1M-item stream, and the merged sketch must
# be byte-identical to the sequential per-partition fold
bench-sharded:
	$(PYTHON) benchmarks/bench_sharded.py --min-speedup 2.0

# acceptance benchmark: the numpy array kernel must be >= 1.8x the
# object-kernel batched path on the 1M-item stream, byte-identically
bench-kernel:
	$(PYTHON) benchmarks/bench_kernel.py --min-speedup 1.8

# acceptance benchmark: loopback PUSH/QUERY service throughput and
# latency vs the in-process fold; the remote aggregate must stay
# byte-identical to the sequential reference
bench-service:
	$(PYTHON) benchmarks/bench_service.py --max-overhead 0.5

# regression gate: quick benches compared against the committed
# full-scale baselines on their dimensionless metrics (±20% relative by
# default; the speedup floors are absolute because quick workloads batch
# less, and the 100k-item sharded run is dominated by process startup —
# see tools/benchcheck.py).  Fresh reports go to *_fresh.json so the
# baselines are never overwritten.
benchcheck:
	$(PYTHON) benchmarks/bench_ingest.py --quick --min-speedup 1.0 \
		--output BENCH_ingest_fresh.json
	$(PYTHON) benchmarks/bench_checkpoint.py --quick --repeats 2 \
		--max-overhead 1.0 --output BENCH_checkpoint_fresh.json
	$(PYTHON) benchmarks/bench_sharded.py --quick --repeats 2 \
		--output BENCH_sharded_fresh.json
	$(PYTHON) benchmarks/bench_service.py --quick --repeats 2 \
		--output BENCH_service_fresh.json
	$(PYTHON) benchmarks/bench_kernel.py --quick --repeats 2 \
		--min-speedup 1.5 --output BENCH_kernel_fresh.json
	$(PYTHON) -m tools.benchcheck BENCH_ingest_fresh.json \
		--baseline BENCH_ingest.json --min speedup=1.4
	$(PYTHON) -m tools.benchcheck BENCH_checkpoint_fresh.json \
		--baseline BENCH_checkpoint.json --max overhead_fraction=0.5
	$(PYTHON) -m tools.benchcheck BENCH_sharded_fresh.json \
		--baseline BENCH_sharded.json --min speedup=0.3
	$(PYTHON) -m tools.benchcheck BENCH_service_fresh.json \
		--baseline BENCH_service.json --max overhead_fraction=0.5
	$(PYTHON) -m tools.benchcheck BENCH_kernel_fresh.json \
		--baseline BENCH_kernel.json --min speedup=1.5
	$(PYTHON) benchmarks/bench_sketchlint.py \
		--output BENCH_sketchlint_fresh.json
	$(PYTHON) -m tools.benchcheck BENCH_sketchlint_fresh.json \
		--baseline BENCH_sketchlint.json \
		--max cold_seconds=10 --max cached_seconds=1

# branch coverage over src/repro with the ratchet-only floor recorded in
# pyproject.toml ([tool.repro] coverage_floor); needs pytest-cov
coverage:
	$(PYTHON) -m pytest -q --cov=repro --cov-branch \
		--cov-report=term-missing:skip-covered --cov-report=html \
		--cov-fail-under=$$($(PYTHON) -c "import tools.covfloor as c; print(c.floor())")

check: lint typecheck sketchlint test
