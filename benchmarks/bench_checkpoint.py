#!/usr/bin/env python3
"""Durable-ingestion overhead: ``CheckpointingIngestor`` vs raw batches.

The runtime journals every chunk (fsync before apply) and periodically
writes an atomic checkpoint; this script measures what that durability
costs over the paper's canonical workload (a Zipf(1.1) trace) at the
default cadence, and cross-checks the two contracts on the fly:

* **byte-identity** — the durably-ingested sketch must equal the plain
  ``insert_batch`` run with the same chunking, state-for-state;
* **verifiable checkpoints** — the checkpoint written at the end must
  pass :func:`~repro.core.serialization.verify_state` and rebuild into
  an identical sketch via a fresh recovery.

Run (from the repository root):

    PYTHONPATH=src python benchmarks/bench_checkpoint.py           # 1M items
    PYTHONPATH=src python benchmarks/bench_checkpoint.py --quick   # CI smoke

Timings are interleaved best-of-``--repeats`` (default 3) so host noise
lands on neither side of the comparison; a dedicated extra durable run
performs the two verdict checks.  Writes ``BENCH_checkpoint.json`` (see
``--output``) with rates, overhead and both verdicts.  Target: <= 10%
overhead at the default cadence.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from typing import Dict, List, Optional

from _harness import Side, interleaved_best
from repro.core import DaVinciConfig, DaVinciSketch
from repro.core.serialization import to_state, verify_state
from repro.runtime import CheckpointingIngestor
from repro.workloads import zipf_trace

DEFAULT_MEMORY_KB = 64.0


def build_config(memory_kb: float, seed: int) -> DaVinciConfig:
    return DaVinciConfig.from_memory_kb(memory_kb, seed=seed)


def time_plain(
    config: DaVinciConfig, trace: List[int], chunk_items: int
) -> "tuple[float, DaVinciSketch]":
    sketch = DaVinciSketch(config)
    start = time.perf_counter()
    sketch.insert_all(trace, chunk_size=chunk_items)
    return time.perf_counter() - start, sketch


def _measure_durable_round(args: argparse.Namespace, config: DaVinciConfig, trace: List[int]) -> "tuple[float, None]":
    with tempfile.TemporaryDirectory(
        prefix="bench-checkpoint-rep-"
    ) as scratch:
        ingestor = CheckpointingIngestor(
            config,
            scratch,
            checkpoint_every_items=args.checkpoint_every_items,
            journal_chunk_items=args.journal_chunk_items,
        )
        start = time.perf_counter()
        ingestor.ingest_keys(trace)
        ingestor.flush()
        seconds = time.perf_counter() - start
        ingestor.close()
    return seconds, None


def _interleaved_best(
    args: argparse.Namespace,
    config: DaVinciConfig,
    trace: List[int],
) -> "tuple[float, float, DaVinciSketch]":
    """Best-of-``--repeats`` plain/durable seconds, interleaved.

    Delegates to :func:`_harness.interleaved_best`, which alternates the
    two measurements inside each round so host noise lands on neither
    side of the comparison.
    """
    plain, durable = interleaved_best(
        [
            Side(
                "plain",
                lambda: time_plain(config, trace, args.journal_chunk_items),
            ),
            Side(
                "durable",
                lambda: _measure_durable_round(args, config, trace),
            ),
        ],
        repeats=args.repeats,
    )
    plain_sketch: Optional[DaVinciSketch] = plain.artifact
    assert plain_sketch is not None
    return plain.seconds, durable.seconds, plain_sketch


def time_durable(
    config: DaVinciConfig,
    trace: List[int],
    directory: str,
    chunk_items: int,
    every_items: int,
) -> "tuple[float, float, CheckpointingIngestor]":
    ingestor = CheckpointingIngestor(
        config,
        directory,
        checkpoint_every_items=every_items,
        journal_chunk_items=chunk_items,
    )
    start = time.perf_counter()
    ingestor.ingest_keys(trace)
    ingestor.flush()
    ingest_seconds = time.perf_counter() - start
    start = time.perf_counter()
    ingestor.checkpoint()
    final_checkpoint_seconds = time.perf_counter() - start
    ingestor.close()
    return ingest_seconds, final_checkpoint_seconds, ingestor


def run(args: argparse.Namespace) -> Dict[str, object]:
    print(
        f"generating Zipf({args.skew}) trace: {args.items:,} items over "
        f"{args.flows:,} flows (seed {args.seed}) ...",
        flush=True,
    )
    trace = zipf_trace(
        num_packets=args.items,
        num_flows=args.flows,
        skew=args.skew,
        seed=args.seed,
    )
    config = build_config(args.memory_kb, args.seed + 2)

    # warm-up pass so both measurements see hot bytecode/caches
    warm = DaVinciSketch(build_config(args.memory_kb, args.seed + 1))
    warm.insert_all(trace[: min(len(trace), 50_000)])

    plain_seconds, ingest_seconds, plain_sketch = _interleaved_best(
        args, config, trace
    )

    # dedicated (untimed-for-overhead) durable run for the two contracts
    with tempfile.TemporaryDirectory(prefix="bench-checkpoint-") as directory:
        _ingest_seconds, final_checkpoint_seconds, ingestor = time_durable(
            config,
            trace,
            directory,
            args.journal_chunk_items,
            args.checkpoint_every_items,
        )
        state_identical = to_state(ingestor.sketch) == to_state(plain_sketch)

        # verify_state round-trip on the final checkpoint via real recovery
        recovered = CheckpointingIngestor(
            config,
            directory,
            checkpoint_every_items=args.checkpoint_every_items,
            journal_chunk_items=args.journal_chunk_items,
        )
        checkpoint_state = to_state(recovered.sketch)
        verify_state(checkpoint_state)  # raises on any inconsistency
        recovery_identical = checkpoint_state == to_state(plain_sketch)
        recovered.close()

    plain_rate = len(trace) / plain_seconds
    durable_rate = len(trace) / ingest_seconds
    overhead = ingest_seconds / plain_seconds - 1.0

    result: Dict[str, object] = {
        "workload": {
            "items": args.items,
            "flows": args.flows,
            "skew": args.skew,
            "seed": args.seed,
            "memory_kb": args.memory_kb,
            "journal_chunk_items": args.journal_chunk_items,
            "checkpoint_every_items": args.checkpoint_every_items,
            "repeats": args.repeats,
        },
        "plain": {
            "seconds": plain_seconds,
            "items_per_second": plain_rate,
        },
        "durable": {
            "seconds": ingest_seconds,
            "items_per_second": durable_rate,
            "final_checkpoint_seconds": final_checkpoint_seconds,
        },
        "overhead_fraction": overhead,
        "state_identical_to_plain": state_identical,
        "recovered_state_identical": recovery_identical,
    }

    print(
        f"plain   : {plain_seconds:8.3f} s  ({plain_rate:12,.0f} items/s)"
    )
    print(
        f"durable : {ingest_seconds:8.3f} s  ({durable_rate:12,.0f} items/s)"
        f"  + final checkpoint {final_checkpoint_seconds:.3f} s"
    )
    print(f"overhead: {overhead * 100:.1f}%")
    print(f"state identical to plain run : {state_identical}")
    print(f"recovered checkpoint identical: {recovery_identical}")
    return result


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--items", type=int, default=1_000_000, help="stream length"
    )
    parser.add_argument(
        "--flows", type=int, default=100_000, help="distinct keys"
    )
    parser.add_argument("--skew", type=float, default=1.1, help="Zipf skew")
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument(
        "--memory-kb",
        type=float,
        default=DEFAULT_MEMORY_KB,
        help="sketch memory budget (KB)",
    )
    parser.add_argument(
        "--journal-chunk-items",
        type=int,
        default=16384,
        help="pairs per journal record (the ingestor default)",
    )
    parser.add_argument(
        "--checkpoint-every-items",
        type=int,
        default=262144,
        help="checkpoint cadence in items (the ingestor default)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="interleaved timing rounds; best-of per side is reported",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: 100k items / 20k flows",
    )
    parser.add_argument(
        "--output",
        default="BENCH_checkpoint.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=0.0,
        help="exit non-zero if overhead exceeds this fraction (<=0 disables)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.items = min(args.items, 100_000)
        args.flows = min(args.flows, 20_000)

    result = run(args)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    if not result["state_identical_to_plain"]:
        print("ERROR: durable sketch diverged from the plain batched run")
        return 1
    if not result["recovered_state_identical"]:
        print("ERROR: recovered checkpoint diverged from the plain run")
        return 1
    if args.max_overhead > 0 and float(result["overhead_fraction"]) > (
        args.max_overhead
    ):
        print(
            f"ERROR: durability overhead "
            f"{float(result['overhead_fraction']) * 100:.1f}% exceeds "
            f"{args.max_overhead * 100:.1f}%"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
