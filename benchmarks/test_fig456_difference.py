"""Figures 4h,i / 5h,i / 6h,i — set difference ARE vs memory.

Two scenarios per the paper: **overlap** (first two-thirds minus last
two-thirds; neither operand contains the other) and **inclusion** (whole
minus first half; B ⊂ A, the packet-loss setting).  Competitors:
DaVinci, LossRadar, FlowRadar, FermatSketch.  Reproduced claims: DaVinci
is the most accurate in both scenarios, FlowRadar the weakest (its flow
fields cancel for common flows, stranding the packet deltas).
"""

import pytest
from conftest import (
    BENCH_DATASETS,
    BENCH_MEMORIES,
    BENCH_SCALE,
    BENCH_SEED,
    report,
)

from repro.experiments import figure_difference, render_sweep


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
@pytest.mark.parametrize("mode", ["overlap", "inclusion"])
def test_difference_panel(run_once, dataset, mode):
    result = run_once(
        figure_difference,
        dataset=dataset,
        scale=BENCH_SCALE,
        memories_kb=BENCH_MEMORIES,
        seed=BENCH_SEED,
        mode=mode,
    )
    report(
        f"Figure 4h/i-analogue ({dataset}, {mode}): difference ARE vs memory",
        render_sweep(result),
    )

    top = max(BENCH_MEMORIES)
    if dataset != "tpcds":
        assert result.best_algorithm_at(top) == "DaVinci"
        assert result.series["DaVinci"][top] < result.series["FlowRadar"][top]
        assert result.series["DaVinci"][top] < result.series["LossRadar"][top]
        assert result.series["DaVinci"][top] < result.series["Fermat"][top]
