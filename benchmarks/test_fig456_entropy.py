"""Figures 4f / 5f / 6f — entropy RE vs memory.

Competitors: DaVinci, Elastic, FCM, MRAC, UnivMon.  Reproduced claim:
DaVinci has the lowest error at the top of the memory range, with UnivMon
far behind.
"""

import pytest
from conftest import (
    BENCH_DATASETS,
    BENCH_MEMORIES,
    BENCH_SCALE,
    BENCH_SEED,
    report,
)

from repro.experiments import figure_entropy, render_sweep


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def test_entropy_panel(run_once, dataset):
    result = run_once(
        figure_entropy,
        dataset=dataset,
        scale=BENCH_SCALE,
        memories_kb=BENCH_MEMORIES,
        seed=BENCH_SEED,
    )
    report(f"Figure 4f-analogue ({dataset}): entropy RE vs memory", render_sweep(result))

    top = max(BENCH_MEMORIES)
    if dataset != "tpcds":
        assert result.series["DaVinci"][top] < 0.05
        assert result.series["DaVinci"][top] < result.series["UnivMon"][top]
        assert result.series["DaVinci"][top] < result.series["MRAC"][top]
