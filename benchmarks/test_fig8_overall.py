"""Figure 8 — overall multi-task performance: DaVinci vs CSOA.

CSOA = FCM + FermatSketch + JoinSketch, the smallest composite covering
all nine tasks; its budget is grown until its frequency accuracy matches
DaVinci's (the paper's accuracy-matched protocol).  Reproduced claims
(directional — absolute Mpps are not comparable from pure Python):

* Fig. 8a — DaVinci's average memory accesses per insertion are a
  fraction of CSOA's (paper: 22.6% on average);
* Fig. 8b — DaVinci's insertion throughput is a multiple of CSOA's
  (paper: 23-112x on the C++ testbed);
* Fig. 8c — DaVinci needs a fraction of CSOA's memory at matched
  accuracy (paper: 7-41%).
"""

from conftest import BENCH_SCALE, BENCH_SEED, report

from repro.experiments import overall_performance, render_cases

CASES_KB = (2, 3, 4, 6, 8, 12, 16, 24, 32)


def test_fig8_overall_performance(run_once):
    results = run_once(
        overall_performance,
        scale=BENCH_SCALE,
        cases_kb=CASES_KB,
        seed=BENCH_SEED,
    )
    report("Figure 8: overall performance, DaVinci vs CSOA (9 cases)", render_cases(results))

    for case in results:
        assert case.davinci_ama < case.csoa_ama  # Fig. 8a
        assert case.throughput_ratio > 1.0  # Fig. 8b (direction, per case)
        assert case.memory_percentage <= 1.0  # Fig. 8c

    # margins on the means (single-case timings jitter under system load)
    mean_speedup = sum(c.throughput_ratio for c in results) / len(results)
    assert mean_speedup > 1.5  # paper: 23-112x on the C++ testbed
    mean_ama_pct = sum(c.ama_percentage for c in results) / len(results)
    assert mean_ama_pct < 0.6  # paper: 22.6%; Python path overheads differ
    mean_mem_pct = sum(c.memory_percentage for c in results) / len(results)
    assert mean_mem_pct < 0.6  # paper: >59% memory savings
