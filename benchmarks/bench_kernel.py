#!/usr/bin/env python3
"""Ingest kernels: object ``insert_batch`` vs the numpy array kernel.

``DaVinciSketch(config, kernel="array")`` routes ``insert_batch`` through
``repro.core.kernel.ArrayKernelEngine``, which loads the three sketch
parts into contiguous numpy arrays and replays each chunk with vectorized
group-aggregation, rank-round frequent-part updates and first-occurrence
element-filter rounds — while producing a sketch state byte-identical to
the object kernel for the same input order.  This script measures what
that vectorization buys on the paper's canonical workload (a Zipf(1.1)
packet trace) and cross-checks the byte-identity claim on the fly via
``to_state``.

Run (from the repository root):

    PYTHONPATH=src python benchmarks/bench_kernel.py               # 1M items
    PYTHONPATH=src python benchmarks/bench_kernel.py --quick       # CI smoke

Timings are interleaved best-of-``--repeats`` (default 3) so host noise
lands on neither side of the comparison.  Writes ``BENCH_kernel.json``
(see ``--output``) with the measured rates, the speedup and the identity
verdict.  Target: >= 1.8x items/sec over the object-kernel batched
baseline at the full 1M-item scale.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

from _harness import Side, interleaved_best
from repro.core import DaVinciConfig, DaVinciSketch
from repro.core.kernel import HAVE_NUMPY
from repro.core.serialization import to_state
from repro.workloads import zipf_trace

#: memory budget for the benchmark sketches (generous enough that the
#: frequent part is exercised, small enough to be cache-resident)
DEFAULT_MEMORY_KB = 64.0


def build_sketch(
    memory_kb: float, seed: int, kernel: str
) -> DaVinciSketch:
    config = DaVinciConfig.from_memory_kb(memory_kb, seed=seed)
    return DaVinciSketch(config, kernel=kernel)


def time_kernel(
    memory_kb: float,
    seed: int,
    kernel: str,
    trace: List[int],
    chunk_size: int,
) -> "tuple[float, DaVinciSketch]":
    sketch = build_sketch(memory_kb, seed, kernel)
    start = time.perf_counter()
    sketch.insert_all(trace, chunk_size=chunk_size)
    return time.perf_counter() - start, sketch


def run(args: argparse.Namespace) -> Dict[str, object]:
    print(
        f"generating Zipf({args.skew}) trace: {args.items:,} items over "
        f"{args.flows:,} flows (seed {args.seed}) ...",
        flush=True,
    )
    trace = zipf_trace(
        num_packets=args.items,
        num_flows=args.flows,
        skew=args.skew,
        seed=args.seed,
    )

    # warm-up pass so both measurements see hot bytecode/caches
    for kernel in ("object", "array"):
        warm = build_sketch(args.memory_kb, args.seed + 1, kernel)
        warm.insert_all(trace[: min(len(trace), 50_000)])

    obj, arr = interleaved_best(
        [
            Side(
                "object",
                lambda: time_kernel(
                    args.memory_kb,
                    args.seed + 2,
                    "object",
                    trace,
                    args.chunk_size,
                ),
            ),
            Side(
                "array",
                lambda: time_kernel(
                    args.memory_kb,
                    args.seed + 2,
                    "array",
                    trace,
                    args.chunk_size,
                ),
            ),
        ],
        repeats=args.repeats,
    )
    object_sketch: DaVinciSketch = obj.artifact
    array_sketch: DaVinciSketch = arr.artifact

    state_identical = to_state(object_sketch) == to_state(array_sketch)

    object_rate = len(trace) / obj.seconds
    array_rate = len(trace) / arr.seconds
    speedup = array_rate / object_rate

    result: Dict[str, object] = {
        "workload": {
            "items": args.items,
            "flows": args.flows,
            "skew": args.skew,
            "seed": args.seed,
            "memory_kb": args.memory_kb,
            "chunk_size": args.chunk_size,
        },
        "numpy_available": HAVE_NUMPY,
        "object_kernel": {
            "seconds": obj.seconds,
            "items_per_second": object_rate,
            "ama": object_sketch.average_memory_access(),
        },
        "array_kernel": {
            "seconds": arr.seconds,
            "items_per_second": array_rate,
            "ama": array_sketch.average_memory_access(),
        },
        "speedup": speedup,
        "state_identical_to_object_kernel": state_identical,
    }

    print(
        f"object kernel: {obj.seconds:8.3f} s  "
        f"({object_rate:12,.0f} items/s, AMA "
        f"{object_sketch.average_memory_access():.2f})"
    )
    print(
        f"array kernel : {arr.seconds:8.3f} s  "
        f"({array_rate:12,.0f} items/s, AMA "
        f"{array_sketch.average_memory_access():.2f})"
    )
    print(f"speedup      : {speedup:.2f}x")
    print(f"state identical to object kernel: {state_identical}")
    return result


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--items", type=int, default=1_000_000, help="stream length"
    )
    parser.add_argument(
        "--flows", type=int, default=100_000, help="distinct keys"
    )
    parser.add_argument("--skew", type=float, default=1.1, help="Zipf skew")
    parser.add_argument("--seed", type=int, default=11, help="workload seed")
    parser.add_argument(
        "--memory-kb",
        type=float,
        default=DEFAULT_MEMORY_KB,
        help="sketch memory budget (KB)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=1 << 16,
        help="insert_batch chunk size",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="interleaved measurement rounds (best-of-N)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: 100k items / 20k flows, 2 rounds",
    )
    parser.add_argument(
        "--output",
        default="BENCH_kernel.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="exit non-zero if the array kernel is below this speedup",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.items = min(args.items, 100_000)
        args.flows = min(args.flows, 20_000)
        args.repeats = min(args.repeats, 2)

    if not HAVE_NUMPY:
        print("ERROR: numpy is unavailable; the array kernel cannot run")
        return 1

    result = run(args)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    if not result["state_identical_to_object_kernel"]:
        print("ERROR: array-kernel sketch state diverged from object kernel")
        return 1
    if float(result["speedup"]) < args.min_speedup:  # type: ignore[arg-type]
        print(
            f"ERROR: speedup {result['speedup']:.2f}x below required "
            f"{args.min_speedup:.2f}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
