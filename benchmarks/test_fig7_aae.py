"""Figure 7c — frequency AAE vs memory (CAIDA).

Same protocol as the Figure-4a panel, scored with Average Absolute Error.
Reproduced claim: "the AAE performance of DaVinci Sketch is also better
than existing algorithms in most cases".
"""

from conftest import BENCH_MEMORIES, BENCH_SCALE, BENCH_SEED, report

from repro.experiments import figure_frequency, render_sweep


def test_fig7c_frequency_aae(run_once):
    result = run_once(
        figure_frequency,
        dataset="caida",
        scale=BENCH_SCALE,
        memories_kb=BENCH_MEMORIES,
        seed=BENCH_SEED,
        metric="aae",
    )
    report("Figure 7c: frequency AAE vs memory (caida)", render_sweep(result))

    top = max(BENCH_MEMORIES)
    assert result.best_algorithm_at(top) == "DaVinci"
    wins = sum(
        1
        for memory in BENCH_MEMORIES
        if result.best_algorithm_at(memory) == "DaVinci"
    )
    assert wins >= len(BENCH_MEMORIES) // 2  # "better in most cases"
