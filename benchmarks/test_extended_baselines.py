"""Extended comparisons against related-work specialists (extension).

The paper's evaluated set omits three specialists its related-work section
cites; these benches pit DaVinci against them on their home turf:

* **HyperLogLog** on cardinality (the dedicated distinct counter);
* **HeavyKeeper** on heavy hitters (the dedicated top-k finder);
* **MV-Sketch** on heavy hitters and (via linear subtraction) changers.

The expected outcome is the paper's thesis in miniature: the specialists
are hard to beat at their one task, but DaVinci stays within striking
distance of each while answering all nine tasks from one structure.
"""

from conftest import BENCH_MEMORIES, BENCH_SCALE, BENCH_SEED, report

from repro.experiments.harness import (
    HEAVY_HITTER_FRACTION,
    build_davinci,
    fill,
    heavy_threshold,
    run_sweep,
)
from repro.metrics import f1_score, relative_error
from repro.experiments.report import render_sweep
from repro.sketches import HeavyKeeper, HyperLogLog, MVSketch
from repro.workloads import groundtruth as gt
from repro.workloads import halves, load_trace


def test_cardinality_vs_hyperloglog(run_once):
    trace = load_trace("caida", scale=BENCH_SCALE, seed=BENCH_SEED)
    true_cardinality = float(gt.cardinality(trace))

    def scored(sketch) -> float:
        return relative_error(true_cardinality, fill(sketch, trace).cardinality())

    result = run_once(
        run_sweep,
        "cardinality-extended",
        "caida",
        "RE",
        {
            "DaVinci": lambda kb: scored(build_davinci(kb, seed=BENCH_SEED + 1)),
            "HLL": lambda kb: scored(
                HyperLogLog.from_memory(kb * 1024, seed=BENCH_SEED + 2)
            ),
        },
        BENCH_MEMORIES,
    )
    report("Extended: cardinality vs HyperLogLog", render_sweep(result))

    top = max(BENCH_MEMORIES)
    # the omni-task sketch stays within one order of the specialist
    assert result.series["DaVinci"][top] < max(
        0.05, 10 * result.series["HLL"][top]
    )


def test_heavy_hitters_vs_specialists(run_once):
    trace = load_trace("caida", scale=BENCH_SCALE, seed=BENCH_SEED)
    truth = gt.frequencies(trace)
    threshold = heavy_threshold(len(trace), HEAVY_HITTER_FRACTION)
    correct = gt.heavy_hitters(truth, threshold)

    def scored(sketch) -> float:
        fill(sketch, trace)
        return f1_score(set(sketch.heavy_hitters(threshold)), correct)

    result = run_once(
        run_sweep,
        "heavy-hitter-extended",
        "caida",
        "F1",
        {
            "DaVinci": lambda kb: scored(build_davinci(kb, seed=BENCH_SEED + 1)),
            "HeavyKeeper": lambda kb: scored(
                HeavyKeeper.from_memory(kb * 1024, seed=BENCH_SEED + 3)
            ),
            "MV-Sketch": lambda kb: scored(
                MVSketch.from_memory(kb * 1024, seed=BENCH_SEED + 4)
            ),
        },
        BENCH_MEMORIES,
    )
    report("Extended: heavy hitters vs HeavyKeeper / MV-Sketch", render_sweep(result))

    top = max(BENCH_MEMORIES)
    assert result.series["DaVinci"][top] >= 0.9


def test_heavy_changers_vs_mv_sketch(run_once):
    trace = load_trace("caida", scale=BENCH_SCALE, seed=BENCH_SEED)
    first, second = halves(trace)
    freq_a, freq_b = gt.frequencies(first), gt.frequencies(second)
    threshold = heavy_threshold(len(trace), 0.0005)
    correct = gt.heavy_changers(freq_a, freq_b, threshold)

    def davinci(kb: float) -> float:
        from repro.core.tasks.heavy import heavy_changers

        window_a = fill(build_davinci(kb, seed=BENCH_SEED + 1), first)
        window_b = fill(build_davinci(kb, seed=BENCH_SEED + 1), second)
        return f1_score(set(heavy_changers(window_a, window_b, threshold)), correct)

    def mv(kb: float) -> float:
        window_a = fill(MVSketch.from_memory(kb * 1024, seed=BENCH_SEED + 4), first)
        window_b = fill(MVSketch.from_memory(kb * 1024, seed=BENCH_SEED + 4), second)
        delta = window_a.subtract(window_b)
        reported = set(delta.heavy_hitters(threshold))
        return f1_score(reported, correct)

    result = run_once(
        run_sweep,
        "heavy-changer-extended",
        "caida",
        "F1",
        {"DaVinci": davinci, "MV-Sketch": mv},
        BENCH_MEMORIES,
    )
    report("Extended: heavy changers vs MV-Sketch", render_sweep(result))

    top = max(BENCH_MEMORIES)
    assert result.series["DaVinci"][top] >= 0.85
