"""Debug-invariant sanitizer overhead (design note, not a paper figure).

The runtime sanitizer (``repro.common.invariants``) promises to be
*zero-cost when off*: every hot-path guard is ``if _inv.ENABLED:`` — one
module-attribute load plus a falsy branch.  This bench measures DaVinci
insert throughput three ways on the CAIDA-like trace:

* **off**  — sanitizer disabled (the production configuration);
* **on**   — sanitizer armed (every insert verifies field residues,
  saturation caps and the filter's first-T retention);
* the off/on ratio, to document what arming actually costs.

The reproduced claim is the "off" column: guard-off throughput must be
within measurement noise of itself across repeats, and the off-mode run
must not be dominated by guard dispatch (the guards never call into the
helper functions when disabled).
"""

from conftest import BENCH_SCALE, BENCH_SEED, report

from repro.common import invariants
from repro.core import DaVinciConfig, DaVinciSketch
from repro.metrics import measure_insert_throughput, speedup
from repro.workloads import load_trace

MEMORY_KB = 6.0


def _throughput(trace, enabled):
    config = DaVinciConfig.from_memory_kb(MEMORY_KB, seed=BENCH_SEED + 1)
    sketch = DaVinciSketch(config)
    previous = invariants.set_enabled(enabled)
    try:
        result = measure_insert_throughput(sketch.insert, trace)
    finally:
        invariants.set_enabled(previous)
    return result


def test_sanitizer_off_is_free(run_once):
    trace = load_trace("caida", scale=BENCH_SCALE, seed=BENCH_SEED)

    def measure():
        # interleave off/on/off so cache warm-up does not bias either mode
        off_a = _throughput(trace, enabled=False)
        on = _throughput(trace, enabled=True)
        off_b = _throughput(trace, enabled=False)
        return off_a, on, off_b

    off_a, on, off_b = run_once(measure)
    off = max(off_a, off_b, key=lambda r: r.ops_per_second)
    body = "\n".join(
        [
            f"insert throughput, sanitizer OFF : {off.mops:8.3f} Mops",
            f"insert throughput, sanitizer ON  : {on.mops:8.3f} Mops",
            f"off/on ratio (cost of arming)    : {speedup(off, on):8.2f}x",
            "off-run repeat spread            : "
            f"{abs(off_a.ops_per_second - off_b.ops_per_second) / off.ops_per_second:8.1%}",
        ]
    )
    report("Design note: debug-invariant sanitizer overhead", body)

    # both off-mode runs agree within noise — the guards do not grow a
    # data-dependent cost when disabled
    assert min(off_a.ops_per_second, off_b.ops_per_second) > 0
    assert (
        abs(off_a.ops_per_second - off_b.ops_per_second)
        <= 0.25 * off.ops_per_second
    )
    # arming is allowed to cost something; disabling must roughly win
    # (ratio >= ~1 modulo timer noise on a short trace)
    assert speedup(off, on) >= 0.9
