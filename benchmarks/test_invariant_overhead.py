"""Guard-flag overhead: sanitizer and metrics (design note, not a figure).

Two subsystems promise to be *zero-cost when off* via the same idiom —
every hot-path guard is ``if <module>.ENABLED:``, one module-attribute
load plus a falsy branch:

* the runtime sanitizer (``repro.common.invariants``), and
* the observability layer (``repro.observability.metrics``).

This bench measures DaVinci insert throughput with each subsystem off /
on (interleaved off→on→off so cache warm-up biases neither mode) on the
CAIDA-like trace.  The reproduced claims are the "off" columns: guard
-off throughput must agree with itself across repeats, and the off-mode
run must not be dominated by guard dispatch (disabled guards never call
into the recording helpers).
"""

from conftest import BENCH_SCALE, BENCH_SEED, report

from repro.common import invariants
from repro.core import DaVinciConfig, DaVinciSketch
from repro.metrics import measure_insert_throughput, speedup
from repro.observability import metrics as obs_metrics
from repro.workloads import load_trace

MEMORY_KB = 6.0


def _throughput(trace, enabled, toggle=invariants):
    config = DaVinciConfig.from_memory_kb(MEMORY_KB, seed=BENCH_SEED + 1)
    registry = obs_metrics.MetricsRegistry()
    sketch = DaVinciSketch(config, metrics_registry=registry)
    previous = toggle.set_enabled(enabled)
    try:
        result = measure_insert_throughput(sketch.insert, trace)
    finally:
        toggle.set_enabled(previous)
    return result


def test_sanitizer_off_is_free(run_once):
    trace = load_trace("caida", scale=BENCH_SCALE, seed=BENCH_SEED)

    def measure():
        # interleave off/on/off so cache warm-up does not bias either mode
        off_a = _throughput(trace, enabled=False)
        on = _throughput(trace, enabled=True)
        off_b = _throughput(trace, enabled=False)
        return off_a, on, off_b

    off_a, on, off_b = run_once(measure)
    off = max(off_a, off_b, key=lambda r: r.ops_per_second)
    body = "\n".join(
        [
            f"insert throughput, sanitizer OFF : {off.mops:8.3f} Mops",
            f"insert throughput, sanitizer ON  : {on.mops:8.3f} Mops",
            f"off/on ratio (cost of arming)    : {speedup(off, on):8.2f}x",
            "off-run repeat spread            : "
            f"{abs(off_a.ops_per_second - off_b.ops_per_second) / off.ops_per_second:8.1%}",
        ]
    )
    report("Design note: debug-invariant sanitizer overhead", body)

    # both off-mode runs agree within noise — the guards do not grow a
    # data-dependent cost when disabled
    assert min(off_a.ops_per_second, off_b.ops_per_second) > 0
    assert (
        abs(off_a.ops_per_second - off_b.ops_per_second)
        <= 0.25 * off.ops_per_second
    )
    # arming is allowed to cost something; disabling must roughly win
    # (ratio >= ~1 modulo timer noise on a short trace)
    assert speedup(off, on) >= 0.9


def test_metrics_off_is_free(run_once):
    """Metrics-off insert throughput must match itself across repeats.

    Same protocol as the sanitizer bench, but toggling
    ``repro.observability.metrics`` — armed runs pay per-insert counter
    updates (plus lazy bundle binding on first touch); disarmed runs
    must pay only the ``if _obs.ENABLED:`` module-attribute loads.  The
    ≤1% production pin lives in the unit-level timing test
    (``tests/observability/test_overhead.py``), where the guard cost is
    isolated from workload noise; here the CI-slack assertions mirror
    the sanitizer's.
    """
    trace = load_trace("caida", scale=BENCH_SCALE, seed=BENCH_SEED)

    def measure():
        # interleave off/on/off so cache warm-up does not bias either mode
        off_a = _throughput(trace, enabled=False, toggle=obs_metrics)
        on = _throughput(trace, enabled=True, toggle=obs_metrics)
        off_b = _throughput(trace, enabled=False, toggle=obs_metrics)
        return off_a, on, off_b

    off_a, on, off_b = run_once(measure)
    off = max(off_a, off_b, key=lambda r: r.ops_per_second)
    body = "\n".join(
        [
            f"insert throughput, metrics OFF   : {off.mops:8.3f} Mops",
            f"insert throughput, metrics ON    : {on.mops:8.3f} Mops",
            f"off/on ratio (cost of arming)    : {speedup(off, on):8.2f}x",
            "off-run repeat spread            : "
            f"{abs(off_a.ops_per_second - off_b.ops_per_second) / off.ops_per_second:8.1%}",
        ]
    )
    report("Design note: metrics-collection overhead", body)

    # both off-mode runs agree within noise — the guards do not grow a
    # data-dependent cost when disabled
    assert min(off_a.ops_per_second, off_b.ops_per_second) > 0
    assert (
        abs(off_a.ops_per_second - off_b.ops_per_second)
        <= 0.25 * off.ops_per_second
    )
    # arming is allowed to cost something; disabling must roughly win
    assert speedup(off, on) >= 0.9
