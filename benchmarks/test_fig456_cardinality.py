"""Figures 4d / 5d / 6d — cardinality RE vs memory.

Competitors: DaVinci, Elastic, FCM, UnivMon.  Reproduced claim: the
linear-counting-based estimators (DaVinci/Elastic/FCM) sit in the
few-percent band while UnivMon's G-sum estimate trails far behind.
"""

import pytest
from conftest import (
    BENCH_DATASETS,
    BENCH_MEMORIES,
    BENCH_SCALE,
    BENCH_SEED,
    report,
)

from repro.experiments import figure_cardinality, render_sweep


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def test_cardinality_panel(run_once, dataset):
    result = run_once(
        figure_cardinality,
        dataset=dataset,
        scale=BENCH_SCALE,
        memories_kb=BENCH_MEMORIES,
        seed=BENCH_SEED,
    )
    report(f"Figure 4d-analogue ({dataset}): cardinality RE vs memory", render_sweep(result))

    top = max(BENCH_MEMORIES)
    assert result.series["DaVinci"][top] < 0.1
    assert result.series["DaVinci"][top] <= result.series["UnivMon"][top]
