"""Figures 4b / 5b / 6b — heavy-hitter F1 vs memory.

Competitors: DaVinci, Elastic, HashPipe, Coco, UnivMon, CountHeap, FCM
(FCM evaluated generously over ground-truth candidate keys, since it
stores none).  Reproduced claim: DaVinci reaches ≥0.95 F1 at the top of
the range, comparable with HashPipe/Elastic and above Coco/UnivMon.
"""

import pytest
from conftest import (
    BENCH_DATASETS,
    BENCH_MEMORIES,
    BENCH_SCALE,
    BENCH_SEED,
    report,
)

from repro.experiments import figure_heavy_hitters, render_sweep


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def test_heavy_hitter_panel(run_once, dataset):
    result = run_once(
        figure_heavy_hitters,
        dataset=dataset,
        scale=BENCH_SCALE,
        memories_kb=BENCH_MEMORIES,
        seed=BENCH_SEED,
    )
    report(f"Figure 4b-analogue ({dataset}): heavy-hitter F1 vs memory", render_sweep(result))

    top = max(BENCH_MEMORIES)
    if dataset != "tpcds":
        assert result.series["DaVinci"][top] >= 0.9
        assert result.series["DaVinci"][top] >= result.series["Coco"][top]
        assert result.series["DaVinci"][top] >= result.series["UnivMon"][top]
