#!/usr/bin/env python3
"""Ingestion throughput: per-item ``insert`` loop vs batched ``insert_batch``.

The batched fast path (``DaVinciSketch.insert_batch``) pre-aggregates each
chunk into ``{key: count}``, memoizes hash positions across the chunk and
hoists structure lookups out of the inner loops — while producing a sketch
state byte-identical to the equivalent sequential loop.  This script
measures how much wall-clock that buys on the paper's canonical workload
(a Zipf(1.1) packet trace) and cross-checks the equivalence claim on the
fly via ``to_state``.

Run (from the repository root):

    PYTHONPATH=src python benchmarks/bench_ingest.py               # 1M items
    PYTHONPATH=src python benchmarks/bench_ingest.py --quick       # CI smoke

Writes ``BENCH_ingest.json`` (see ``--output``) with the measured rates,
the speedup and the equivalence verdict.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

from repro.core import DaVinciConfig, DaVinciSketch
from repro.core.serialization import to_state
from repro.workloads import zipf_trace

#: memory budget for the benchmark sketches (generous enough that the
#: frequent part is exercised, small enough to be cache-resident)
DEFAULT_MEMORY_KB = 64.0


def build_sketch(memory_kb: float, seed: int) -> DaVinciSketch:
    return DaVinciSketch(DaVinciConfig.from_memory_kb(memory_kb, seed=seed))


def time_per_item(sketch: DaVinciSketch, trace: List[int]) -> float:
    start = time.perf_counter()
    insert = sketch.insert
    for key in trace:
        insert(key)
    return time.perf_counter() - start


def time_batched(
    sketch: DaVinciSketch, trace: List[int], chunk_size: int
) -> float:
    start = time.perf_counter()
    sketch.insert_all(trace, chunk_size=chunk_size)
    return time.perf_counter() - start


def run(args: argparse.Namespace) -> Dict[str, object]:
    print(
        f"generating Zipf({args.skew}) trace: {args.items:,} items over "
        f"{args.flows:,} flows (seed {args.seed}) ...",
        flush=True,
    )
    trace = zipf_trace(
        num_packets=args.items,
        num_flows=args.flows,
        skew=args.skew,
        seed=args.seed,
    )

    # warm-up pass so both measurements see hot bytecode/caches
    warm = build_sketch(args.memory_kb, args.seed + 1)
    warm.insert_all(trace[: min(len(trace), 50_000)])

    per_item_sketch = build_sketch(args.memory_kb, args.seed + 2)
    per_item_seconds = time_per_item(per_item_sketch, trace)

    batched_sketch = build_sketch(args.memory_kb, args.seed + 2)
    batched_seconds = time_batched(batched_sketch, trace, args.chunk_size)

    # equivalence spot-check: the batched sketch must match the sequential
    # loop over the same chunking's aggregated pairs, byte for byte
    reference = build_sketch(args.memory_kb, args.seed + 2)
    for start in range(0, len(trace), args.chunk_size):
        aggregated: Dict[int, int] = {}
        for key in trace[start : start + args.chunk_size]:
            aggregated[key] = aggregated.get(key, 0) + 1
        for key, count in aggregated.items():
            reference.insert(key, count)
    state_identical = to_state(reference) == to_state(batched_sketch)

    per_item_rate = len(trace) / per_item_seconds
    batched_rate = len(trace) / batched_seconds
    speedup = batched_rate / per_item_rate

    result: Dict[str, object] = {
        "workload": {
            "items": args.items,
            "flows": args.flows,
            "skew": args.skew,
            "seed": args.seed,
            "memory_kb": args.memory_kb,
            "chunk_size": args.chunk_size,
        },
        "per_item": {
            "seconds": per_item_seconds,
            "items_per_second": per_item_rate,
            "ama": per_item_sketch.average_memory_access(),
        },
        "batched": {
            "seconds": batched_seconds,
            "items_per_second": batched_rate,
            "ama": batched_sketch.average_memory_access(),
        },
        "speedup": speedup,
        "state_identical_to_sequential": state_identical,
    }

    print(
        f"per-item : {per_item_seconds:8.3f} s  "
        f"({per_item_rate:12,.0f} items/s, AMA {result['per_item']['ama']:.2f})"  # type: ignore[index]
    )
    print(
        f"batched  : {batched_seconds:8.3f} s  "
        f"({batched_rate:12,.0f} items/s, AMA {result['batched']['ama']:.2f})"  # type: ignore[index]
    )
    print(f"speedup  : {speedup:.2f}x")
    print(f"state identical to sequential loop: {state_identical}")
    return result


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--items", type=int, default=1_000_000, help="stream length"
    )
    parser.add_argument(
        "--flows", type=int, default=100_000, help="distinct keys"
    )
    parser.add_argument("--skew", type=float, default=1.1, help="Zipf skew")
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument(
        "--memory-kb",
        type=float,
        default=DEFAULT_MEMORY_KB,
        help="sketch memory budget (KB)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=1 << 16,
        help="insert_batch chunk size",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: 100k items / 20k flows",
    )
    parser.add_argument(
        "--output",
        default="BENCH_ingest.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="exit non-zero if the batched path is below this speedup",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.items = min(args.items, 100_000)
        args.flows = min(args.flows, 20_000)

    result = run(args)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    if not result["state_identical_to_sequential"]:
        print("ERROR: batched sketch state diverged from sequential loop")
        return 1
    if float(result["speedup"]) < args.min_speedup:  # type: ignore[arg-type]
        print(
            f"ERROR: speedup {result['speedup']:.2f}x below required "
            f"{args.min_speedup:.2f}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
