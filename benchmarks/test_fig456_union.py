"""Figures 4g / 5g / 6g — union of two sets: post-merge frequency ARE.

Competitors: DaVinci (Algorithm 3 merge), Elastic (heavy/light merge),
FermatSketch (field addition + decode).  Reproduced claim: DaVinci is the
most accurate at the top of the range; Fermat collapses once the merged
population exceeds its peeling capacity.
"""

import pytest
from conftest import (
    BENCH_DATASETS,
    BENCH_MEMORIES,
    BENCH_SCALE,
    BENCH_SEED,
    report,
)

from repro.experiments import figure_union, render_sweep


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def test_union_panel(run_once, dataset):
    result = run_once(
        figure_union,
        dataset=dataset,
        scale=BENCH_SCALE,
        memories_kb=BENCH_MEMORIES,
        seed=BENCH_SEED,
    )
    report(f"Figure 4g-analogue ({dataset}): union ARE vs memory", render_sweep(result))

    top = max(BENCH_MEMORIES)
    if dataset != "tpcds":
        assert result.best_algorithm_at(top) == "DaVinci"
        assert result.series["DaVinci"][top] < result.series["Fermat"][top]
        assert result.series["DaVinci"][top] < result.series["Elastic"][top]
