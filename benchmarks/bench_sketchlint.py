#!/usr/bin/env python3
"""Full-repo sketchlint analysis time: the 10-second budget.

sketchlint v2 runs a CFG/dataflow pass per function plus an
interprocedural fixpoint over the whole package, and it runs in CI on
every push and locally from editors and pre-commit hooks.  This script
pins the cost: a cold (cache-disabled) analysis of ``src`` + ``tools``
must finish under ``--max-seconds`` (default 10), and a warm cached
re-run must finish under ``--max-cached-seconds`` (default 1).

Run (from the repository root):

    python benchmarks/bench_sketchlint.py            # gate at 10s / 1s
    python benchmarks/bench_sketchlint.py --repeats 5

Writes ``BENCH_sketchlint.json`` (see ``--output``) with both timings,
the file count, and the pass/fail verdicts.  Timings are best-of-
``--repeats`` so host noise does not fail the gate spuriously.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.sketchlint.cache import ResultCache  # noqa: E402
from tools.sketchlint.engine import lint_paths  # noqa: E402

DEFAULT_PATHS = ("src", "tools")


def time_cold(paths: "list[Path]", repeats: int) -> "tuple[float, int]":
    best = float("inf")
    files_checked = 0
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        report = lint_paths(paths)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        files_checked = report.files_checked
    return best, files_checked


def time_cached(paths: "list[Path]", repeats: int) -> float:
    """Warm-cache timing: one priming run, then best-of timed re-runs."""
    best = float("inf")
    with tempfile.TemporaryDirectory(prefix="bench-sketchlint-") as scratch:
        cache_path = Path(scratch) / "cache.json"
        lint_paths(paths, cache=ResultCache(cache_path))
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            lint_paths(paths, cache=ResultCache(cache_path))
            best = min(best, time.perf_counter() - start)
    return best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="paths to analyse (default: src tools)",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=10.0,
        help="budget for a cold full-repo analysis (default: 10)",
    )
    parser.add_argument(
        "--max-cached-seconds",
        type=float,
        default=1.0,
        help="budget for a warm cached re-run (default: 1)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed repetitions per measurement; best-of is reported",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_sketchlint.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args()

    paths = [REPO_ROOT / p if not Path(p).is_absolute() else Path(p) for p in args.paths]
    for path in paths:
        if not path.exists():
            print(f"bench_sketchlint: no such path: {path}", file=sys.stderr)
            return 2

    cold_seconds, files_checked = time_cold(paths, args.repeats)
    cached_seconds = time_cached(paths, args.repeats)

    cold_ok = cold_seconds <= args.max_seconds
    cached_ok = cached_seconds <= args.max_cached_seconds
    report: Dict[str, object] = {
        "benchmark": "sketchlint",
        "files_checked": files_checked,
        "cold_seconds": round(cold_seconds, 4),
        "cached_seconds": round(cached_seconds, 4),
        "max_seconds": args.max_seconds,
        "max_cached_seconds": args.max_cached_seconds,
        "cold_within_budget": cold_ok,
        "cached_within_budget": cached_ok,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print(
        f"bench_sketchlint: {files_checked} files — cold {cold_seconds:.2f}s "
        f"(budget {args.max_seconds:.0f}s), cached {cached_seconds:.3f}s "
        f"(budget {args.max_cached_seconds:.1f}s)"
    )
    if not cold_ok or not cached_ok:
        print("bench_sketchlint: over budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
