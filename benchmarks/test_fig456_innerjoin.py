"""Figures 4j / 5j / 6j — cardinality of the inner join, RE vs memory.

Competitors: DaVinci (nine-component decomposition), JoinSketch, F-AGMS,
Skimmed Sketch.  Reproduced claim: DaVinci is comparable with JoinSketch
(both separate frequent elements) and clearly better than the skim/sign
sketches, especially at small memory.
"""

import pytest
from conftest import (
    BENCH_DATASETS,
    BENCH_MEMORIES,
    BENCH_SCALE,
    BENCH_SEED,
    report,
)

from repro.experiments import figure_inner_join, render_sweep


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def test_inner_join_panel(run_once, dataset):
    result = run_once(
        figure_inner_join,
        dataset=dataset,
        scale=BENCH_SCALE,
        memories_kb=BENCH_MEMORIES,
        seed=BENCH_SEED,
    )
    report(f"Figure 4j-analogue ({dataset}): inner-join RE vs memory", render_sweep(result))

    top = max(BENCH_MEMORIES)
    assert result.series["DaVinci"][top] < 0.05
    assert result.series["DaVinci"][top] <= result.series["Skimmed"][top]
