"""Figures 4e / 5e / 6e — flow-size distribution WMRE vs memory.

Competitors: DaVinci, Elastic, FCM, MRAC.  Reproduced claim: DaVinci is
comparable with Elastic (the two EM-over-small-counters designs) and
clearly better than FCM and MRAC at the top of the range.
"""

import pytest
from conftest import (
    BENCH_DATASETS,
    BENCH_MEMORIES,
    BENCH_SCALE,
    BENCH_SEED,
    report,
)

from repro.experiments import figure_distribution, render_sweep


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def test_distribution_panel(run_once, dataset):
    result = run_once(
        figure_distribution,
        dataset=dataset,
        scale=BENCH_SCALE,
        memories_kb=BENCH_MEMORIES,
        seed=BENCH_SEED,
    )
    report(f"Figure 4e-analogue ({dataset}): distribution WMRE vs memory", render_sweep(result))

    top = max(BENCH_MEMORIES)
    if dataset != "tpcds":
        assert result.series["DaVinci"][top] < result.series["MRAC"][top]
        assert result.series["DaVinci"][top] < result.series["FCM"][top]
        # "comparable accuracy with Elastic sketch" — within 2x
        assert result.series["DaVinci"][top] < 2 * result.series["Elastic"][top]
