"""Figures 4c / 5c / 6c — heavy-changer F1 between two time windows.

Competitors: DaVinci (self-discovered candidates via the difference
sketch), FCM / Elastic / UnivMon / CountHeap (evaluated by query
differences over ground-truth candidates).  Reproduced claim: DaVinci
reaches ~1.0 F1 at the top of the memory range.
"""

import pytest
from conftest import (
    BENCH_DATASETS,
    BENCH_MEMORIES,
    BENCH_SCALE,
    BENCH_SEED,
    report,
)

from repro.experiments import figure_heavy_changers, render_sweep


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def test_heavy_changer_panel(run_once, dataset):
    result = run_once(
        figure_heavy_changers,
        dataset=dataset,
        scale=BENCH_SCALE,
        memories_kb=BENCH_MEMORIES,
        seed=BENCH_SEED,
    )
    report(f"Figure 4c-analogue ({dataset}): heavy-changer F1 vs memory", render_sweep(result))

    top = max(BENCH_MEMORIES)
    if dataset != "tpcds":
        assert result.series["DaVinci"][top] >= 0.85
        assert result.series["DaVinci"][top] >= result.series["UnivMon"][top]
        assert result.series["DaVinci"][top] >= result.series["CountHeap"][top]
