"""Benchmark configuration.

Each benchmark module regenerates one of the paper's tables or figures and
prints the reproduced rows/series into the pytest output.  Scale knobs are
environment-configurable so a full-fidelity run is one variable away:

* ``REPRO_BENCH_SCALE``   — trace scale (default 0.01 ≈ 1/100 of the
  paper's traces; the paper-equivalent memory points scale along).
* ``REPRO_BENCH_MEMORIES`` — comma-separated KB list (default "2,4,6,8").
* ``REPRO_BENCH_DATASETS`` — comma-separated dataset names.

Absolute throughput numbers are pure-Python and NOT comparable with the
paper's C++/-O3 Mpps; the reproduced claims are the *relative* ones
(who wins each panel, DaVinci-vs-CSOA ratios).  See EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from typing import List, Tuple

import pytest


def _env_float(name: str, default: float) -> float:
    return float(os.environ.get(name, default))


def _env_list(name: str, default: str) -> List[str]:
    return [item.strip() for item in os.environ.get(name, default).split(",")]


BENCH_SCALE: float = _env_float("REPRO_BENCH_SCALE", 0.01)
BENCH_MEMORIES: Tuple[float, ...] = tuple(
    float(x) for x in _env_list("REPRO_BENCH_MEMORIES", "2,4,6,8")
)
BENCH_DATASETS: Tuple[str, ...] = tuple(
    _env_list("REPRO_BENCH_DATASETS", "caida,mawi,tpcds")
)
BENCH_SEED: int = int(os.environ.get("REPRO_BENCH_SEED", "0"))


#: reproduced tables collected across the whole run and dumped in the
#: terminal summary (pytest captures per-test stdout, so plain prints from
#: passing tests would be invisible in the default output)
_REPORTS: List[str] = []


def report(title: str, body: str) -> None:
    """Record (and echo) one reproduced table/figure."""
    block = "\n".join(["", "=" * 72, title, "=" * 72, body])
    _REPORTS.append(block)
    print(block)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("reproduced paper tables/figures")
    for block in _REPORTS:
        for line in block.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic and expensive; statistical repeats
    would only re-measure the same computation.
    """

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
        )

    return runner
