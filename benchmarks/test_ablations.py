"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper — these probe *why* DaVinci works by knocking
out or sweeping one design element at a time on the CAIDA-like trace:

* eviction ratio λ (Algorithm 1's ``ecnt > λ·fcnt`` rule);
* promotion threshold T (what stays in the filter vs overflows to the
  invertible part);
* frequent-part memory share;
* decode cross-validation (the paper's ``canDecode`` EF check) on/off.
"""

from conftest import BENCH_SCALE, BENCH_SEED, report

from repro.core import DaVinciConfig, DaVinciSketch
from repro.metrics import average_relative_error
from repro.workloads import groundtruth as gt
from repro.workloads import load_trace

MEMORY_KB = 6.0


def _are_for(config, trace, truth):
    sketch = DaVinciSketch(config)
    # per-item: the ablation sweeps eviction-dynamics knobs, so the trace
    # must replay the paper's per-packet insert schedule (batch aggregation
    # collapses repeats and would flatten the lambda/threshold effects)
    for key in trace:
        sketch.insert(key)
    return average_relative_error(truth, sketch.query)


def test_ablation_lambda_and_threshold(run_once):
    trace = load_trace("caida", scale=BENCH_SCALE, seed=BENCH_SEED)
    truth = gt.frequencies(trace)

    def sweep():
        lambdas = {}
        for lam in (1.0, 2.0, 4.0, 8.0, 16.0, 32.0):
            config = DaVinciConfig.from_memory_kb(
                MEMORY_KB, lambda_evict=lam, seed=BENCH_SEED + 1
            )
            lambdas[lam] = _are_for(config, trace, truth)
        thresholds = {}
        for threshold in (4, 8, 16, 32, 64):
            config = DaVinciConfig.from_memory_kb(
                MEMORY_KB, filter_threshold=threshold, seed=BENCH_SEED + 1
            )
            thresholds[threshold] = _are_for(config, trace, truth)
        return lambdas, thresholds

    lambdas, thresholds = run_once(sweep)
    body = "\n".join(
        [
            "lambda -> " + str({k: round(v, 4) for k, v in lambdas.items()}),
            "threshold -> " + str({k: round(v, 4) for k, v in thresholds.items()}),
        ]
    )
    report("Ablation: eviction ratio λ and promotion threshold T", body)

    # the default λ=8 sits within 2x of the best swept value
    assert lambdas[8.0] <= 2 * min(lambdas.values())
    # the low-threshold design (T=16) clearly beats a filter-heavy T=64
    assert thresholds[16] < thresholds[64]


def test_ablation_memory_split(run_once):
    trace = load_trace("caida", scale=BENCH_SCALE, seed=BENCH_SEED)
    truth = gt.frequencies(trace)

    def sweep():
        results = {}
        for fp_fraction in (0.1, 0.25, 0.4, 0.6):
            config = DaVinciConfig.from_memory_kb(
                MEMORY_KB,
                fp_fraction=fp_fraction,
                ef_fraction=min(0.85 - fp_fraction, 0.6),
                seed=BENCH_SEED + 1,
            )
            results[fp_fraction] = _are_for(config, trace, truth)
        return results

    results = run_once(sweep)
    report(
        "Ablation: frequent-part memory share",
        str({k: round(v, 4) for k, v in results.items()}),
    )

    # the default 25% FP share is within 2x of the best swept split
    assert results[0.25] <= 2 * min(results.values())


def test_ablation_decode_cross_validation(run_once):
    """Knock out the paper's canDecode EF check and count bad decodes."""
    trace = load_trace("caida", scale=BENCH_SCALE, seed=BENCH_SEED)
    truth = gt.frequencies(trace)

    def measure():
        config = DaVinciConfig.from_memory_kb(MEMORY_KB, seed=BENCH_SEED + 1)
        sketch = DaVinciSketch(config)
        for key in trace:  # per-packet schedule (see _are_for)
            sketch.insert(key)
        validated = sketch.decode_result()
        raw = sketch.ifp.decode(validator=None)
        false_validated = sum(1 for key in validated.counts if key not in truth)
        false_raw = sum(1 for key in raw.counts if key not in truth)
        return {
            "validated_decoded": len(validated.counts),
            "raw_decoded": len(raw.counts),
            "validated_false": false_validated,
            "raw_false": false_raw,
        }

    stats = run_once(measure)
    report("Ablation: decode cross-validation (canDecode)", str(stats))

    # validation must never admit *more* false keys than the raw decode
    assert stats["validated_false"] <= stats["raw_false"]
    # and both stay clean thanks to the key-domain consistency check
    assert stats["validated_false"] == 0
