"""Table II — dataset statistics (packets, flows, cardinality).

Regenerates the paper's dataset table for the synthetic stand-ins at the
benchmark scale, and verifies the full-scale specs match the paper's
numbers exactly.
"""

from conftest import BENCH_SCALE, BENCH_SEED, report

from repro.workloads import REGISTRY, load_trace, table2_statistics

PAPER_TABLE2 = {
    "caida": (2_472_727, 109_642),
    "mawi": (2_000_000, 200_471),
    "tpcds": (4_903_874, 1_834),
}


def test_table2_statistics(run_once):
    def build():
        rows = {}
        for name in ("caida", "mawi", "tpcds"):
            trace = load_trace(name, scale=BENCH_SCALE, seed=BENCH_SEED)
            rows[name] = table2_statistics(trace)
        return rows

    rows = run_once(build)
    lines = [f"{'dataset':10s} {'packets':>12s} {'flows':>10s} {'cardinality':>12s}"]
    for name, stats in rows.items():
        lines.append(
            f"{name:10s} {stats['packets']:>12,d} {stats['flows']:>10,d} "
            f"{stats['cardinality']:>12,d}"
        )
    report(
        f"Table II: dataset statistics (scale={BENCH_SCALE})", "\n".join(lines)
    )

    # full-scale specs equal the paper's Table II
    for name, (packets, flows) in PAPER_TABLE2.items():
        spec = REGISTRY[name]
        assert spec.packets == packets
        assert spec.flows == flows

    # scaled traces: cardinality equals flow count (as in the paper)
    for name, stats in rows.items():
        assert stats["cardinality"] == stats["flows"]
        spec = REGISTRY[name].scaled(BENCH_SCALE)
        assert stats["packets"] == spec.packets
        assert stats["flows"] == spec.flows
