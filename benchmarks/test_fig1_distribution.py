"""Figure 1 — flow-size skew of the (synthetic stand-in) datasets.

Regenerates the paper's motivation figure: the CDF of flow sizes for the
CAIDA-, MAWI- and TPC-DS-like traces, showing the Pareto shape (most flows
tiny, a few elephants carrying the bulk of packets).
"""

from conftest import BENCH_SCALE, BENCH_SEED, report

from repro.experiments import figure1_flow_distribution, render_distribution_curves


def test_fig1_flow_size_cdf(run_once):
    curves = run_once(figure1_flow_distribution, scale=BENCH_SCALE, seed=BENCH_SEED)
    report("Figure 1: flow-size CDFs", render_distribution_curves(curves))

    for dataset, curve in curves.items():
        sizes = [size for size, _ in curve]
        # Pareto shape: the largest flow dwarfs the smallest by orders of
        # magnitude, and the CDF is a valid non-decreasing curve to 1.
        assert max(sizes) >= 100 * min(sizes), dataset
        cdf_values = [value for _, value in curve]
        assert cdf_values == sorted(cdf_values)
        assert abs(cdf_values[-1] - 1.0) < 1e-9
