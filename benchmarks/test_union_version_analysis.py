"""Section III-B2's union-version analysis (the F1 0.73 vs 0.77 passage).

The paper compares two ways to measure a whole stream: the **original
version** (one sketch over everything) and the **union version** (a sketch
per half, merged with Algorithm 3).  On CAIDA it reports, for the top-α
elements (α = the frequent part's capacity):

* F1 of the frequent part capturing the true top-α: 0.73 (original) vs
  **0.77 (union)** — the union version captures frequent elements better;
* proportion of true frequent elements missing from the FP: 0.26
  (original) vs **0.22 (union)**.

The mechanism: each pre-merge sketch has twice the per-element space, so
frequent elements survive in the frequent part more often.  This bench
reproduces the comparison on the CAIDA-like trace.
"""

from conftest import BENCH_SCALE, BENCH_SEED, report

from repro.experiments.harness import build_davinci, fill
from repro.metrics import f1_score
from repro.workloads import groundtruth as gt
from repro.workloads import halves, load_trace

MEMORY_KB = 4.0


def test_union_version_captures_frequent_elements_better(run_once):
    def analyse():
        trace = load_trace("caida", scale=BENCH_SCALE, seed=BENCH_SEED)
        truth = gt.frequencies(trace)

        original = fill(build_davinci(MEMORY_KB, seed=BENCH_SEED + 1), trace)
        first, second = halves(trace)
        half_a = fill(build_davinci(MEMORY_KB, seed=BENCH_SEED + 1), first)
        half_b = fill(build_davinci(MEMORY_KB, seed=BENCH_SEED + 1), second)
        union = half_a.union(half_b)

        alpha = original.fp.capacity
        top_alpha = {key for key, _ in gt.top_k_keys(truth, alpha)}

        def fp_stats(sketch):
            captured = set(sketch.fp.as_dict())
            f1 = f1_score(captured, top_alpha)
            missing = len(top_alpha - captured) / len(top_alpha)
            return f1, missing

        original_f1, original_missing = fp_stats(original)
        union_f1, union_missing = fp_stats(union)
        return {
            "alpha": alpha,
            "original_f1": original_f1,
            "union_f1": union_f1,
            "original_missing": original_missing,
            "union_missing": union_missing,
        }

    stats = run_once(analyse)
    report(
        "Union-version analysis (Sec. III-B2; paper: F1 0.73 vs 0.77)",
        "\n".join(
            [
                f"top-α (α = FP capacity = {stats['alpha']})",
                f"original version: F1 {stats['original_f1']:.3f}, "
                f"missing from FP {stats['original_missing']:.3f}",
                f"union version:    F1 {stats['union_f1']:.3f}, "
                f"missing from FP {stats['union_missing']:.3f}",
            ]
        ),
    )

    # the paper's finding: the union version captures frequent elements at
    # least as well as the original version
    assert stats["union_f1"] >= stats["original_f1"] - 0.02
    assert stats["union_missing"] <= stats["original_missing"] + 0.02
    # and both versions are in a sane range
    assert stats["original_f1"] > 0.5
