"""Per-algorithm insertion throughput appendix (extension).

Not a paper figure — a practical reference table: insertions per second of
every sketch in the package at one memory point on the CAIDA-like trace.
Absolute numbers are pure-Python (the paper's Mpps come from C++/-O3); the
*relative* ordering tracks per-insert structural work and mirrors the
paper's AMA analysis.
"""

from conftest import BENCH_SCALE, BENCH_SEED, report

from repro.core import DaVinciConfig, DaVinciSketch
from repro.metrics import measure_insert_throughput
from repro.sketches import (
    CSOA,
    CocoSketch,
    CountHeap,
    CountMinSketch,
    CUSketch,
    ElasticSketch,
    FCMSketch,
    FermatSketch,
    HashPipe,
    HeavyKeeper,
    LossRadar,
    MRAC,
    MVSketch,
    TowerSketch,
    UnivMon,
)
from repro.workloads import load_trace

MEMORY = 8 * 1024


def test_throughput_appendix(run_once):
    trace = load_trace("caida", scale=BENCH_SCALE, seed=BENCH_SEED)

    factories = {
        "DaVinci": lambda: DaVinciSketch(
            DaVinciConfig.from_memory(MEMORY, seed=BENCH_SEED + 1)
        ),
        "CM": lambda: CountMinSketch.from_memory(MEMORY, seed=BENCH_SEED + 2),
        "CU": lambda: CUSketch.from_memory(MEMORY, seed=BENCH_SEED + 3),
        "Tower": lambda: TowerSketch.from_memory(MEMORY, seed=BENCH_SEED + 4),
        "Elastic": lambda: ElasticSketch.from_memory(MEMORY, seed=BENCH_SEED + 5),
        "FCM": lambda: FCMSketch.from_memory(MEMORY, seed=BENCH_SEED + 6),
        "MRAC": lambda: MRAC.from_memory(MEMORY, seed=BENCH_SEED + 7),
        "HashPipe": lambda: HashPipe.from_memory(MEMORY, seed=BENCH_SEED + 8),
        "Coco": lambda: CocoSketch.from_memory(MEMORY, seed=BENCH_SEED + 9),
        "CountHeap": lambda: CountHeap.from_memory(MEMORY, seed=BENCH_SEED + 10),
        "HeavyKeeper": lambda: HeavyKeeper.from_memory(MEMORY, seed=BENCH_SEED + 11),
        "MVSketch": lambda: MVSketch.from_memory(MEMORY, seed=BENCH_SEED + 12),
        "Fermat": lambda: FermatSketch.from_memory(MEMORY, seed=BENCH_SEED + 13),
        "LossRadar": lambda: LossRadar.from_memory(MEMORY, seed=BENCH_SEED + 14),
        "UnivMon": lambda: UnivMon.from_memory(MEMORY, seed=BENCH_SEED + 15),
        "CSOA": lambda: CSOA.from_memory(MEMORY, seed=BENCH_SEED + 16),
    }

    def measure():
        rates = {}
        for name, factory in factories.items():
            sketch = factory()
            rates[name] = measure_insert_throughput(sketch.insert, trace).mops
        return rates

    rates = run_once(measure)
    ranked = sorted(rates.items(), key=lambda kv: -kv[1])
    body = "\n".join(
        f"{name:12s} {mops:8.3f} Mops  ({mops / rates['CSOA']:5.1f}x CSOA)"
        for name, mops in ranked
    )
    report(f"Throughput appendix ({MEMORY // 1024} KB, pure Python)", body)

    # structural sanity: the single unified structure beats the composite
    assert rates["DaVinci"] > rates["CSOA"]
    # single-array sketches are the cheapest per insert
    assert rates["MRAC"] >= rates["DaVinci"]
