"""Table III — DaVinci's accuracy on all nine tasks across nine cases.

Columns as in the paper: Frequency (ARE), HH (F1), HC (F1), Card (RE),
Distribution (WMRE), Entropy (RE), Union (ARE), Difference (ARE),
Inner join (RE); cases are increasing memory budgets.  Reproduced shape:
frequency/distribution/entropy/union/difference/join errors fall with the
case number, HH/HC F1 rise to ~1.0, and cardinality RE is small but
non-monotone (as in the paper's own Table III, where it drifts from
0.0043 up to 0.017 — a linear-counting variance effect at low load).
"""

from conftest import BENCH_SCALE, BENCH_SEED, report

from repro.experiments import render_table3, table3_accuracy

CASES_KB = (2, 3, 4, 6, 8, 12, 16, 24, 32)


def test_table3_nine_tasks_nine_cases(run_once):
    rows = run_once(
        table3_accuracy, scale=BENCH_SCALE, cases_kb=CASES_KB, seed=BENCH_SEED
    )
    report("Table III: DaVinci accuracy under different cases", render_table3(rows))

    assert len(rows) == 9
    first, last = rows[0], rows[-1]

    # errors shrink dramatically from case 1 to case 9
    for task in ("frequency", "distribution", "entropy", "union", "inner_join"):
        assert last[task] < first[task], task
    # detection F1s reach (near-)perfect at the top case
    assert last["heavy_hitter"] >= 0.99
    assert last["heavy_changer"] >= 0.99
    # cardinality stays in the small-RE band throughout
    assert all(row["cardinality"] < 0.1 for row in rows)
