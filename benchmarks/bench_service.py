#!/usr/bin/env python3
"""Loopback aggregation-service throughput vs the in-process fold.

The service layer (``docs/SERVICE.md``) moves the union fold behind a
CRC-framed TCP protocol with deadlines, retries and idempotent pushes.
This script measures what that costs end to end on one host: ``--parts``
partial sketches are built from a Zipf(1.1) trace, then aggregated two
ways —

* **in-process**: a plain sequential ``setops.union`` fold;
* **service**: each part is serialized, PUSHed to a loopback
  ``SketchServer`` and folded server-side, then the aggregate is
  FETCHed back.

Both timed regions include the local sketching of the parts (the work a
producer must do regardless), so ``overhead_fraction`` is the *extra*
wall-clock the networked path adds over the in-process one.  The
fetched aggregate must be ``to_state()``-byte-identical to the
sequential fold, and a query storm reports service-side task latency
percentiles.

Run (from the repository root):

    PYTHONPATH=src python benchmarks/bench_service.py           # full
    PYTHONPATH=src python benchmarks/bench_service.py --quick   # CI smoke

Writes ``BENCH_service.json`` (see ``--output``) with rates, the
overhead fraction, query percentiles and the identity verdict, gated by
``tools/benchcheck.py`` against the committed baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Tuple

from _harness import Side, interleaved_best
from repro.core import DaVinciConfig, DaVinciSketch, serialization, setops
from repro.service import AggregationClient, RetryPolicy, SketchServer
from repro.workloads import zipf_trace

DEFAULT_MEMORY_KB = 8.0

#: generous budgets — loopback should never trip them, and a wedged run
#: fails loudly instead of hanging the benchmark
BENCH_POLICY = RetryPolicy(max_attempts=3, deadline_seconds=60.0)


def build_parts(
    config: DaVinciConfig, trace: List[int], parts: int
) -> Tuple[float, List[DaVinciSketch]]:
    """Sketch ``parts`` interleaved sub-streams; returns (seconds, parts)."""
    start = time.perf_counter()
    sketches = []
    for part in range(parts):
        sketch = DaVinciSketch(config)
        sketch.insert_all(trace[part::parts])
        sketches.append(sketch)
    return time.perf_counter() - start, sketches


def time_inprocess(
    config: DaVinciConfig, trace: List[int], parts: int
) -> Tuple[float, DaVinciSketch]:
    start = time.perf_counter()
    _, sketches = build_parts(config, trace, parts)
    merged = sketches[0]
    for sketch in sketches[1:]:
        merged = setops.union(merged, sketch)
    return time.perf_counter() - start, merged


def time_service(
    config: DaVinciConfig, trace: List[int], parts: int
) -> Tuple[float, DaVinciSketch, float, List[float]]:
    """Returns (total seconds, fetched sketch, push seconds, query times)."""
    server = SketchServer()
    server.start()
    try:
        host, port = server.address
        client = AggregationClient(host, port, retry_policy=BENCH_POLICY)
        start = time.perf_counter()
        sketch_seconds, sketches = build_parts(config, trace, parts)
        push_start = time.perf_counter()
        for sketch in sketches:
            client.push("bench", sketch)
        blob = client.fetch_blob("bench")
        total = time.perf_counter() - start
        push_seconds = time.perf_counter() - push_start
        fetched = serialization.from_wire(blob)

        query_times: List[float] = []
        for _ in range(200):
            query_start = time.perf_counter()
            client.query("bench", "cardinality")
            query_times.append(time.perf_counter() - query_start)
        return total, fetched, push_seconds, query_times
    finally:
        server.close()


def percentile(samples: List[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def run(args: argparse.Namespace) -> Dict[str, object]:
    print(
        f"generating Zipf({args.skew}) trace: {args.items:,} items over "
        f"{args.flows:,} flows (seed {args.seed}) ...",
        flush=True,
    )
    trace = zipf_trace(
        num_packets=args.items,
        num_flows=args.flows,
        skew=args.skew,
        seed=args.seed,
    )
    config = DaVinciConfig.from_memory_kb(args.memory_kb, seed=args.seed + 2)

    # warm-up so both paths see hot bytecode/caches
    warm = DaVinciSketch(
        DaVinciConfig.from_memory_kb(args.memory_kb, seed=args.seed + 1)
    )
    warm.insert_all(trace[: min(len(trace), 50_000)])

    query_times: List[float] = []

    def measure_service() -> "tuple[float, tuple[DaVinciSketch, float]]":
        seconds, candidate, pushed, queries = time_service(
            config, trace, args.parts
        )
        query_times.extend(queries)
        return seconds, (candidate, pushed)

    inproc, service = interleaved_best(
        [
            Side(
                "in-process",
                lambda: time_inprocess(config, trace, args.parts),
            ),
            Side("service", measure_service),
        ],
        repeats=args.repeats,
    )
    inproc_best = inproc.seconds
    service_best = service.seconds
    reference: DaVinciSketch | None = inproc.artifact
    assert reference is not None and service.artifact is not None
    fetched: DaVinciSketch
    fetched, push_seconds = service.artifact

    identical = fetched.to_state() == reference.to_state()
    overhead = (service_best - inproc_best) / inproc_best
    pushes_per_second = args.parts / push_seconds
    p50 = percentile(query_times, 0.50)
    p99 = percentile(query_times, 0.99)

    result: Dict[str, object] = {
        "workload": {
            "items": args.items,
            "flows": args.flows,
            "skew": args.skew,
            "seed": args.seed,
            "memory_kb": args.memory_kb,
            "parts": args.parts,
            "repeats": args.repeats,
        },
        "inprocess": {"seconds": inproc_best},
        "service": {
            "seconds": service_best,
            "push_seconds": push_seconds,
            "pushes_per_second": pushes_per_second,
            "query_p50_seconds": p50,
            "query_p99_seconds": p99,
        },
        "overhead_fraction": overhead,
        "state_identical_to_sequential": identical,
    }

    print(f"in-process : {inproc_best:8.3f} s")
    print(
        f"service    : {service_best:8.3f} s  "
        f"({pushes_per_second:,.0f} pushes/s)"
    )
    print(f"overhead   : {overhead * 100:.1f}%")
    print(
        f"query p50  : {p50 * 1e3:.2f} ms    p99: {p99 * 1e3:.2f} ms "
        f"({len(query_times)} samples)"
    )
    print(f"fetched state identical to sequential fold: {identical}")
    return result


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--items", type=int, default=500_000, help="stream length"
    )
    parser.add_argument(
        "--flows", type=int, default=50_000, help="distinct keys"
    )
    parser.add_argument("--skew", type=float, default=1.1, help="Zipf skew")
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument(
        "--memory-kb",
        type=float,
        default=DEFAULT_MEMORY_KB,
        help="sketch memory budget (KB)",
    )
    parser.add_argument(
        "--parts", type=int, default=4, help="partial sketches to push"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="interleaved rounds"
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke scale"
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=0.0,
        help="exit non-zero if overhead_fraction exceeds this (<=0 disables)",
    )
    parser.add_argument(
        "--output", default="BENCH_service.json", help="report path"
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.items = min(args.items, 100_000)
        args.flows = min(args.flows, 20_000)

    result = run(args)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    if not result["state_identical_to_sequential"]:
        print("ERROR: fetched aggregate diverged from the sequential fold")
        return 1
    if (
        args.max_overhead > 0
        and float(result["overhead_fraction"]) > args.max_overhead
    ):
        print(
            f"ERROR: overhead {float(result['overhead_fraction']):.3f} "
            f"above the {args.max_overhead:.3f} ceiling"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
