"""Shared interleaved best-of-N measurement harness for the benchmarks.

Every throughput benchmark in this directory compares two (or more)
implementations of the same work.  Measuring one side ``N`` times and then
the other lets slow host noise (CPU frequency drift, background IO,
page-cache warmth) land entirely on one side of the comparison.  The
harness here interleaves the sides inside each round and reports the
per-side minimum, so each path is scored on its capability rather than on
the host's worst moment.

Usage::

    from _harness import Side, interleaved_best

    plain, durable = interleaved_best(
        [
            Side("plain", lambda: time_plain(...)),
            Side("durable", lambda: time_durable(...)),
        ],
        repeats=args.repeats,
    )
    print(plain.seconds, plain.artifact)

Each side callable returns ``(seconds, artifact)``; the artifact captured
alongside the fastest round is kept (sides that produce no artifact can
return ``(seconds, None)``).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Callable, List, Sequence


@dataclass
class Side:
    """One measured implementation: a label and a timed thunk.

    The thunk performs a full measurement and returns ``(seconds,
    artifact)`` where the artifact is whatever the caller wants to keep
    from the fastest round (a sketch, an ingestor, ``None``).
    """

    label: str
    measure: Callable[[], "tuple[float, Any]"]


@dataclass
class SideBest:
    """Per-side outcome: best seconds, its artifact and all round times."""

    label: str
    seconds: float = float("inf")
    artifact: Any = None
    history: List[float] = field(default_factory=list)

    def _observe(self, seconds: float, artifact: Any) -> None:
        self.history.append(seconds)
        if seconds < self.seconds:
            self.seconds = seconds
            self.artifact = artifact


def interleaved_best(
    sides: Sequence[Side],
    repeats: int,
    *,
    progress: bool = True,
) -> List[SideBest]:
    """Run every side once per round, ``repeats`` rounds, interleaved.

    Returns one :class:`SideBest` per side, in the order given.  With
    ``progress`` (the default) each round prints a one-line summary so
    long benchmarks show liveness in CI logs.
    """
    if not sides:
        raise ValueError("interleaved_best needs at least one side")
    rounds = max(1, repeats)
    bests = [SideBest(side.label) for side in sides]
    for round_index in range(rounds):
        parts: List[str] = []
        for side, best in zip(sides, bests):
            seconds, artifact = side.measure()
            best._observe(seconds, artifact)
            parts.append(f"{side.label} {seconds:.3f} s")
        if progress:
            print(
                f"  round {round_index + 1}/{rounds}: " + ", ".join(parts),
                flush=True,
            )
            sys.stdout.flush()
    return bests
