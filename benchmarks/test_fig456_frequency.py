"""Figures 4a / 5a / 6a — element frequency ARE vs memory.

Competitors as in the paper: DaVinci, CM, CU, Elastic, FCM.  The
reproduced claim (CAIDA/MAWI): DaVinci has the lowest ARE at the top of
the memory range, with CM the worst; TPC-DS is allowed to be unstable,
exactly as the paper reports ("instability of results due to the small
number of flows").
"""

import pytest
from conftest import (
    BENCH_DATASETS,
    BENCH_MEMORIES,
    BENCH_SCALE,
    BENCH_SEED,
    report,
)

from repro.experiments import figure_frequency, render_sweep


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def test_frequency_panel(run_once, dataset):
    result = run_once(
        figure_frequency,
        dataset=dataset,
        scale=BENCH_SCALE,
        memories_kb=BENCH_MEMORIES,
        seed=BENCH_SEED,
    )
    report(f"Figure 4a-analogue ({dataset}): frequency ARE vs memory", render_sweep(result))

    top = max(BENCH_MEMORIES)
    if dataset != "tpcds":  # the paper flags TPC-DS as unstable here
        assert result.best_algorithm_at(top) == "DaVinci"
        assert result.series["DaVinci"][top] < result.series["CM"][top]
        assert result.series["DaVinci"][top] < result.series["CU"][top]
        assert result.series["DaVinci"][top] < result.series["Elastic"][top]
