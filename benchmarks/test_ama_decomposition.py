"""Section III-B2.3's time-complexity analysis, measured.

The paper derives the insertion cost
``P_FP·(c+2) + P_EF·(c+2+m) + P_IFP·(c+2+m+d)`` and reports an average of
6.68 memory accesses with ``d=3, m=2, c=7`` against 29.47 for the
composite baseline.  This bench decomposes the measured AMA into where
insertions terminate — frequent part, element filter, or infrequent part —
and checks the derived O(c+m+d) ceiling.
"""

from conftest import BENCH_SCALE, BENCH_SEED, report

from repro.core import DaVinciConfig, DaVinciSketch
from repro.workloads import load_trace

MEMORY_KB = 6.0


class _InstrumentedDaVinci(DaVinciSketch):
    """Counts where each insertion's routing terminated.

    Hooks both demotion paths: the per-item ``_push_to_filter`` (the
    regime the paper's cost model describes) and the batched
    ``_push_to_filter_batch`` (which returns the IFP promotions so the
    decomposition stays exact under chunk aggregation).
    """

    def __init__(self, config):
        super().__init__(config)
        self.stopped_in_fp = 0
        self.reached_ef = 0
        self.reached_ifp = 0

    def _push_to_filter(self, key: int, count: int) -> None:
        self.reached_ef += 1
        accesses_before = self.memory_accesses
        super()._push_to_filter(key, count)
        # the parent adds ifp.rows only when overflow occurred
        if self.memory_accesses - accesses_before > self.ef.num_levels:
            self.reached_ifp += 1

    def _push_to_filter_batch(self, demoted):
        self.reached_ef += len(demoted)
        overflow = super()._push_to_filter_batch(demoted)
        self.reached_ifp += len(overflow)
        return overflow


def test_ama_decomposition(run_once):
    def measure():
        config = DaVinciConfig.from_memory_kb(MEMORY_KB, seed=BENCH_SEED + 1)
        sketch = _InstrumentedDaVinci(config)
        trace = load_trace("caida", scale=BENCH_SCALE, seed=BENCH_SEED)
        # the paper's cost model is per *insertion*, so drive the per-item
        # path explicitly (insert_all now routes through the aggregating
        # batch fast path, which deliberately does fewer structure touches)
        for key in trace:
            sketch.insert(key)
        total = sketch.insertions

        batched = DaVinciSketch(
            DaVinciConfig.from_memory_kb(MEMORY_KB, seed=BENCH_SEED + 1)
        )
        batched.insert_all(trace)
        return {
            "ama": sketch.average_memory_access(),
            "batched_ama": batched.average_memory_access(),
            "p_fp_only": 1.0 - sketch.reached_ef / total,
            "p_ef": (sketch.reached_ef - sketch.reached_ifp) / total,
            "p_ifp": sketch.reached_ifp / total,
            "ceiling": config.fp_entries
            + 2
            + len(config.ef_level_widths)
            + config.ifp_rows,
        }

    stats = run_once(measure)
    report(
        "AMA decomposition (Sec. III-B2.3; paper: avg 6.68 at c=7,m=2,d=3)",
        "\n".join(
            [
                f"measured AMA          : {stats['ama']:.2f}",
                f"batched-ingest AMA    : {stats['batched_ama']:.2f}",
                f"insertions ending in FP : {stats['p_fp_only']:.1%}",
                f"... reaching the EF     : {stats['p_ef']:.1%}",
                f"... reaching the IFP    : {stats['p_ifp']:.1%}",
                f"worst-case ceiling c+2+m+d = {stats['ceiling']}",
            ]
        ),
    )

    # the paper's headline: average accesses well below the ceiling,
    # because most insertions terminate early in the frequent part
    assert stats["ama"] < stats["ceiling"]
    assert stats["ama"] < 8.0  # paper measured 6.68 in the same regime
    # chunk aggregation collapses repeats before touching the structure,
    # so the batched path can only reduce the per-pair access average
    assert stats["batched_ama"] <= stats["ama"]
    assert stats["p_fp_only"] > 0.4
    assert abs(
        stats["p_fp_only"] + stats["p_ef"] + stats["p_ifp"] - 1.0
    ) < 1e-9
