#!/usr/bin/env python3
"""Sharded ingestion throughput: ``ShardedIngestor`` vs one process.

The sharded runtime partitions the canonical key space across worker
processes and folds the per-shard sketches through a merge tree (see
``docs/SCALING.md``).  This script measures what that buys end to end —
routing, IPC, worker ingestion *and* the final wire-format collection
and merge are all inside the timed region — over the paper's canonical
workload (a Zipf(1.1) trace), against a single-process ``insert_all``
at the repository-default chunk size.

It also cross-checks the contract the merge tree relies on: the merged
sketch must be ``to_state()``-byte-identical to a sequential fold over
the router's partitions built with the same per-shard chunking.

Run (from the repository root):

    PYTHONPATH=src python benchmarks/bench_sharded.py           # 1M items
    PYTHONPATH=src python benchmarks/bench_sharded.py --quick   # CI smoke

Timings are interleaved best-of-``--repeats`` (default 3) so host noise
lands on neither side of the comparison.  Writes ``BENCH_sharded.json``
(see ``--output``) with rates, speedup and the identity verdict.
Target: >= 2x the single-process rate with 4 shards at full scale.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Tuple

from _harness import Side, interleaved_best
from repro.core import DaVinciConfig, DaVinciSketch
from repro.runtime import ShardedIngestor, ShardRouter, merge_tree
from repro.workloads import zipf_trace

#: at starved budgets the per-shard key spaces are small enough that the
#: frequent part demotes far less often, which is where the 1-CPU-safe
#: speedup comes from; 8 KB is the sweet spot measured on the canonical
#: 1M-item workload
DEFAULT_MEMORY_KB = 8.0


def build_config(memory_kb: float, seed: int) -> DaVinciConfig:
    return DaVinciConfig.from_memory_kb(memory_kb, seed=seed)


def time_single(
    config: DaVinciConfig, trace: List[int], chunk_items: int
) -> Tuple[float, DaVinciSketch]:
    sketch = DaVinciSketch(config)
    start = time.perf_counter()
    sketch.insert_all(trace, chunk_size=chunk_items)
    return time.perf_counter() - start, sketch


def time_sharded(
    args: argparse.Namespace, config: DaVinciConfig, trace: List[int]
) -> Tuple[float, DaVinciSketch]:
    start = time.perf_counter()
    with ShardedIngestor(
        config,
        args.shards,
        chunk_items=args.chunk_items,
        batch_items=args.batch_items,
    ) as ingestor:
        ingestor.ingest_keys(trace)
        merged = ingestor.finalize()
    return time.perf_counter() - start, merged


def _interleaved_best(
    args: argparse.Namespace,
    config: DaVinciConfig,
    trace: List[int],
) -> Tuple[float, float, DaVinciSketch]:
    """Best-of-``--repeats`` single/sharded seconds, interleaved.

    Delegates to :func:`_harness.interleaved_best`, which alternates the
    two measurements inside each round so host noise lands on neither
    side of the comparison.
    """
    single, sharded = interleaved_best(
        [
            Side(
                "single",
                lambda: time_single(
                    config, trace, args.baseline_chunk_items
                ),
            ),
            Side("sharded", lambda: time_sharded(args, config, trace)),
        ],
        repeats=args.repeats,
    )
    merged: DaVinciSketch | None = sharded.artifact
    assert merged is not None
    return single.seconds, sharded.seconds, merged


def reference_fold(
    config: DaVinciConfig,
    trace: List[int],
    num_shards: int,
    chunk_items: int,
) -> DaVinciSketch:
    """The identity oracle: per-partition sequential builds, tree-folded."""
    router = ShardRouter(num_shards)
    shards = []
    for part in router.partition_pairs((key, 1) for key in trace):
        sketch = DaVinciSketch(config)
        if part:
            sketch.insert_batch(part, chunk_size=chunk_items)
        shards.append(sketch)
    return merge_tree(shards)


def run(args: argparse.Namespace) -> Dict[str, object]:
    print(
        f"generating Zipf({args.skew}) trace: {args.items:,} items over "
        f"{args.flows:,} flows (seed {args.seed}) ...",
        flush=True,
    )
    trace = zipf_trace(
        num_packets=args.items,
        num_flows=args.flows,
        skew=args.skew,
        seed=args.seed,
    )
    config = build_config(args.memory_kb, args.seed + 2)

    # warm-up pass so both measurements see hot bytecode/caches
    warm = DaVinciSketch(build_config(args.memory_kb, args.seed + 1))
    warm.insert_all(trace[: min(len(trace), 50_000)])

    single_seconds, sharded_seconds, merged = _interleaved_best(
        args, config, trace
    )

    print("building the sequential-fold identity oracle ...", flush=True)
    reference = reference_fold(
        config, trace, args.shards, args.chunk_items
    )
    identical = merged.to_state() == reference.to_state()

    single_rate = len(trace) / single_seconds
    sharded_rate = len(trace) / sharded_seconds
    speedup = single_seconds / sharded_seconds

    result: Dict[str, object] = {
        "workload": {
            "items": args.items,
            "flows": args.flows,
            "skew": args.skew,
            "seed": args.seed,
            "memory_kb": args.memory_kb,
            "shards": args.shards,
            "chunk_items": args.chunk_items,
            "batch_items": args.batch_items,
            "baseline_chunk_items": args.baseline_chunk_items,
            "repeats": args.repeats,
        },
        "single": {
            "seconds": single_seconds,
            "items_per_second": single_rate,
        },
        "sharded": {
            "seconds": sharded_seconds,
            "items_per_second": sharded_rate,
        },
        "speedup": speedup,
        "merged_identical_to_sequential_fold": identical,
    }

    print(
        f"single  : {single_seconds:8.3f} s  ({single_rate:12,.0f} items/s)"
    )
    print(
        f"sharded : {sharded_seconds:8.3f} s  ({sharded_rate:12,.0f} "
        f"items/s)  [{args.shards} workers]"
    )
    print(f"speedup : {speedup:.2f}x")
    print(f"merged identical to sequential fold: {identical}")
    return result


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--items", type=int, default=1_000_000, help="stream length"
    )
    parser.add_argument(
        "--flows", type=int, default=100_000, help="distinct keys"
    )
    parser.add_argument("--skew", type=float, default=1.1, help="Zipf skew")
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument(
        "--memory-kb",
        type=float,
        default=DEFAULT_MEMORY_KB,
        help="sketch memory budget (KB)",
    )
    parser.add_argument(
        "--shards", type=int, default=4, help="worker process count"
    )
    parser.add_argument(
        "--chunk-items",
        type=int,
        default=262_144,
        help="per-shard insert_batch chunk (the byte-identity unit)",
    )
    parser.add_argument(
        "--batch-items",
        type=int,
        default=262_144,
        help="pairs per IPC message to the workers",
    )
    parser.add_argument(
        "--baseline-chunk-items",
        type=int,
        default=65_536,
        help="single-process insert_all chunk (the repo default)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="interleaved timing rounds; best-of per side is reported",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: 100k items / 20k flows",
    )
    parser.add_argument(
        "--output",
        default="BENCH_sharded.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="exit non-zero if speedup falls below this (<=0 disables)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.items = min(args.items, 100_000)
        args.flows = min(args.flows, 20_000)

    result = run(args)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    if not result["merged_identical_to_sequential_fold"]:
        print("ERROR: merged sketch diverged from the sequential fold")
        return 1
    if args.min_speedup > 0 and float(result["speedup"]) < args.min_speedup:
        print(
            f"ERROR: speedup {float(result['speedup']):.2f}x below the "
            f"{args.min_speedup:.2f}x floor"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
