"""Unit tests for the seeded hash families."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.hashing import (
    HashFamily,
    SignFamily,
    fingerprint,
    hash64,
    key_to_int,
    mix64,
    spread_seeds,
)


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_avalanche_changes_output(self):
        assert mix64(1) != mix64(2)

    def test_output_is_64_bit(self):
        for value in (0, 1, 2**63, 2**64 - 1, 123456789):
            assert 0 <= mix64(value) < 2**64

    def test_negative_inputs_are_masked(self):
        assert 0 <= mix64(-1) < 2**64


class TestHash64:
    def test_same_key_same_seed_is_stable(self):
        assert hash64(42, seed=7) == hash64(42, seed=7)

    def test_different_seeds_differ(self):
        assert hash64(42, seed=1) != hash64(42, seed=2)

    def test_different_keys_differ(self):
        assert hash64(1, seed=1) != hash64(2, seed=1)

    def test_distribution_is_roughly_uniform(self):
        buckets = [0] * 16
        for key in range(4000):
            buckets[hash64(key, seed=3) % 16] += 1
        expected = 4000 / 16
        for count in buckets:
            assert abs(count - expected) < expected * 0.5


class TestKeyToInt:
    def test_int_passthrough(self):
        assert key_to_int(12345) == 12345

    def test_negative_int_wraps_to_unsigned(self):
        assert key_to_int(-1) == 2**64 - 1

    def test_string_is_fingerprinted_deterministically(self):
        assert key_to_int("10.0.0.1") == key_to_int("10.0.0.1")
        assert key_to_int("10.0.0.1") != key_to_int("10.0.0.2")

    def test_bytes_and_equivalent_str_agree(self):
        assert key_to_int(b"flow") == key_to_int("flow")

    def test_bool_rejected(self):
        with pytest.raises(ConfigurationError):
            key_to_int(True)

    def test_unsupported_type_rejected(self):
        with pytest.raises(ConfigurationError):
            key_to_int(3.14)


class TestHashFamily:
    def test_indexes_in_range(self):
        family = HashFamily(rows=4, width=37, seed=5)
        for key in range(200):
            for index in family.indexes(key):
                assert 0 <= index < 37

    def test_per_row_widths(self):
        family = HashFamily(rows=3, width=[10, 20, 30], seed=5)
        for key in range(100):
            idx = family.indexes(key)
            assert idx[0] < 10 and idx[1] < 20 and idx[2] < 30

    def test_index_matches_indexes(self):
        family = HashFamily(rows=3, width=64, seed=9)
        for key in (0, 1, 99, 12345):
            assert [family.index(r, key) for r in range(3)] == family.indexes(key)

    def test_rows_are_decorrelated(self):
        family = HashFamily(rows=2, width=1000, seed=1)
        same = sum(
            1
            for key in range(2000)
            if family.index(0, key) == family.index(1, key)
        )
        # Independent rows collide with probability 1/1000.
        assert same < 20

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ConfigurationError):
            HashFamily(rows=0, width=8)
        with pytest.raises(ConfigurationError):
            HashFamily(rows=2, width=[8])
        with pytest.raises(ConfigurationError):
            HashFamily(rows=1, width=0)


class TestSignFamily:
    def test_signs_are_plus_minus_one(self):
        family = SignFamily(rows=3, seed=2)
        for key in range(100):
            for sign in family.signs(key):
                assert sign in (1, -1)

    def test_signs_are_deterministic(self):
        family = SignFamily(rows=3, seed=2)
        assert family.signs(77) == family.signs(77)

    def test_signs_are_roughly_balanced(self):
        family = SignFamily(rows=1, seed=4)
        positive = sum(1 for key in range(4000) if family.sign(0, key) == 1)
        assert 1700 < positive < 2300

    def test_invalid_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            SignFamily(rows=0)


class TestFingerprint:
    def test_width_respected(self):
        for bits in (1, 8, 16, 32, 64):
            assert 0 <= fingerprint(999, bits) < 2**bits

    def test_invalid_width_rejected(self):
        with pytest.raises(ConfigurationError):
            fingerprint(1, 0)
        with pytest.raises(ConfigurationError):
            fingerprint(1, 65)


class TestSpreadSeeds:
    def test_count_and_uniqueness(self):
        seeds = spread_seeds(1, 10)
        assert len(seeds) == 10
        assert len(set(seeds)) == 10

    def test_deterministic(self):
        assert spread_seeds(5, 4) == spread_seeds(5, 4)

    def test_different_masters_differ(self):
        assert spread_seeds(1, 4) != spread_seeds(2, 4)
