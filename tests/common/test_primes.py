"""Unit tests for the prime-field helpers."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.primes import (
    DEFAULT_PRIME,
    SMALL_PRIME,
    from_field_signed,
    is_prime,
    mod_inverse,
    to_field,
    validate_prime,
)


class TestIsPrime:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 101):
            assert is_prime(p)

    def test_small_composites(self):
        for n in (0, 1, 4, 6, 9, 15, 100, 561, 1105):  # incl. Carmichael
            assert not is_prime(n)

    def test_mersenne_primes(self):
        assert is_prime((1 << 31) - 1)
        assert is_prime((1 << 61) - 1)

    def test_mersenne_composite(self):
        assert not is_prime((1 << 32) - 1)

    def test_negative(self):
        assert not is_prime(-7)


class TestValidatePrime:
    def test_accepts_defaults(self):
        assert validate_prime(DEFAULT_PRIME) == DEFAULT_PRIME
        assert validate_prime(SMALL_PRIME) == SMALL_PRIME

    def test_rejects_composite(self):
        with pytest.raises(ConfigurationError):
            validate_prime(10)

    def test_rejects_too_small(self):
        with pytest.raises(ConfigurationError):
            validate_prime(3)


class TestModInverse:
    @pytest.mark.parametrize("p", [7, 101, SMALL_PRIME, DEFAULT_PRIME])
    def test_inverse_property(self, p):
        for a in (1, 2, 3, p - 1, 12345 % p or 1):
            assert (a * mod_inverse(a, p)) % p == 1

    def test_negative_argument(self):
        p = 101
        assert (-5 * mod_inverse(-5, p)) % p == 1

    def test_zero_has_no_inverse(self):
        with pytest.raises(ConfigurationError):
            mod_inverse(0, 7)

    def test_multiple_of_p_has_no_inverse(self):
        with pytest.raises(ConfigurationError):
            mod_inverse(14, 7)


class TestFieldConversions:
    def test_to_field_wraps_negative(self):
        assert to_field(-1, 7) == 6

    def test_from_field_signed_small_positive(self):
        assert from_field_signed(3, 101) == 3

    def test_from_field_signed_wraps_large(self):
        assert from_field_signed(100, 101) == -1
        assert from_field_signed(101 - 17, 101) == -17

    def test_roundtrip(self):
        p = SMALL_PRIME
        for value in (-1000, -1, 0, 1, 999999):
            assert from_field_signed(to_field(value, p), p) == value
