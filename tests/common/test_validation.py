"""Unit tests for the argument-validation helpers."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.validation import (
    check_same_type,
    require_fraction,
    require_memory_budget,
    require_non_negative,
    require_positive,
)


class TestRequirePositive:
    def test_accepts_positive(self):
        assert require_positive("x", 5) == 5

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "3", None, True])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            require_positive("x", bad)


class TestRequireNonNegative:
    def test_accepts_zero(self):
        assert require_non_negative("x", 0) == 0

    @pytest.mark.parametrize("bad", [-1, 0.5, False])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            require_non_negative("x", bad)


class TestRequireFraction:
    def test_open_interval(self):
        assert require_fraction("f", 0.5) == 0.5
        with pytest.raises(ConfigurationError):
            require_fraction("f", 0.0)
        with pytest.raises(ConfigurationError):
            require_fraction("f", 1.0)

    def test_inclusive_interval(self):
        assert require_fraction("f", 0.0, inclusive=True) == 0.0
        assert require_fraction("f", 1.0, inclusive=True) == 1.0
        with pytest.raises(ConfigurationError):
            require_fraction("f", 1.01, inclusive=True)

    def test_non_numeric_rejected(self):
        with pytest.raises(ConfigurationError):
            require_fraction("f", "half")


class TestRequireMemoryBudget:
    def test_fits(self):
        require_memory_budget("sketch", budget_bytes=100, needed_bytes=100)

    def test_does_not_fit(self):
        with pytest.raises(ConfigurationError):
            require_memory_budget("sketch", budget_bytes=99, needed_bytes=100)


class TestCheckSameType:
    def test_same(self):
        check_same_type([1], [2])

    def test_different(self):
        with pytest.raises(ConfigurationError):
            check_same_type([1], (1,))
