"""Unit tests for the sketch base interfaces and helpers."""

import pytest

from repro.sketches.base import MemoryModel, Sketch, top_k
from repro.sketches import CountMinSketch


class TestMemoryModel:
    def test_bits_to_bytes(self):
        assert MemoryModel.bits_to_bytes(8) == 1.0
        assert MemoryModel.bits_to_bytes(4) == 0.5

    def test_constants(self):
        assert MemoryModel.KEY_BYTES == 4
        assert MemoryModel.COUNTER_BYTES == 4


class TestSketchAccounting:
    def test_fresh_sketch_has_zero_ama(self):
        sketch = CountMinSketch(rows=2, width=8)
        assert sketch.average_memory_access() == 0.0

    def test_insert_all_counts_every_item(self):
        sketch = CountMinSketch(rows=2, width=8)
        sketch.insert_all(iter([1, 2, 3]))  # iterators work too
        assert sketch.insertions == 3

    def test_abstract_base_cannot_instantiate(self):
        with pytest.raises(TypeError):
            Sketch()


class TestTopK:
    def test_ranking(self):
        estimates = {1: 5, 2: 9, 3: 5, 4: 1}
        assert top_k(estimates, 2) == [(2, 9), (1, 5)]

    def test_tie_break_by_key(self):
        assert top_k({5: 3, 2: 3}, 2) == [(2, 3), (5, 3)]

    def test_k_exceeds_population(self):
        assert len(top_k({1: 1}, 99)) == 1

    def test_empty(self):
        assert top_k({}, 3) == []
