"""Unit tests for TowerSketch and Elastic Sketch."""

import pytest

from repro.common.errors import IncompatibleSketchError
from repro.sketches import ElasticSketch, TowerSketch


class TestTowerSketch:
    def test_exact_small_values(self):
        tower = TowerSketch((512, 128), (4, 8), seed=1)
        tower.insert(5, 7)
        assert tower.query(5) == 7

    def test_large_value_falls_through_to_big_counters(self):
        tower = TowerSketch((512, 128), (4, 16), seed=1)
        tower.insert(5, 1000)
        assert tower.query(5) == 1000

    def test_never_underestimates_below_saturation(self):
        tower = TowerSketch((64, 16), (8, 16), seed=2)
        truth = {}
        for key in range(150):
            tower.insert(key)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert tower.query(key) >= count

    def test_from_memory_ratio(self):
        tower = TowerSketch.from_memory(8 * 1024)
        assert tower.memory_bytes() <= 8 * 1024 * 1.01
        assert tower.level_widths[0] > tower.level_widths[1]

    def test_mismatched_levels_rejected(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            TowerSketch((8,), (4, 8))


class TestElasticInsertQuery:
    def test_heavy_flow_stays_in_heavy_part(self):
        elastic = ElasticSketch(heavy_buckets=64, light_width=256, seed=1)
        elastic.insert_all([7] * 100)
        assert elastic.query(7) == 100

    def test_eviction_moves_mouse_to_light(self):
        elastic = ElasticSketch(heavy_buckets=1, light_width=256, lambda_evict=2, seed=1)
        elastic.insert(1)  # resident with 1 packet
        for _ in range(5):
            elastic.insert(2)  # contender: negative votes mount, evicts 1
        assert elastic.query(1) >= 1
        assert elastic.query(2) >= 1

    def test_estimates_never_below_light_query(self):
        elastic = ElasticSketch.from_memory(4 * 1024, seed=3)
        stream = [key % 300 for key in range(5000)]
        elastic.insert_all(stream)
        for key in range(0, 300, 17):
            assert elastic.query(key) >= 1


class TestElasticTasks:
    @pytest.fixture
    def loaded(self):
        elastic = ElasticSketch.from_memory(8 * 1024, seed=2)
        stream = [key for key in range(200) for _ in range(key % 9 + 1)]
        elastic.insert_all(stream)
        return elastic, stream

    def test_heavy_hitters(self, loaded):
        elastic, _stream = loaded
        heavy = elastic.heavy_hitters(8)
        assert heavy
        assert all(estimate >= 8 for estimate in heavy.values())

    def test_cardinality(self, loaded):
        elastic, stream = loaded
        distinct = len(set(stream))
        assert elastic.cardinality() == pytest.approx(distinct, rel=0.15)

    def test_distribution_and_entropy(self, loaded):
        import math

        elastic, stream = loaded
        histogram = elastic.distribution()
        assert histogram
        entropy = elastic.entropy(len(stream))
        truth = {}
        for key in stream:
            truth[key] = truth.get(key, 0) + 1
        total = len(stream)
        true_entropy = -sum(
            (v / total) * math.log(v / total) for v in truth.values()
        )
        assert entropy == pytest.approx(true_entropy, rel=0.3)


class TestElasticMerge:
    def test_merge_adds_counts(self):
        a = ElasticSketch(heavy_buckets=32, light_width=128, seed=5)
        b = ElasticSketch(heavy_buckets=32, light_width=128, seed=5)
        a.insert_all([1] * 10 + [2] * 3)
        b.insert_all([1] * 5 + [3] * 4)
        merged = a.merge(b)
        assert merged.query(1) == pytest.approx(15, abs=2)
        assert merged.query(3) == pytest.approx(4, abs=2)

    def test_merge_rejects_different_shapes(self):
        a = ElasticSketch(heavy_buckets=32, light_width=128, seed=5)
        b = ElasticSketch(heavy_buckets=16, light_width=128, seed=5)
        with pytest.raises(IncompatibleSketchError):
            a.merge(b)

    def test_memory_model(self):
        elastic = ElasticSketch(heavy_buckets=10, light_width=100, seed=1)
        assert elastic.memory_bytes() == pytest.approx(
            10 * ElasticSketch.HEAVY_BUCKET_BYTES + 100
        )
