"""Unit tests for the join-size estimators: F-AGMS, JoinSketch, Skimmed."""

import random

import pytest

from repro.sketches import FastAGMS, JoinSketch, SkimmedSketch


def correlated_streams(seed=3, keys=200, items=3000, skew=1.2):
    rng = random.Random(seed)
    population = list(range(1, keys + 1))
    weights = [1 / (k**skew) for k in population]
    left = rng.choices(population, weights=weights, k=items)
    right = rng.choices(population, weights=weights, k=items)
    return left, right


def exact_join(left, right):
    from collections import Counter

    freq_left, freq_right = Counter(left), Counter(right)
    return sum(count * freq_right[key] for key, count in freq_left.items())


class TestFastAGMS:
    def test_join_estimate_close(self):
        left, right = correlated_streams()
        a = FastAGMS.from_memory(8 * 1024, seed=1)
        b = FastAGMS.from_memory(8 * 1024, seed=1)
        a.insert_all(left)
        b.insert_all(right)
        true = exact_join(left, right)
        assert a.inner_product(b) == pytest.approx(true, rel=0.1)

    def test_disjoint_near_zero(self):
        a = FastAGMS.from_memory(8 * 1024, seed=1)
        b = FastAGMS.from_memory(8 * 1024, seed=1)
        a.insert_all(range(100))
        b.insert_all(range(1000, 1100))
        true_magnitude = 100  # ‖f‖·‖g‖/√w scale noise bound
        assert abs(a.inner_product(b)) < true_magnitude

    def test_point_query(self):
        agms = FastAGMS.from_memory(8 * 1024, seed=2)
        agms.insert(5, 30)
        assert agms.query(5) == 30


class TestJoinSketch:
    def test_heavy_keys_exact(self):
        a = JoinSketch.from_memory(8 * 1024, seed=1)
        b = JoinSketch.from_memory(8 * 1024, seed=1)
        a.insert_all([1] * 500 + [2] * 100)
        b.insert_all([1] * 300 + [2] * 50)
        true = 500 * 300 + 100 * 50
        assert a.inner_product(b) == pytest.approx(true, rel=0.02)

    def test_skewed_join(self):
        left, right = correlated_streams(seed=9)
        a = JoinSketch.from_memory(8 * 1024, seed=2)
        b = JoinSketch.from_memory(8 * 1024, seed=2)
        a.insert_all(left)
        b.insert_all(right)
        assert a.inner_product(b) == pytest.approx(
            exact_join(left, right), rel=0.1
        )

    def test_query_combines_parts(self):
        sketch = JoinSketch.from_memory(8 * 1024, seed=3)
        sketch.insert_all([7] * 40)
        assert sketch.query(7) == pytest.approx(40, abs=2)

    def test_mismatched_configs_rejected(self):
        a = JoinSketch.from_memory(8 * 1024, seed=1)
        b = JoinSketch.from_memory(4 * 1024, seed=1)
        with pytest.raises(ValueError):
            a.inner_product(b)


class TestSkimmedSketch:
    def test_skew_join(self):
        left, right = correlated_streams(seed=4)
        a = SkimmedSketch.from_memory(8 * 1024, seed=2)
        b = SkimmedSketch.from_memory(8 * 1024, seed=2)
        a.insert_all(left)
        b.insert_all(right)
        assert a.inner_product(b) == pytest.approx(
            exact_join(left, right), rel=0.2
        )

    def test_skim_removes_heavy_mass(self):
        sketch = SkimmedSketch.from_memory(8 * 1024, seed=5)
        sketch.insert_all([1] * 1000 + list(range(10, 60)))
        heavy, residual = sketch._skim()
        assert 1 in heavy
        # after skimming, the residual's estimate of key 1 is near zero
        assert abs(residual.query(1)) < 100

    def test_shape_mismatch_rejected(self):
        a = SkimmedSketch.from_memory(8 * 1024, seed=1)
        b = SkimmedSketch.from_memory(2 * 1024, seed=1)
        with pytest.raises(ValueError):
            a.inner_product(b)

    def test_point_query(self):
        sketch = SkimmedSketch.from_memory(8 * 1024, seed=6)
        sketch.insert(3, 17)
        assert sketch.query(3) == 17
