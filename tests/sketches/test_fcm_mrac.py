"""Unit tests for FCM-Sketch and MRAC."""

import math

import pytest

from repro.sketches import FCMSketch, MRAC


class TestFCMInsertQuery:
    def test_small_value_exact(self):
        fcm = FCMSketch(trees=2, base_width=1024, seed=1)
        fcm.insert(5, 10)
        assert fcm.query(5) == 10

    def test_overflow_chains_across_stages(self):
        fcm = FCMSketch(trees=1, base_width=512, seed=1)
        fcm.insert(5, 300)  # exceeds the 8-bit leaf (cap 255)
        assert fcm.query(5) == 300

    def test_deep_overflow_to_third_stage(self):
        fcm = FCMSketch(trees=1, base_width=512, seed=1)
        fcm.insert(5, 70000)  # exceeds 255 + 65535? no: fits stage 2 cap
        assert fcm.query(5) == 70000

    def test_never_underestimates(self):
        fcm = FCMSketch(trees=2, base_width=64, seed=2)
        truth = {}
        for key in range(200):
            fcm.insert(key)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert fcm.query(key) >= count

    def test_from_memory(self):
        fcm = FCMSketch.from_memory(16 * 1024)
        assert fcm.memory_bytes() <= 16 * 1024 * 1.01

    def test_invalid_shape(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            FCMSketch(trees=0, base_width=8)


class TestFCMTasks:
    @pytest.fixture
    def loaded(self):
        fcm = FCMSketch.from_memory(16 * 1024, seed=3)
        stream = [key for key in range(300) for _ in range(key % 5 + 1)]
        fcm.insert_all(stream)
        return fcm, stream

    def test_cardinality(self, loaded):
        fcm, stream = loaded
        assert fcm.cardinality() == pytest.approx(len(set(stream)), rel=0.1)

    def test_distribution(self, loaded):
        fcm, stream = loaded
        histogram = fcm.distribution()
        assert sum(histogram.values()) == pytest.approx(
            len(set(stream)), rel=0.2
        )

    def test_entropy(self, loaded):
        fcm, stream = loaded
        truth = {}
        for key in stream:
            truth[key] = truth.get(key, 0) + 1
        total = len(stream)
        true_entropy = -sum(
            (v / total) * math.log(v / total) for v in truth.values()
        )
        assert fcm.entropy(total) == pytest.approx(true_entropy, rel=0.2)

    def test_subtract_query(self):
        a = FCMSketch(trees=2, base_width=1024, seed=4)
        b = FCMSketch(trees=2, base_width=1024, seed=4)
        a.insert(1, 50)
        b.insert(1, 20)
        assert a.subtract_query(b, 1) == 30


class TestMRAC:
    def test_counter_read(self):
        mrac = MRAC(width=1024, seed=1)
        mrac.insert(5, 9)
        assert mrac.query(5) == 9

    def test_cardinality(self):
        mrac = MRAC(width=2048, seed=2)
        mrac.insert_all(range(400))
        assert mrac.cardinality() == pytest.approx(400, rel=0.1)

    def test_distribution_recovers_uniform_sizes(self):
        mrac = MRAC(width=2048, seed=3)
        stream = [key for key in range(300) for _ in range(3)]
        mrac.insert_all(stream)
        histogram = mrac.distribution()
        assert histogram.get(3, 0) == pytest.approx(300, rel=0.2)

    def test_entropy_of_uniform_stream(self):
        mrac = MRAC(width=4096, seed=4)
        mrac.insert_all(range(500))
        assert mrac.entropy(500) == pytest.approx(math.log(500), rel=0.1)

    def test_ama_is_one(self):
        mrac = MRAC(width=64, seed=1)
        mrac.insert_all(range(10))
        assert mrac.average_memory_access() == 1.0

    def test_from_memory(self):
        mrac = MRAC.from_memory(4 * 1024)
        assert mrac.width == 1024
