"""Unit tests for HashPipe, CocoSketch and UnivMon."""

import math
import random

import pytest

from repro.sketches import CocoSketch, HashPipe, UnivMon


def skewed_stream(seed=5, keys=300, items=6000, skew=1.2):
    rng = random.Random(seed)
    population = list(range(1, keys + 1))
    weights = [1 / (k**skew) for k in population]
    return rng.choices(population, weights=weights, k=items)


class TestHashPipe:
    def test_single_heavy_flow(self):
        pipe = HashPipe(stages=4, slots_per_stage=64, seed=1)
        pipe.insert_all([9] * 100)
        assert pipe.query(9) == 100

    def test_heavy_hitters_found(self):
        pipe = HashPipe.from_memory(4 * 1024, seed=2)
        stream = skewed_stream()
        pipe.insert_all(stream)
        truth = {}
        for key in stream:
            truth[key] = truth.get(key, 0) + 1
        correct = {k for k, v in truth.items() if v >= 100}
        reported = set(pipe.heavy_hitters(100))
        assert correct  # sanity: some heavies exist
        assert len(reported & correct) / len(correct) > 0.8

    def test_mouse_flows_may_be_dropped(self):
        pipe = HashPipe(stages=2, slots_per_stage=4, seed=3)
        pipe.insert_all(range(100))  # 100 mice through 8 slots
        tracked = sum(1 for key in range(100) if pipe.query(key) > 0)
        assert tracked <= 8

    def test_memory_model(self):
        pipe = HashPipe(stages=3, slots_per_stage=10, seed=1)
        assert pipe.memory_bytes() == 3 * 10 * HashPipe.SLOT_BYTES


class TestCocoSketch:
    def test_single_flow(self):
        coco = CocoSketch(rows=1, width=64, seed=1)
        coco.insert_all([3] * 50)
        assert coco.query(3) == 50

    def test_heavy_keys_survive_replacement(self):
        coco = CocoSketch.from_memory(4 * 1024, seed=2)
        stream = skewed_stream(seed=7)
        coco.insert_all(stream)
        truth = {}
        for key in stream:
            truth[key] = truth.get(key, 0) + 1
        top = sorted(truth, key=truth.get, reverse=True)[:5]
        reported = coco.heavy_hitters(truth[top[-1]] // 2)
        assert len(set(top) & set(reported)) >= 3

    def test_counter_upper_bounds_estimate(self):
        coco = CocoSketch(rows=2, width=8, seed=3)
        stream = list(range(50)) * 4
        coco.insert_all(stream)
        for key in range(50):
            estimate = coco.query(key)
            assert estimate >= 0

    def test_deterministic_with_seeded_rng(self):
        a = CocoSketch(rows=2, width=32, seed=9)
        b = CocoSketch(rows=2, width=32, seed=9)
        stream = skewed_stream(seed=1, items=1000)
        a.insert_all(stream)
        b.insert_all(stream)
        assert a.heavy_hitters(10) == b.heavy_hitters(10)


class TestUnivMon:
    @pytest.fixture
    def loaded(self):
        univmon = UnivMon.from_memory(32 * 1024, seed=4)
        stream = skewed_stream(seed=9, keys=400, items=8000)
        univmon.insert_all(stream)
        truth = {}
        for key in stream:
            truth[key] = truth.get(key, 0) + 1
        return univmon, stream, truth

    def test_sampling_is_nested(self):
        univmon = UnivMon(levels=6, rows=3, width=64, heap_size=8, seed=1)
        for key in range(500):
            deepest = univmon.max_level(key)
            for level in range(deepest + 1):
                assert univmon.sampled_at(key, level)

    def test_sampling_halves_per_level(self):
        univmon = UnivMon(levels=6, rows=3, width=64, heap_size=8, seed=1)
        sampled = sum(1 for key in range(4000) if univmon.sampled_at(key, 1))
        assert 1700 < sampled < 2300

    def test_heavy_hitters(self, loaded):
        univmon, _stream, truth = loaded
        top = sorted(truth, key=truth.get, reverse=True)[:3]
        reported = univmon.heavy_hitters(truth[top[2]] // 2)
        assert set(top) & set(reported)

    def test_cardinality_order_of_magnitude(self, loaded):
        univmon, stream, _truth = loaded
        distinct = len(set(stream))
        assert univmon.cardinality() == pytest.approx(distinct, rel=0.5)

    def test_entropy_order_of_magnitude(self, loaded):
        univmon, stream, truth = loaded
        total = len(stream)
        true_entropy = -sum(
            (v / total) * math.log(v / total) for v in truth.values()
        )
        assert univmon.entropy(total) == pytest.approx(true_entropy, rel=0.5)

    def test_change_query(self):
        a = UnivMon.from_memory(16 * 1024, seed=5)
        b = UnivMon.from_memory(16 * 1024, seed=5)
        a.insert_all([1] * 100)
        b.insert_all([1] * 40)
        assert a.change_query(b, 1) == pytest.approx(60, abs=10)

    def test_memory_split(self):
        univmon = UnivMon.from_memory(32 * 1024, levels=8)
        assert univmon.memory_bytes() <= 32 * 1024 * 1.1
        assert len(univmon.layers) == 8
