"""Unit tests for Count-Min and CU sketches."""

import pytest

from repro.common.errors import ConfigurationError
from repro.sketches import CountMinSketch, CUSketch


class TestCountMin:
    def test_exact_without_collisions(self):
        cm = CountMinSketch(rows=3, width=1024, seed=1)
        cm.insert(5, 10)
        assert cm.query(5) == 10

    def test_never_underestimates(self):
        cm = CountMinSketch(rows=3, width=16, seed=1)
        truth = {}
        for key in range(100):
            cm.insert(key, key % 3 + 1)
            truth[key] = key % 3 + 1
        for key, count in truth.items():
            assert cm.query(key) >= count

    def test_from_memory_sizing(self):
        cm = CountMinSketch.from_memory(12 * 1024, rows=3)
        assert cm.memory_bytes() <= 12 * 1024
        assert cm.memory_bytes() > 11 * 1024

    def test_ama_equals_rows(self):
        cm = CountMinSketch(rows=4, width=64, seed=1)
        cm.insert_all(range(50))
        assert cm.average_memory_access() == 4.0

    def test_invalid_shape(self):
        with pytest.raises(ConfigurationError):
            CountMinSketch(rows=0, width=8)

    def test_absent_key_reads_collision_noise_only(self):
        cm = CountMinSketch(rows=3, width=4096, seed=1)
        cm.insert_all(range(100))
        assert cm.query(10**9) <= 1


class TestCU:
    def test_exact_without_collisions(self):
        cu = CUSketch(rows=3, width=1024, seed=1)
        cu.insert(5, 10)
        assert cu.query(5) == 10

    def test_never_underestimates(self):
        cu = CUSketch(rows=3, width=16, seed=1)
        truth = {}
        for key in range(100):
            cu.insert(key)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert cu.query(key) >= count

    def test_no_worse_than_cm(self):
        """Conservative update dominates plain CM pointwise."""
        cm = CountMinSketch(rows=3, width=64, seed=9)
        cu = CUSketch(rows=3, width=64, seed=9)
        stream = [key % 40 for key in range(2000)]
        cm.insert_all(stream)
        cu.insert_all(stream)
        for key in range(40):
            assert cu.query(key) <= cm.query(key)

    def test_from_memory_sizing(self):
        cu = CUSketch.from_memory(8 * 1024)
        assert cu.memory_bytes() <= 8 * 1024
