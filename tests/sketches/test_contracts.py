"""Cross-sketch contract tests.

Every frequency sketch in the package, whatever its internals, must honour
a common behavioural contract: deterministic under a fixed seed, sized
within its memory budget, sane on empty/point queries, and accounting its
insertions.  Running the contract over all implementations at once catches
regressions a per-sketch suite misses.
"""

import pytest

from repro.core import DaVinciConfig, DaVinciSketch
from repro.sketches import (
    MRAC,
    CocoSketch,
    CountHeap,
    CountMinSketch,
    CountSketch,
    CUSketch,
    ElasticSketch,
    FastAGMS,
    FCMSketch,
    HashPipe,
    HeavyKeeper,
    JoinSketch,
    MVSketch,
    SkimmedSketch,
    TowerSketch,
)

MEMORY = 8 * 1024
SEED = 7


def davinci_factory(seed=SEED):
    return DaVinciSketch(DaVinciConfig.from_memory(MEMORY, seed=seed))


FACTORIES = {
    "DaVinci": davinci_factory,
    "CM": lambda seed=SEED: CountMinSketch.from_memory(MEMORY, seed=seed),
    "CU": lambda seed=SEED: CUSketch.from_memory(MEMORY, seed=seed),
    "CountSketch": lambda seed=SEED: CountSketch.from_memory(MEMORY, seed=seed),
    "CountHeap": lambda seed=SEED: CountHeap.from_memory(MEMORY, seed=seed),
    "Tower": lambda seed=SEED: TowerSketch.from_memory(MEMORY, seed=seed),
    "Elastic": lambda seed=SEED: ElasticSketch.from_memory(MEMORY, seed=seed),
    "FCM": lambda seed=SEED: FCMSketch.from_memory(MEMORY, seed=seed),
    "HashPipe": lambda seed=SEED: HashPipe.from_memory(MEMORY, seed=seed),
    "Coco": lambda seed=SEED: CocoSketch.from_memory(MEMORY, seed=seed),
    "MRAC": lambda seed=SEED: MRAC.from_memory(MEMORY, seed=seed),
    "JoinSketch": lambda seed=SEED: JoinSketch.from_memory(MEMORY, seed=seed),
    "FastAGMS": lambda seed=SEED: FastAGMS.from_memory(MEMORY, seed=seed),
    "Skimmed": lambda seed=SEED: SkimmedSketch.from_memory(MEMORY, seed=seed),
    "HeavyKeeper": lambda seed=SEED: HeavyKeeper.from_memory(MEMORY, seed=seed),
    "MVSketch": lambda seed=SEED: MVSketch.from_memory(MEMORY, seed=seed),
}

STREAM = [key % 97 + 1 for key in range(3000)]


@pytest.fixture(params=sorted(FACTORIES), ids=sorted(FACTORIES))
def factory(request):
    return FACTORIES[request.param]


class TestCommonContract:
    def test_memory_within_budget(self, factory):
        sketch = factory()
        assert 0 < sketch.memory_bytes() <= MEMORY * 1.05

    def test_insertions_counted(self, factory):
        sketch = factory()
        sketch.insert_all(STREAM)
        assert sketch.insertions == len(STREAM)
        assert sketch.average_memory_access() > 0

    def test_deterministic_given_seed(self, factory):
        a, b = factory(), factory()
        a.insert_all(STREAM)
        b.insert_all(STREAM)
        for key in range(1, 98, 7):
            assert a.query(key) == b.query(key)

    def test_point_query_tracks_single_heavy_key(self, factory):
        sketch = factory()
        sketch.insert_all([55] * 1000)
        estimate = sketch.query(55)
        assert estimate == pytest.approx(1000, rel=0.15)

    def test_empty_sketch_query_is_small(self, factory):
        sketch = factory()
        assert abs(sketch.query(12345)) <= 1

    def test_weighted_insert_supported(self, factory):
        sketch = factory()
        sketch.insert(9, 250)
        assert sketch.query(9) == pytest.approx(250, rel=0.1)

    def test_reset_access_counters(self, factory):
        sketch = factory()
        sketch.insert_all(STREAM[:100])
        sketch.reset_access_counters()
        assert sketch.insertions == 0
        assert sketch.memory_accesses == 0


HEAVY_FACTORIES = {
    name: FACTORIES[name]
    for name in (
        "DaVinci",
        "Elastic",
        "HashPipe",
        "Coco",
        "CountHeap",
        "HeavyKeeper",
        "MVSketch",
    )
}


@pytest.fixture(params=sorted(HEAVY_FACTORIES), ids=sorted(HEAVY_FACTORIES))
def heavy_factory(request):
    return HEAVY_FACTORIES[request.param]


class TestHeavyHitterContract:
    def test_reported_keys_meet_threshold(self, heavy_factory):
        sketch = heavy_factory()
        sketch.insert_all(STREAM + [7] * 500)
        for key, estimate in sketch.heavy_hitters(200).items():
            assert abs(estimate) >= 200

    def test_obvious_elephant_is_found(self, heavy_factory):
        sketch = heavy_factory()
        sketch.insert_all(STREAM + [7] * 2000)
        assert 7 in sketch.heavy_hitters(1000)
