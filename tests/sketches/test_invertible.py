"""Unit tests for the invertible sketches: Fermat, FlowRadar, LossRadar."""

from collections import Counter

import pytest

from repro.common.errors import IncompatibleSketchError
from repro.sketches import FermatSketch, FlowRadar, LossRadar


class TestFermatSketch:
    def test_roundtrip(self):
        fermat = FermatSketch(rows=3, width=64, seed=1)
        truth = {key: key % 4 + 1 for key in range(100, 130)}
        for key, count in truth.items():
            fermat.insert(key, count)
        assert fermat.decode() == truth

    def test_query_via_decode(self):
        fermat = FermatSketch(rows=3, width=64, seed=1)
        fermat.insert(42, 9)
        assert fermat.query(42) == 9
        assert fermat.query(43) == 0

    def test_decode_cache_invalidated(self):
        fermat = FermatSketch(rows=3, width=64, seed=1)
        fermat.insert(1, 2)
        assert fermat.decode() == {1: 2}
        fermat.insert(2, 3)
        assert fermat.decode() == {1: 2, 2: 3}

    def test_merge_is_union(self):
        a = FermatSketch(rows=3, width=64, seed=1)
        b = FermatSketch(rows=3, width=64, seed=1)
        a.insert(1, 2)
        b.insert(1, 3)
        b.insert(9, 1)
        assert a.merge(b).decode() == {1: 5, 9: 1}

    def test_subtract_is_signed_difference(self):
        a = FermatSketch(rows=3, width=64, seed=1)
        b = FermatSketch(rows=3, width=64, seed=1)
        a.insert(1, 5)
        a.insert(2, 2)
        b.insert(1, 7)
        b.insert(2, 2)
        assert a.subtract(b).decode() == {1: -2}

    def test_overload_fails_gracefully(self):
        fermat = FermatSketch(rows=3, width=8, seed=1)
        for key in range(500, 600):
            fermat.insert(key)
        decoded = fermat.decode()
        assert len(decoded) < 100  # partial or empty, never wrong keys
        # The 32-bit key-domain check keeps false pure-bucket decodes out.
        for key in decoded:
            assert 500 <= key < 600

    def test_out_of_domain_key_rejected(self):
        fermat = FermatSketch(rows=3, width=8, seed=1)
        with pytest.raises(ValueError):
            fermat.insert(1 << 40)
        with pytest.raises(ValueError):
            fermat.insert(0)

    def test_incompatible_rejected(self):
        a = FermatSketch(rows=3, width=64, seed=1)
        b = FermatSketch(rows=3, width=64, seed=2)
        with pytest.raises(IncompatibleSketchError):
            a.merge(b)


class TestFlowRadar:
    def test_roundtrip(self):
        radar = FlowRadar(cells=128, filter_bits=1024, seed=1)
        truth = {key: key % 3 + 1 for key in range(50, 80)}
        assert truth
        for key, count in truth.items():
            for _ in range(count):
                radar.insert(key)
        assert radar.decode() == truth

    def test_nested_difference_decodes_losses(self):
        """The packet-loss scenario: downstream misses some packets."""
        upstream = FlowRadar(cells=256, filter_bits=2048, seed=2)
        downstream = FlowRadar(cells=256, filter_bits=2048, seed=2)
        sent = [key for key in range(1, 101) for _ in range(3)]
        lost = set(range(10, 101, 10))  # flows losing one packet each
        for key in sent:
            upstream.insert(key)
        dropped = dict.fromkeys(lost, 1)
        for key in sent:
            if dropped.get(key):
                dropped[key] = 0
                continue
            downstream.insert(key)
        delta = upstream.subtract(downstream)
        decoded = delta.decode()
        # The documented FlowRadar caveat: a flow present in BOTH sketches
        # cancels its ID fields entirely, so its per-packet delta is
        # stranded (undecodable) rather than attributed — decode returns
        # nothing here, but no *wrong* flows either.
        assert all(1 <= key < 100 for key in decoded)
        # the stranded packet deltas are still in the cells: each lost
        # packet was recorded at num_hashes cells of the upstream meter
        stranded_packets = sum(cell.packet_count for cell in delta.cells)
        assert stranded_packets == delta.num_hashes * len(lost)

    def test_merge_shape_check(self):
        a = FlowRadar(cells=64, filter_bits=512, seed=1)
        b = FlowRadar(cells=32, filter_bits=512, seed=1)
        with pytest.raises(IncompatibleSketchError):
            a.merge(b)

    def test_memory_model(self):
        radar = FlowRadar(cells=100, filter_bits=800, seed=1)
        assert radar.memory_bytes() == 100 * 12.0 + 100


class TestLossRadar:
    def test_roundtrip_with_duplicates(self):
        radar = LossRadar(cells=128, seed=1)
        stream = [7] * 5 + [8] * 2 + [9]
        radar.insert_all(stream)
        assert radar.decode() == dict(Counter(stream))

    def test_difference_of_meters(self):
        before = LossRadar(cells=256, seed=2)
        after = LossRadar(cells=256, seed=2)
        sent = [key for key in range(1, 201) for _ in range(2)]
        before.insert_all(sent)
        after.insert_all(sent[10:])  # first 10 packets lost
        decoded = before.subtract(after).decode()
        assert decoded == dict(Counter(sent[:10]))

    def test_negative_side_of_difference(self):
        a = LossRadar(cells=128, seed=3)
        b = LossRadar(cells=128, seed=3)
        b.insert_all([55] * 4)
        assert a.subtract(b).decode() == {55: -4}

    def test_overload_partial_decode(self):
        radar = LossRadar(cells=16, seed=4)
        radar.insert_all(range(1000, 1100))
        decoded = radar.decode()
        for key in decoded:
            assert 1000 <= key < 1100

    def test_merge(self):
        a = LossRadar(cells=128, seed=5)
        b = LossRadar(cells=128, seed=5)
        a.insert(1, 2)
        b.insert(1, 3)
        assert a.merge(b).decode() == {1: 5}

    def test_incompatible_rejected(self):
        with pytest.raises(IncompatibleSketchError):
            LossRadar(cells=64, seed=1).subtract(LossRadar(cells=64, seed=2))
