"""Unit tests for the CSOA composite and linear counting."""

import pytest

from repro.sketches import CSOA, LinearCounter


class TestLinearCounter:
    def test_distinct_counting(self):
        counter = LinearCounter(bits=4096, seed=1)
        counter.insert_all(range(800))
        assert counter.cardinality() == pytest.approx(800, rel=0.08)

    def test_duplicates_ignored(self):
        counter = LinearCounter(bits=1024, seed=2)
        counter.insert_all([5] * 1000)
        assert counter.cardinality() == pytest.approx(1, abs=1)

    def test_from_memory(self):
        counter = LinearCounter.from_memory(1024)
        assert counter.bits == 8192
        assert counter.memory_bytes() == 1024

    def test_empty(self):
        assert LinearCounter(bits=64).cardinality() == 0.0


class TestCSOA:
    @pytest.fixture
    def loaded(self):
        csoa = CSOA.from_memory(24 * 1024, seed=3)
        stream = [key for key in range(1, 301) for _ in range(key % 6 + 1)]
        csoa.insert_all(stream)
        return csoa, stream

    def test_memory_is_sum_of_parts(self, loaded):
        csoa, _ = loaded
        assert csoa.memory_bytes() == pytest.approx(
            csoa.fcm.memory_bytes()
            + csoa.fermat.memory_bytes()
            + csoa.join.memory_bytes()
        )

    def test_ama_stacks_constituents(self, loaded):
        csoa, _ = loaded
        assert csoa.average_memory_access() > csoa.fcm.average_memory_access()

    def test_frequency_via_fcm(self, loaded):
        csoa, _ = loaded
        assert csoa.query(299) == pytest.approx(299 % 6 + 1, abs=3)

    def test_heavy_hitters_need_candidates(self, loaded):
        csoa, stream = loaded
        candidates = set(stream)
        heavy = csoa.heavy_hitters(6, candidates)
        assert heavy
        assert all(estimate >= 6 for estimate in heavy.values())

    def test_cardinality(self, loaded):
        csoa, stream = loaded
        assert csoa.cardinality() == pytest.approx(len(set(stream)), rel=0.1)

    def test_union_and_difference_via_fermat(self):
        a = CSOA.from_memory(24 * 1024, seed=4)
        b = CSOA.from_memory(24 * 1024, seed=4)
        a.insert(1, 5)
        b.insert(1, 3)
        b.insert(2, 2)
        assert a.union_with(b).decode() == {1: 8, 2: 2}
        assert a.difference_with(b).decode() == {1: 2, 2: -2}

    def test_inner_product_via_joinsketch(self):
        a = CSOA.from_memory(24 * 1024, seed=5)
        b = CSOA.from_memory(24 * 1024, seed=5)
        a.insert(7, 100)
        b.insert(7, 40)
        assert a.inner_product(b) == pytest.approx(4000, rel=0.1)

    def test_entropy_and_distribution_delegate(self, loaded):
        csoa, stream = loaded
        assert csoa.distribution()
        assert csoa.entropy(len(stream)) > 0
