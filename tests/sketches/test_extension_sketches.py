"""Unit tests for the extension baselines: HyperLogLog, HeavyKeeper,
MV-Sketch (related-work algorithms added beyond the paper's evaluated set).
"""

import random

import pytest

from repro.common.errors import ConfigurationError, IncompatibleSketchError
from repro.sketches import HeavyKeeper, HyperLogLog, MVSketch


def skewed(seed=1, keys=800, items=15000, skew=1.2):
    rng = random.Random(seed)
    population = list(range(1, keys + 1))
    weights = [1 / (k**skew) for k in population]
    return rng.choices(population, weights=weights, k=items)


class TestHyperLogLog:
    def test_accuracy(self):
        hll = HyperLogLog(precision=12, seed=1)
        hll.insert_all(range(1, 50_001))
        assert hll.cardinality() == pytest.approx(50_000, rel=0.05)

    def test_small_range_correction(self):
        hll = HyperLogLog(precision=12, seed=1)
        hll.insert_all(range(1, 101))
        assert hll.cardinality() == pytest.approx(100, rel=0.1)

    def test_duplicates_free(self):
        hll = HyperLogLog(precision=10, seed=2)
        hll.insert_all([7] * 10_000)
        assert hll.cardinality() == pytest.approx(1, abs=1)

    def test_merge_is_union(self):
        a = HyperLogLog(precision=10, seed=3)
        b = HyperLogLog(precision=10, seed=3)
        a.insert_all(range(1, 2001))
        b.insert_all(range(1001, 3001))
        assert a.merge(b).cardinality() == pytest.approx(3000, rel=0.1)

    def test_merge_rejects_mismatch(self):
        with pytest.raises(ConfigurationError):
            HyperLogLog(10, seed=1).merge(HyperLogLog(11, seed=1))

    def test_precision_bounds(self):
        with pytest.raises(ConfigurationError):
            HyperLogLog(precision=3)
        with pytest.raises(ConfigurationError):
            HyperLogLog(precision=19)

    def test_from_memory(self):
        hll = HyperLogLog.from_memory(3072)  # 3 KB → 4096 registers (6 bits)
        assert hll.num_registers == 4096
        assert hll.memory_bytes() == 3072


class TestHeavyKeeper:
    def test_elephant_counted_accurately(self):
        keeper = HeavyKeeper(rows=2, width=512, heap_size=16, seed=1)
        keeper.insert_all([9] * 1000 + list(range(100, 400)))
        assert keeper.query(9) == pytest.approx(1000, rel=0.02)

    def test_mice_decay_out(self):
        keeper = HeavyKeeper(rows=2, width=8, heap_size=8, seed=2)
        keeper.insert_all(list(range(1, 200)))  # 199 mice through 16 slots
        survivors = sum(1 for key in range(1, 200) if keeper.query(key) > 0)
        assert survivors <= 16

    def test_heavy_hitters_f1(self):
        stream = skewed(seed=4)
        truth = {}
        for key in stream:
            truth[key] = truth.get(key, 0) + 1
        keeper = HeavyKeeper.from_memory(4096, seed=5)
        keeper.insert_all(stream)
        correct = {key for key, value in truth.items() if value >= 100}
        reported = set(keeper.heavy_hitters(100))
        assert len(reported & correct) / len(correct) > 0.8

    def test_top_k(self):
        keeper = HeavyKeeper(rows=2, width=256, heap_size=16, seed=6)
        keeper.insert_all([1] * 300 + [2] * 200 + [3] * 100 + list(range(50, 90)))
        top = keeper.top_k(2)
        assert [key for key, _ in top] == [1, 2]

    def test_memory_budget(self):
        keeper = HeavyKeeper.from_memory(8 * 1024)
        assert keeper.memory_bytes() <= 8 * 1024 * 1.01


class TestMVSketch:
    def test_single_heavy_flow(self):
        sketch = MVSketch(rows=2, width=128, seed=1)
        sketch.insert_all([5] * 200)
        assert sketch.query(5) == 200

    def test_never_underestimates_majority_key(self):
        sketch = MVSketch(rows=2, width=32, seed=2)
        stream = skewed(seed=7, keys=200, items=5000)
        truth = {}
        for key in stream:
            truth[key] = truth.get(key, 0) + 1
        sketch.insert_all(stream)
        top = sorted(truth, key=truth.get, reverse=True)[:5]
        for key in top:
            assert sketch.query(key) >= truth[key] * 0.8

    def test_heavy_hitters(self):
        stream = skewed(seed=8)
        truth = {}
        for key in stream:
            truth[key] = truth.get(key, 0) + 1
        sketch = MVSketch.from_memory(4096, seed=9)
        sketch.insert_all(stream)
        correct = {key for key, value in truth.items() if value >= 100}
        reported = set(sketch.heavy_hitters(100))
        assert len(reported & correct) / len(correct) > 0.8

    def test_subtract_for_heavy_changers(self):
        a = MVSketch(rows=2, width=128, seed=3)
        b = MVSketch(rows=2, width=128, seed=3)
        a.insert_all([1] * 500 + [2] * 100)
        b.insert_all([1] * 100 + [2] * 100)
        delta = a.subtract(b)
        assert delta.query(1) == pytest.approx(400, abs=20)
        changed = delta.heavy_hitters(200)
        assert 1 in changed and 2 not in changed

    def test_subtract_shape_check(self):
        with pytest.raises(IncompatibleSketchError):
            MVSketch(2, 64, seed=1).subtract(MVSketch(2, 32, seed=1))

    def test_memory_model(self):
        sketch = MVSketch(rows=2, width=100)
        assert sketch.memory_bytes() == 2 * 100 * 12
