"""Unit tests for Count Sketch and CountHeap."""

import random

import pytest

from repro.sketches import CountHeap, CountSketch


class TestCountSketch:
    def test_exact_without_collisions(self):
        cs = CountSketch(rows=3, width=1024, seed=1)
        cs.insert(5, 10)
        assert cs.query(5) == 10

    def test_roughly_unbiased(self):
        """Averaged over keys, Count-Sketch errors should center near 0."""
        cs = CountSketch(rows=5, width=64, seed=3)
        truth = {key: 10 for key in range(200)}
        for key, count in truth.items():
            cs.insert(key, count)
        errors = [cs.query(key) - truth[key] for key in truth]
        assert abs(sum(errors) / len(errors)) < 3.0

    def test_inner_product_self_join(self):
        cs_a = CountSketch(rows=5, width=512, seed=4)
        cs_b = CountSketch(rows=5, width=512, seed=4)
        counts = {key: key % 7 + 1 for key in range(100)}
        for key, count in counts.items():
            cs_a.insert(key, count)
            cs_b.insert(key, count)
        true = sum(count * count for count in counts.values())
        assert cs_a.inner_product(cs_b) == pytest.approx(true, rel=0.15)

    def test_inner_product_shape_mismatch(self):
        with pytest.raises(ValueError):
            CountSketch(3, 16).inner_product(CountSketch(3, 32))

    def test_from_memory(self):
        cs = CountSketch.from_memory(6 * 1024)
        assert cs.memory_bytes() <= 6 * 1024


class TestCountHeap:
    def test_tracks_the_elephants(self):
        heap = CountHeap(rows=3, width=512, heap_size=10, seed=2)
        rng = random.Random(5)
        stream = [0] * 500 + [1] * 300 + [2] * 200 + [
            rng.randrange(100, 400) for _ in range(800)
        ]
        rng.shuffle(stream)
        heap.insert_all(stream)
        heavy = heap.heavy_hitters(150)
        assert {0, 1, 2} <= set(heavy)

    def test_heap_respects_capacity(self):
        heap = CountHeap(rows=3, width=256, heap_size=5, seed=2)
        heap.insert_all(range(100))
        assert len(heap.heavy_hitters(0 + 1)) <= 5

    def test_query_delegates_to_sketch(self):
        heap = CountHeap(rows=3, width=512, heap_size=4, seed=2)
        heap.insert(9, 25)
        assert heap.query(9) == 25

    def test_from_memory_budget(self):
        heap = CountHeap.from_memory(10 * 1024)
        assert heap.memory_bytes() <= 10 * 1024
        assert heap.heap_size >= 8

    def test_invalid_heap_size(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            CountHeap(rows=3, width=16, heap_size=0)
