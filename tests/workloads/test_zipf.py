"""Unit tests for the Zipf multiset generator."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.workloads.zipf import generate_keys, zipf_probabilities, zipf_trace


class TestZipfProbabilities:
    def test_normalized(self):
        probs = zipf_probabilities(100, 1.1)
        assert probs.sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        probs = zipf_probabilities(50, 1.0)
        assert all(probs[i] >= probs[i + 1] for i in range(49))

    def test_zero_skew_is_uniform(self):
        probs = zipf_probabilities(10, 0.0)
        assert np.allclose(probs, 0.1)

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            zipf_probabilities(0, 1.0)
        with pytest.raises(ConfigurationError):
            zipf_probabilities(10, -1.0)


class TestGenerateKeys:
    def test_distinct_and_positive(self):
        keys = generate_keys(1000, seed=1)
        assert len(set(int(k) for k in keys)) == 1000
        assert all(1 <= int(k) < 2**32 for k in keys)

    def test_deterministic(self):
        assert list(generate_keys(50, seed=2)) == list(generate_keys(50, seed=2))

    def test_different_seeds_differ(self):
        assert list(generate_keys(50, seed=1)) != list(generate_keys(50, seed=2))

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            generate_keys(0, seed=1)


class TestZipfTrace:
    def test_exact_statistics(self):
        trace = zipf_trace(num_packets=5000, num_flows=700, skew=1.0, seed=3)
        assert len(trace) == 5000
        assert len(set(trace)) == 700

    def test_every_flow_present(self):
        trace = zipf_trace(num_packets=1000, num_flows=1000, skew=1.5, seed=4)
        assert len(set(trace)) == 1000

    def test_skew_produces_heavy_head(self):
        trace = zipf_trace(num_packets=20000, num_flows=500, skew=1.2, seed=5)
        from collections import Counter

        counts = sorted(Counter(trace).values(), reverse=True)
        top10_share = sum(counts[:10]) / len(trace)
        assert top10_share > 0.3

    def test_deterministic(self):
        a = zipf_trace(1000, 100, 1.0, seed=6)
        b = zipf_trace(1000, 100, 1.0, seed=6)
        assert a == b

    def test_custom_keys(self):
        keys = generate_keys(10, seed=7)
        trace = zipf_trace(100, 10, 1.0, seed=7, keys=keys)
        assert set(trace) == {int(k) for k in keys}

    def test_packets_fewer_than_flows_rejected(self):
        with pytest.raises(ConfigurationError):
            zipf_trace(num_packets=5, num_flows=10, skew=1.0)

    def test_key_length_mismatch_rejected(self):
        keys = generate_keys(5, seed=1)
        with pytest.raises(ConfigurationError):
            zipf_trace(100, 10, 1.0, keys=keys)
