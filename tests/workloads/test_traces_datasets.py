"""Unit tests for the dataset registry and trace generators."""

import pytest

from repro.common.errors import ConfigurationError
from repro.workloads.datasets import (
    CAIDA,
    MAWI,
    TPCDS,
    DatasetSpec,
    get_spec,
    table2_statistics,
)
from repro.workloads.traces import (
    caida_like,
    correlated_pair,
    halves,
    inclusion_split,
    load_trace,
    mawi_like,
    overlap_thirds,
    tpcds_like,
)


class TestDatasetSpecs:
    def test_table2_numbers(self):
        assert CAIDA.packets == 2_472_727
        assert CAIDA.flows == 109_642
        assert MAWI.packets == 2_000_000
        assert MAWI.flows == 200_471
        assert TPCDS.packets == 4_903_874
        assert TPCDS.flows == 1_834

    def test_scaled_shrinks_proportionally(self):
        scaled = CAIDA.scaled(0.1)
        assert scaled.packets == 247_272
        assert scaled.flows == 10_964

    def test_tpcds_keeps_flow_count(self):
        scaled = TPCDS.scaled(0.1)
        assert scaled.flows == 1_834
        assert scaled.packets == 490_387

    def test_scale_bounds(self):
        with pytest.raises(ConfigurationError):
            CAIDA.scaled(0)
        with pytest.raises(ConfigurationError):
            CAIDA.scaled(1.5)

    def test_get_spec_name_normalization(self):
        assert get_spec("CAIDA") is CAIDA
        assert get_spec("tpc-ds") is TPCDS
        assert get_spec("TPC_DS") is TPCDS

    def test_get_spec_unknown(self):
        with pytest.raises(ConfigurationError):
            get_spec("netflix")


class TestTraceGenerators:
    @pytest.mark.parametrize(
        "generator,spec",
        [(caida_like, CAIDA), (mawi_like, MAWI), (tpcds_like, TPCDS)],
    )
    def test_matches_scaled_table2(self, generator, spec):
        scale = 0.005
        trace = generator(scale=scale, seed=0)
        stats = table2_statistics(trace)
        expected = spec.scaled(scale)
        assert stats["packets"] == expected.packets
        assert stats["flows"] == expected.flows
        assert stats["cardinality"] == stats["flows"]

    def test_load_trace_dispatch(self):
        assert load_trace("caida", scale=0.002, seed=1) == caida_like(
            scale=0.002, seed=1
        )

    def test_deterministic_per_seed(self):
        assert caida_like(0.002, seed=5) == caida_like(0.002, seed=5)
        assert caida_like(0.002, seed=5) != caida_like(0.002, seed=6)


class TestSplits:
    def test_halves(self):
        first, second = halves(list(range(10)))
        assert first == list(range(5))
        assert second == list(range(5, 10))

    def test_overlap_thirds_share_middle(self):
        trace = list(range(9))
        left, right = overlap_thirds(trace)
        assert left == list(range(6))
        assert right == list(range(3, 9))

    def test_inclusion_split_is_nested(self):
        trace = list(range(10))
        whole, half = inclusion_split(trace)
        assert whole == trace
        assert half == trace[:5]

    def test_correlated_pair_shares_key_universe(self):
        left, right = correlated_pair("caida", scale=0.002, seed=0)
        overlap = len(set(left) & set(right)) / len(set(left))
        assert overlap > 0.95
        assert len(left) == len(right)
