"""Unit tests for exact ground-truth computation."""

import math

import pytest

from repro.workloads import groundtruth as gt


TRACE = [1, 1, 1, 2, 2, 3]


class TestBasics:
    def test_frequencies(self):
        assert gt.frequencies(TRACE) == {1: 3, 2: 2, 3: 1}

    def test_cardinality(self):
        assert gt.cardinality(TRACE) == 3
        assert gt.cardinality([]) == 0

    def test_heavy_hitters(self):
        freq = gt.frequencies(TRACE)
        assert gt.heavy_hitters(freq, 2) == {1, 2}
        assert gt.heavy_hitters(freq, 4) == set()

    def test_heavy_changers(self):
        changed = gt.heavy_changers({1: 10, 2: 5}, {1: 2, 3: 9}, 5)
        assert changed == {1, 2, 3}
        assert gt.heavy_changers({1: 10}, {1: 10}, 1) == set()

    def test_size_distribution(self):
        assert gt.size_distribution(gt.frequencies(TRACE)) == {3: 1, 2: 1, 1: 1}

    def test_entropy_uniform(self):
        freq = {k: 1 for k in range(8)}
        assert gt.entropy(freq) == pytest.approx(math.log(8))

    def test_entropy_degenerate(self):
        assert gt.entropy({1: 100}) == pytest.approx(0.0)
        assert gt.entropy({}) == 0.0


class TestSetAlgebra:
    def test_union(self):
        union = gt.multiset_union({1: 2, 2: 1}, {2: 3, 4: 1})
        assert union == {1: 2, 2: 4, 4: 1}

    def test_difference_paper_example(self):
        # A = {a,a,b,d}, B = {a,b,b,c} → {a:+1, b:−1, d:+1, c:−1}
        freq_a = {"a": 2, "b": 1, "d": 1}
        freq_b = {"a": 1, "b": 2, "c": 1}
        assert gt.multiset_difference(freq_a, freq_b) == {
            "a": 1,
            "b": -1,
            "d": 1,
            "c": -1,
        }

    def test_difference_drops_zeros(self):
        assert gt.multiset_difference({1: 2}, {1: 2}) == {}

    def test_inner_product(self):
        assert gt.inner_product({1: 2, 2: 3}, {1: 5, 3: 7}) == 10

    def test_inner_product_symmetry(self):
        f, g = {1: 2, 2: 3}, {1: 5, 2: 1, 3: 7}
        assert gt.inner_product(f, g) == gt.inner_product(g, f)

    def test_self_join_is_second_moment(self):
        freq = gt.frequencies(TRACE)
        assert gt.inner_product(freq, freq) == 9 + 4 + 1


class TestTopK:
    def test_ordering_and_ties(self):
        freq = {5: 3, 2: 3, 9: 10, 4: 1}
        top = gt.top_k_keys(freq, 3)
        assert top == [(9, 10), (2, 3), (5, 3)]

    def test_k_larger_than_population(self):
        assert len(gt.top_k_keys({1: 1}, 10)) == 1
