"""Unit tests for trace file I/O."""

import pytest

from repro.common.errors import ConfigurationError
from repro.workloads.io import (
    iter_counts,
    iter_trace,
    read_counts,
    read_trace,
    unit_pairs,
    weighted_inserts,
    write_counts,
    write_trace,
)


class TestKeysFormat:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "trace.txt"
        trace = [1, 2, 2, 3, 999]
        assert write_trace(path, trace) == 5
        assert read_trace(path) == trace

    def test_string_keys(self, tmp_path):
        path = tmp_path / "trace.txt"
        write_trace(path, ["10.0.0.1", "10.0.0.2", "10.0.0.1"])
        assert read_trace(path) == ["10.0.0.1", "10.0.0.2", "10.0.0.1"]

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n1\n\n2\n  \n# tail\n3\n")
        assert read_trace(path) == [1, 2, 3]

    def test_iter_matches_read(self, tmp_path):
        path = tmp_path / "trace.txt"
        write_trace(path, range(100))
        assert list(iter_trace(path)) == read_trace(path)

    def test_trace_feeds_sketch(self, tmp_path, small_config):
        from repro.core import DaVinciSketch

        path = tmp_path / "trace.txt"
        write_trace(path, [5] * 10 + [6] * 3)
        sketch = DaVinciSketch(small_config)
        for key in iter_trace(path):
            sketch.insert(key)
        assert sketch.query(5) == 10


class TestCountsFormat:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "counts.csv"
        counts = {1: 10, 2: 3, "flow-a": 7}
        assert write_counts(path, counts) == 3
        assert read_counts(path) == counts

    def test_duplicate_keys_accumulate(self, tmp_path):
        path = tmp_path / "counts.csv"
        path.write_text("1,5\n1,7\n")
        assert read_counts(path) == {1: 12}

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "counts.csv"
        path.write_text("justakey\n")
        with pytest.raises(ConfigurationError):
            read_counts(path)

    def test_non_integer_count_rejected(self, tmp_path):
        path = tmp_path / "counts.csv"
        path.write_text("1,many\n")
        with pytest.raises(ConfigurationError):
            read_counts(path)

    def test_negative_count_rejected(self, tmp_path):
        path = tmp_path / "counts.csv"
        path.write_text("1,-3\n")
        with pytest.raises(ConfigurationError):
            read_counts(path)

    def test_string_key_with_commas(self, tmp_path):
        # rsplit(',', 1): only the last comma separates the count
        path = tmp_path / "counts.csv"
        path.write_text("a,b,c,4\n")
        assert read_counts(path) == {"a,b,c": 4}

    def test_weighted_inserts(self, small_config):
        from repro.core import DaVinciSketch

        counts = {1: 100, 2: 0, 3: 5}
        sketch = DaVinciSketch(small_config)
        for key, count in weighted_inserts(counts):
            sketch.insert(key, count)
        assert sketch.query(1) == 100
        assert sketch.query(3) == 5
        assert sketch.total_count == 105


class TestStreamingPairs:
    def test_iter_counts_streams_file_order(self, tmp_path):
        path = tmp_path / "counts.csv"
        path.write_text("# header\n1,5\nflow-a,7\n1,2\n2,0\n")
        assert list(iter_counts(path)) == [(1, 5), ("flow-a", 7), (1, 2)]

    def test_iter_counts_agrees_with_read_counts(self, tmp_path):
        path = tmp_path / "counts.csv"
        write_counts(path, {1: 10, 2: 3, "flow-a": 7})
        streamed = {}
        for key, count in iter_counts(path):
            streamed[key] = streamed.get(key, 0) + count
        assert streamed == read_counts(path)

    def test_iter_counts_validates_like_read_counts(self, tmp_path):
        path = tmp_path / "counts.csv"
        path.write_text("1,many\n")
        with pytest.raises(ConfigurationError):
            list(iter_counts(path))
        path.write_text("1,-3\n")
        with pytest.raises(ConfigurationError):
            list(iter_counts(path))

    def test_iter_counts_feeds_insert_batch(self, tmp_path, small_config):
        from repro.core import DaVinciSketch

        path = tmp_path / "counts.csv"
        write_counts(path, {1: 100, 3: 5})
        sketch = DaVinciSketch(small_config)
        sketch.insert_batch(iter_counts(path))
        assert sketch.query(1) == 100
        assert sketch.query(3) == 5

    def test_unit_pairs_adapts_key_streams(self, small_config):
        from repro.core import DaVinciSketch

        trace = [5] * 10 + [6] * 3
        sketch = DaVinciSketch(small_config)
        sketch.insert_batch(unit_pairs(trace))
        assert sketch.query(5) == 10
        assert sketch.query(6) == 3
        assert sketch.total_count == 13
