"""Unit tests for result export (CSV / JSON)."""

import csv
import json

from repro.experiments.export import (
    cases_to_csv,
    sweep_to_csv,
    sweep_to_dict,
    sweep_to_json,
    table_to_csv,
)
from repro.experiments.harness import SweepResult
from repro.experiments.overall import CaseResult


def make_sweep() -> SweepResult:
    result = SweepResult("frequency-are", "caida", "ARE")
    result.record("DaVinci", 4.0, 0.1)
    result.record("DaVinci", 8.0, 0.05)
    result.record("CM", 4.0, 1.0)
    result.record("CM", 8.0, 0.5)
    return result


class TestSweepExport:
    def test_to_dict_structure(self):
        data = sweep_to_dict(make_sweep())
        assert data["experiment"] == "frequency-are"
        assert data["memories_kb"] == [4.0, 8.0]
        assert data["series"]["DaVinci"]["8.0"] == 0.05

    def test_to_json_roundtrips(self, tmp_path):
        path = tmp_path / "sweep.json"
        sweep_to_json(make_sweep(), path)
        data = json.loads(path.read_text())
        assert data["series"]["CM"]["4.0"] == 1.0

    def test_to_csv(self, tmp_path):
        path = tmp_path / "sweep.csv"
        assert sweep_to_csv(make_sweep(), path) == 2
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == [
            "experiment",
            "dataset",
            "metric",
            "algorithm",
            "4KB",
            "8KB",
        ]
        assert rows[1][3] == "DaVinci"
        assert float(rows[1][5]) == 0.05

    def test_csv_missing_cells_blank(self, tmp_path):
        result = SweepResult("x", "ds", "M")
        result.record("A", 4.0, 1.0)
        result.record("B", 8.0, 2.0)
        path = tmp_path / "sparse.csv"
        sweep_to_csv(result, path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[1][5] == ""  # A has no 8KB point


class TestCaseExport:
    def test_cases_to_csv(self, tmp_path):
        cases = [
            CaseResult(1, 2.0, 8.0, 5.0, 20.0, 1.0, 0.5),
            CaseResult(2, 4.0, 12.0, 4.0, 18.0, 1.2, 0.4),
        ]
        path = tmp_path / "cases.csv"
        assert cases_to_csv(cases, path) == 2
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["case"] == "1"
        import pytest

        assert float(rows[1]["throughput_ratio"]) == pytest.approx(3.0)


class TestTableExport:
    def test_table_to_csv(self, tmp_path):
        rows = [
            {"case": 1, "frequency": 0.5},
            {"case": 2, "frequency": 0.2},
        ]
        path = tmp_path / "table.csv"
        assert table_to_csv(rows, path) == 2
        with open(path) as handle:
            parsed = list(csv.DictReader(handle))
        assert parsed[1]["frequency"] == "0.2"

    def test_empty_table(self, tmp_path):
        path = tmp_path / "empty.csv"
        assert table_to_csv([], path) == 0
        assert path.read_text() == ""
