"""Unit tests for the one-call evaluation suite."""

import pytest

from repro.experiments.harness import SweepResult
from repro.experiments.suite import (
    FULL_PANEL_ORDER,
    davinci_wins,
    run_full_evaluation,
)


class TestRunFullEvaluation:
    def test_subset_runs_and_reports_progress(self):
        seen = []
        results = run_full_evaluation(
            dataset="caida",
            scale=0.003,
            memories_kb=(2.0,),
            panels=("frequency", "cardinality"),
            progress=seen.append,
        )
        assert seen == ["frequency", "cardinality"]
        assert set(results) == {"frequency", "cardinality"}
        assert all(isinstance(r, SweepResult) for r in results.values())

    def test_unknown_panel_rejected(self):
        with pytest.raises(ValueError):
            run_full_evaluation(panels=("bogus",))

    def test_panel_order_is_complete(self):
        assert len(FULL_PANEL_ORDER) == 10  # the paper's ten panels


class TestDavinciWins:
    def test_error_metric_lower_wins(self):
        result = SweepResult("x", "ds", "ARE")
        result.record("DaVinci", 4.0, 0.1)
        result.record("CM", 4.0, 0.5)
        assert davinci_wins({"x": result}) == {"x": True}

    def test_f1_metric_higher_wins(self):
        result = SweepResult("hh", "ds", "F1")
        result.record("DaVinci", 4.0, 0.99)
        result.record("HashPipe", 4.0, 0.95)
        assert davinci_wins({"hh": result}) == {"hh": True}

    def test_loss_detected(self):
        result = SweepResult("hh", "ds", "F1")
        result.record("DaVinci", 4.0, 0.9)
        result.record("HashPipe", 4.0, 0.99)
        assert davinci_wins({"hh": result}) == {"hh": False}

    def test_empty_result(self):
        assert davinci_wins({"x": SweepResult("x", "ds", "ARE")}) == {"x": False}


class TestSecondMoment:
    def test_second_moment_matches_truth(self, small_config):
        from repro.core import DaVinciSketch

        sketch = DaVinciSketch(small_config)
        sketch.insert_all([1] * 30 + [2] * 20 + [3] * 10)
        true_f2 = 30**2 + 20**2 + 10**2
        assert sketch.second_moment() == pytest.approx(true_f2, rel=0.1)
