"""Unit tests for the command-line experiment runner."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_figure_defaults(self):
        args = build_parser().parse_args(["figure", "frequency"])
        assert args.panel == "frequency"
        assert args.dataset == "caida"
        assert args.memories == [2, 4, 6, 8]

    def test_memories_parsing(self):
        args = build_parser().parse_args(
            ["figure", "union", "--memories", "1.5,3"]
        )
        assert args.memories == [1.5, 3.0]

    def test_unknown_panel_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "bogus"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_figure_frequency(self, capsys):
        code = main(
            [
                "figure",
                "frequency",
                "--scale",
                "0.003",
                "--memories",
                "2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "DaVinci" in output
        assert "2KB" in output

    def test_figure_difference_mode(self, capsys):
        code = main(
            [
                "figure",
                "difference",
                "--scale",
                "0.003",
                "--memories",
                "2",
                "--mode",
                "inclusion",
            ]
        )
        assert code == 0
        assert "difference-inclusion" in capsys.readouterr().out

    def test_figure1(self, capsys):
        assert main(["figure1", "--scale", "0.003"]) == 0
        output = capsys.readouterr().out
        assert "caida" in output and "tpcds" in output

    def test_overall(self, capsys):
        code = main(["overall", "--scale", "0.003", "--cases", "2,4"])
        assert code == 0
        assert "speedup" in capsys.readouterr().out

    def test_table3(self, capsys):
        code = main(["table3", "--scale", "0.003", "--cases", "2,4"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Freq ARE" in output and "Join RE" in output
