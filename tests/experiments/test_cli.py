"""Unit tests for the command-line experiment runner."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_figure_defaults(self):
        args = build_parser().parse_args(["figure", "frequency"])
        assert args.panel == "frequency"
        assert args.dataset == "caida"
        assert args.memories == [2, 4, 6, 8]

    def test_memories_parsing(self):
        args = build_parser().parse_args(
            ["figure", "union", "--memories", "1.5,3"]
        )
        assert args.memories == [1.5, 3.0]

    def test_unknown_panel_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "bogus"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_figure_frequency(self, capsys):
        code = main(
            [
                "figure",
                "frequency",
                "--scale",
                "0.003",
                "--memories",
                "2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "DaVinci" in output
        assert "2KB" in output

    def test_figure_difference_mode(self, capsys):
        code = main(
            [
                "figure",
                "difference",
                "--scale",
                "0.003",
                "--memories",
                "2",
                "--mode",
                "inclusion",
            ]
        )
        assert code == 0
        assert "difference-inclusion" in capsys.readouterr().out

    def test_figure1(self, capsys):
        assert main(["figure1", "--scale", "0.003"]) == 0
        output = capsys.readouterr().out
        assert "caida" in output and "tpcds" in output

    def test_overall(self, capsys):
        code = main(["overall", "--scale", "0.003", "--cases", "2,4"])
        assert code == 0
        assert "speedup" in capsys.readouterr().out

    def test_table3(self, capsys):
        code = main(["table3", "--scale", "0.003", "--cases", "2,4"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Freq ARE" in output and "Join RE" in output


class TestMetricsFlag:
    def test_metrics_snapshot_artifact(self, tmp_path):
        """--metrics arms collection for the run and writes the snapshot."""
        import json

        from repro.observability import metrics as obs
        from repro.observability.metrics import MetricsRegistry

        target = tmp_path / "metrics.json"
        previous_registry = obs.set_default_registry(MetricsRegistry())
        try:
            assert obs.ENABLED is False  # arming is scoped to the run
            code = main(
                [
                    "figure",
                    "frequency",
                    "--scale",
                    "0.003",
                    "--memories",
                    "2",
                    "--metrics",
                    str(target),
                ]
            )
        finally:
            obs.set_default_registry(previous_registry)
        assert code == 0
        assert obs.ENABLED is False  # flag restored after the run
        snap = json.loads(target.read_text(encoding="utf-8"))
        assert set(snap) == {"counters", "gauges", "histograms"}
        counters = snap["counters"]
        assert counters["davinci_inserts_total"] > 0
        assert (
            counters["davinci_items_total"]
            >= counters["davinci_inserts_total"]
        )

    def test_metrics_dash_writes_stdout(self, capsys):
        import json

        from repro.observability import metrics as obs
        from repro.observability.metrics import MetricsRegistry

        previous_registry = obs.set_default_registry(MetricsRegistry())
        try:
            code = main(
                [
                    "figure",
                    "frequency",
                    "--scale",
                    "0.003",
                    "--memories",
                    "2",
                    "--metrics",
                    "-",
                ]
            )
        finally:
            obs.set_default_registry(previous_registry)
        assert code == 0
        output = capsys.readouterr().out
        # the snapshot JSON object is printed after the report text
        payload = output[output.index('{\n  "counters"'):]
        snap = json.loads(payload)
        assert snap["counters"]["davinci_inserts_total"] > 0

    def test_without_flag_nothing_is_written(self):
        from repro.observability import metrics as obs
        from repro.observability.metrics import MetricsRegistry

        previous_registry = obs.set_default_registry(MetricsRegistry())
        try:
            code = main(
                ["figure", "frequency", "--scale", "0.003", "--memories", "2"]
            )
            snap = obs.snapshot()
        finally:
            obs.set_default_registry(previous_registry)
        assert code == 0
        assert all(value == 0 for value in snap["counters"].values())


class TestShardedSubcommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["sharded"])
        assert args.shards == 4
        assert args.durable_root is None
        assert args.metrics is None

    def test_runs_and_reports(self, capsys):
        code = main(["sharded", "--shards", "2", "--scale", "0.002"])
        out = capsys.readouterr().out
        assert code == 0
        assert "worker processes" in out
        assert "mode=additive" in out

    def test_durable_root_and_metrics(self, tmp_path, capsys):
        snapshot_path = tmp_path / "metrics.json"
        code = main(
            [
                "sharded",
                "--shards",
                "2",
                "--scale",
                "0.002",
                "--durable-root",
                str(tmp_path / "shards"),
                "--metrics",
                str(snapshot_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "durable shard checkpoints" in out
        import json as _json

        snap = _json.loads(snapshot_path.read_text())
        counters = snap["counters"]
        routed = [
            value
            for name, value in counters.items()
            if name.startswith("sharded_shard_items_total")
        ]
        assert sum(routed) > 0


class TestServeAndPush:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 0
        assert args.duration is None

    def test_push_requires_a_port(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["push"])

    def test_serve_runs_for_a_bounded_duration(self, capsys):
        code = main(["serve", "--duration", "0.2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "serving sketch aggregation on 127.0.0.1:" in out
        assert "drained and stopped" in out

    def test_push_roundtrip_against_a_live_server(self, capsys):
        from repro.service import SketchServer

        server = SketchServer()
        server.start()
        try:
            _, port = server.address
            code = main(
                [
                    "push",
                    "--port",
                    str(port),
                    "--scale",
                    "0.002",
                    "--parts",
                    "2",
                    "--task",
                    "cardinality",
                ]
            )
            assert code == 0
            out = capsys.readouterr().out
            assert "pushed part 1/2: seq=1" in out
            assert "pushed part 2/2: seq=2" in out
            assert "cardinality:" in out
            assert server.aggregate_names() == ("default",)
        finally:
            server.close()


class TestTraceFlag:
    def test_trace_artifact_captures_drain_events(self, tmp_path):
        import json

        from repro.observability.tracing import (
            TraceSink,
            set_default_trace_sink,
        )

        target = tmp_path / "trace.jsonl"
        previous = set_default_trace_sink(TraceSink())
        try:
            code = main(
                ["serve", "--duration", "0.1", "--trace", str(target)]
            )
        finally:
            set_default_trace_sink(previous)
        assert code == 0
        events = [
            json.loads(line)
            for line in target.read_text(encoding="utf-8").splitlines()
        ]
        names = [event["name"] for event in events]
        assert "service.drain.begin" in names
        assert "service.drain.end" in names

    def test_trace_dash_writes_stdout(self, capsys):
        from repro.observability.tracing import (
            TraceSink,
            set_default_trace_sink,
        )

        previous = set_default_trace_sink(TraceSink())
        try:
            code = main(["serve", "--duration", "0.1", "--trace", "-"])
        finally:
            set_default_trace_sink(previous)
        assert code == 0
        out = capsys.readouterr().out
        assert '"name":"service.drain.begin"' in out
