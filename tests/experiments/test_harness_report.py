"""Unit tests for the experiment harness and text reporting."""

import pytest

from repro.experiments.harness import (
    SweepResult,
    build_davinci,
    fill,
    fill_pairs,
    heavy_threshold,
    run_sweep,
)
from repro.experiments.overall import CaseResult
from repro.experiments.report import (
    format_value,
    render_cases,
    render_distribution_curves,
    render_sweep,
    render_table3,
)


class TestSweepResult:
    def test_record_and_access(self):
        result = SweepResult("freq", "caida", "ARE")
        result.record("A", 4.0, 0.5)
        result.record("B", 4.0, 0.2)
        result.record("A", 8.0, 0.1)
        assert result.algorithms() == ["A", "B"]
        assert result.memories() == [4.0, 8.0]

    def test_best_algorithm(self):
        result = SweepResult("freq", "caida", "ARE")
        result.record("A", 4.0, 0.5)
        result.record("B", 4.0, 0.2)
        assert result.best_algorithm_at(4.0) == "B"
        assert result.best_algorithm_at(4.0, lower_is_better=False) == "A"
        assert result.best_algorithm_at(99.0) is None


class TestRunSweep:
    def test_grid_evaluation(self):
        calls = []

        def make(name):
            def evaluate(memory_kb):
                calls.append((name, memory_kb))
                return memory_kb * 2

            return evaluate

        result = run_sweep(
            "exp", "ds", "X", {"a": make("a"), "b": make("b")}, memories_kb=(1, 2)
        )
        assert result.series["a"] == {1: 2, 2: 4}
        assert len(calls) == 4


class TestHarnessHelpers:
    def test_build_davinci_size(self):
        sketch = build_davinci(8.0)
        assert sketch.memory_bytes() == pytest.approx(8 * 1024, rel=0.1)

    def test_fill_is_fluent(self):
        sketch = fill(build_davinci(4.0), [1, 2, 3])
        assert sketch.total_count == 3

    def test_fill_pairs_uses_the_batch_path(self):
        sketch = fill_pairs(build_davinci(4.0), [(1, 10), (2, 5), (1, 1)])
        assert sketch.total_count == 16
        assert sketch.query(1) == 11

    def test_fill_pairs_falls_back_to_per_pair_inserts(self):
        from repro.sketches import CountMinSketch

        sketch = fill_pairs(
            CountMinSketch.from_memory(4096, seed=3), [(1, 10), (2, 5)]
        )
        assert sketch.query(1) >= 10

    def test_heavy_threshold(self):
        assert heavy_threshold(100_000, 0.001) == 100
        assert heavy_threshold(10, 0.0001) == 1  # floor of 1


class TestFormatting:
    def test_format_value_ranges(self):
        assert format_value(0) == "0"
        assert format_value(123456) == "123,456"
        assert format_value(12.34) == "12.3"
        assert format_value(0.1234) == "0.123"
        assert format_value(0.0001234) == "1.23e-04"
        assert format_value(float("nan")) == "nan"
        assert format_value(float("inf")) == "inf"

    def test_render_sweep_contains_all_cells(self):
        result = SweepResult("freq", "caida", "ARE")
        result.record("DaVinci", 4.0, 0.5)
        result.record("CM", 4.0, 1.5)
        text = render_sweep(result)
        assert "DaVinci" in text and "CM" in text
        assert "4KB" in text
        assert "0.500" in text

    def test_render_sweep_missing_cell(self):
        result = SweepResult("freq", "caida", "ARE")
        result.record("A", 4.0, 0.5)
        result.record("B", 8.0, 0.2)
        assert "-" in render_sweep(result)

    def test_render_cases(self):
        case = CaseResult(
            case=1,
            davinci_kb=10.0,
            csoa_kb=40.0,
            davinci_ama=5.0,
            csoa_ama=20.0,
            davinci_mops=1.0,
            csoa_mops=0.25,
        )
        text = render_cases([case])
        assert "25.0%" in text  # memory percentage
        assert "4.0x" in text  # speedup

    def test_case_result_properties(self):
        case = CaseResult(1, 10.0, 40.0, 5.0, 20.0, 1.0, 0.25)
        assert case.throughput_ratio == pytest.approx(4.0)
        assert case.memory_percentage == pytest.approx(0.25)
        assert case.ama_percentage == pytest.approx(0.25)

    def test_render_table3(self):
        rows = [
            {
                "case": 1.0,
                "memory_kb": 4.0,
                "frequency": 0.5,
                "heavy_hitter": 0.9,
                "heavy_changer": 0.8,
                "cardinality": 0.01,
                "distribution": 0.2,
                "entropy": 0.05,
                "union": 0.4,
                "difference": 0.6,
                "inner_join": 0.001,
            }
        ]
        text = render_table3(rows)
        assert "Freq ARE" in text
        assert "Join RE" in text

    def test_render_distribution_curves(self):
        curves = {"caida": [(1, 0.5), (2, 0.8), (100, 1.0)]}
        text = render_distribution_curves(curves)
        assert "caida" in text
        assert "1.00" in text
