"""Smoke + shape tests for the overall-performance (Fig. 8 / Table III) runs."""

import math

from repro.experiments.overall import overall_performance, table3_accuracy

SCALE = 0.004
CASES = (2.0, 6.0)


class TestOverallPerformance:
    def test_structure_and_shape(self):
        results = overall_performance(scale=SCALE, cases_kb=CASES, seed=1)
        assert [case.case for case in results] == [1, 2]
        for case in results:
            # DaVinci is the unified structure: less memory at matched
            # accuracy, fewer accesses, higher throughput.
            assert case.davinci_kb <= case.csoa_kb
            assert case.davinci_ama < case.csoa_ama
            assert case.throughput_ratio > 1.0
            assert 0 < case.memory_percentage <= 1.0
            assert math.isfinite(case.davinci_mops)


class TestTable3:
    def test_all_nine_tasks_reported(self):
        rows = table3_accuracy(scale=SCALE, cases_kb=CASES, seed=1)
        assert len(rows) == 2
        expected_columns = {
            "case",
            "memory_kb",
            "frequency",
            "heavy_hitter",
            "heavy_changer",
            "cardinality",
            "distribution",
            "entropy",
            "union",
            "difference",
            "inner_join",
        }
        for row in rows:
            assert set(row) == expected_columns
            assert all(math.isfinite(value) for value in row.values())
            assert 0.0 <= row["heavy_hitter"] <= 1.0
            assert 0.0 <= row["heavy_changer"] <= 1.0

    def test_accuracy_improves_with_memory(self):
        rows = table3_accuracy(scale=SCALE, cases_kb=CASES, seed=1)
        small, large = rows
        # the frequency/union errors shrink as the case memory grows
        assert large["frequency"] <= small["frequency"]
        assert large["union"] <= small["union"]
