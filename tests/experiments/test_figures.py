"""Smoke + shape tests for the figure runners (tiny scale).

These verify that every panel runs end-to-end, produces finite metrics for
every algorithm, and — at the largest memory point — reproduces the
paper's qualitative ordering where it is robust (e.g. DaVinci beats the
plain CM/CU on frequency, invertible sketches beat nothing... etc.).
Tight quantitative claims live in the benchmarks, which run at the
figures' real scale.
"""

import math

import pytest

from repro.experiments import (
    figure1_flow_distribution,
    figure_cardinality,
    figure_difference,
    figure_distribution,
    figure_entropy,
    figure_frequency,
    figure_heavy_changers,
    figure_heavy_hitters,
    figure_inner_join,
    figure_union,
)

SCALE = 0.004
MEMORIES = (2.0, 4.0)


def assert_all_finite(result):
    for algorithm, series in result.series.items():
        for memory, value in series.items():
            assert math.isfinite(value), f"{algorithm}@{memory}: {value}"


class TestFigure1:
    def test_cdf_curves(self):
        curves = figure1_flow_distribution(scale=SCALE)
        assert set(curves) == {"caida", "mawi", "tpcds"}
        for curve in curves.values():
            assert curve[-1][1] == pytest.approx(1.0)
            cdf_values = [point[1] for point in curve]
            assert cdf_values == sorted(cdf_values)

    def test_skew_visible(self):
        curves = figure1_flow_distribution(scale=SCALE)
        # most flows are small: CDF at a modest size is already high
        caida = curves["caida"]
        at_ten = max(cdf for size, cdf in caida if size <= 10)
        assert at_ten > 0.5


class TestFrequencyPanel:
    def test_runs_and_davinci_beats_cm(self):
        result = figure_frequency(scale=SCALE, memories_kb=MEMORIES)
        assert_all_finite(result)
        top_memory = max(MEMORIES)
        assert (
            result.series["DaVinci"][top_memory]
            < result.series["CM"][top_memory]
        )

    def test_error_decreases_with_memory(self):
        result = figure_frequency(scale=SCALE, memories_kb=MEMORIES)
        for algorithm in ("DaVinci", "CM", "CU"):
            series = result.series[algorithm]
            assert series[max(MEMORIES)] <= series[min(MEMORIES)] * 1.2

    def test_aae_metric(self):
        result = figure_frequency(scale=SCALE, memories_kb=(2.0,), metric="aae")
        assert result.metric == "AAE"
        assert_all_finite(result)


class TestHeavyPanels:
    def test_heavy_hitters_runs(self):
        result = figure_heavy_hitters(scale=SCALE, memories_kb=MEMORIES)
        assert_all_finite(result)
        for series in result.series.values():
            assert all(0.0 <= value <= 1.0 for value in series.values())

    def test_heavy_changers_runs(self):
        result = figure_heavy_changers(scale=SCALE, memories_kb=MEMORIES)
        assert_all_finite(result)
        assert "DaVinci" in result.series


class TestScalarPanels:
    def test_cardinality(self):
        result = figure_cardinality(scale=SCALE, memories_kb=MEMORIES)
        assert_all_finite(result)
        assert result.series["DaVinci"][max(MEMORIES)] < 0.2

    def test_distribution(self):
        result = figure_distribution(scale=SCALE, memories_kb=MEMORIES)
        assert_all_finite(result)
        assert result.series["DaVinci"][max(MEMORIES)] < 1.0

    def test_entropy(self):
        result = figure_entropy(scale=SCALE, memories_kb=MEMORIES)
        assert_all_finite(result)
        assert result.series["DaVinci"][max(MEMORIES)] < 0.5


class TestSetOperationPanels:
    def test_union(self):
        result = figure_union(scale=SCALE, memories_kb=MEMORIES)
        assert_all_finite(result)
        top = max(MEMORIES)
        # DaVinci union should beat the non-keyed Fermat at the top point
        assert result.series["DaVinci"][top] < result.series["Fermat"][top]

    @pytest.mark.parametrize("mode", ["overlap", "inclusion"])
    def test_difference(self, mode):
        result = figure_difference(scale=SCALE, memories_kb=MEMORIES, mode=mode)
        assert_all_finite(result)
        assert result.experiment == f"difference-{mode}"

    def test_difference_bad_mode(self):
        with pytest.raises(ValueError):
            figure_difference(scale=SCALE, memories_kb=(2.0,), mode="bogus")

    def test_inner_join(self):
        result = figure_inner_join(scale=SCALE, memories_kb=MEMORIES)
        assert_all_finite(result)
        top = max(MEMORIES)
        assert result.series["DaVinci"][top] < 0.2
