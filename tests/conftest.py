"""Shared fixtures: deterministic small traces and sketch configurations.

Everything here is deliberately tiny — unit tests should run in
milliseconds; the scaled paper experiments live in ``benchmarks/``.
"""

from __future__ import annotations

import faulthandler
import os
import random
from collections import Counter
from typing import Dict, List

import pytest

from repro.core import DaVinciConfig, DaVinciSketch

# Dependency-free hang watchdog for the networked/multiprocess suites:
# REPRO_TEST_WATCHDOG=<seconds> dumps every thread's traceback and
# aborts the run if the whole session exceeds the bound (CI sets it so
# a wedged socket test fails with stacks instead of a 6h timeout; the
# per-test pytest-timeout plugin is CI-only and not assumed locally).
_WATCHDOG_SECONDS = os.environ.get("REPRO_TEST_WATCHDOG")
if _WATCHDOG_SECONDS:
    faulthandler.dump_traceback_later(
        float(_WATCHDOG_SECONDS), exit=True
    )


@pytest.fixture
def small_config() -> DaVinciConfig:
    """A tiny but fully functional DaVinci shape for unit tests."""
    return DaVinciConfig(
        fp_buckets=16,
        fp_entries=4,
        ef_level_widths=(256, 64),
        ef_level_bits=(4, 8),
        ifp_rows=3,
        ifp_width=64,
        lambda_evict=8.0,
        filter_threshold=10,
        seed=7,
    )


@pytest.fixture
def sketch(small_config) -> DaVinciSketch:
    """An empty sketch with the small config."""
    return DaVinciSketch(small_config)


def make_zipf_stream(
    num_keys: int, num_items: int, skew: float = 1.1, seed: int = 42
) -> List[int]:
    """A skewed stream over keys ``1..num_keys`` (pure-random, no numpy)."""
    rng = random.Random(seed)
    keys = list(range(1, num_keys + 1))
    weights = [1.0 / (rank ** skew) for rank in range(1, num_keys + 1)]
    return rng.choices(keys, weights=weights, k=num_items)


@pytest.fixture
def zipf_stream() -> List[int]:
    """A 5000-item stream over 400 keys with realistic skew."""
    return make_zipf_stream(num_keys=400, num_items=5000)


@pytest.fixture
def zipf_truth(zipf_stream) -> Dict[int, int]:
    """Exact frequencies of :func:`zipf_stream`."""
    return dict(Counter(zipf_stream))


@pytest.fixture
def loaded_sketch(small_config, zipf_stream) -> DaVinciSketch:
    """A sketch that has absorbed the zipf stream."""
    sk = DaVinciSketch(small_config)
    sk.insert_all(zipf_stream)
    return sk
