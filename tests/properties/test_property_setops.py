"""Properties of union/difference that the sharded merge tree relies on.

Three pins (the third is what makes multi-shard aggregation trustworthy):

1. **Query additivity** — ``union(a, b).query(k)`` equals the sum of the
   per-input queries within the additive-mode tolerance (exactly, when
   decoding completes — the union query literally sums the three parts).
2. **Byte-associativity on disjoint inputs** — for key-disjoint sketches
   (what :class:`~repro.runtime.sharded.ShardRouter` produces), a
   fold-left and a balanced merge tree yield ``to_state()``-identical
   results, for any grouping and shard count.  This is what lets the
   sharded runtime merge in whatever order workers finish.
3. **Difference metadata round-trip** — the ``ecnt``/``flag`` provenance
   that difference writes into each FP bucket survives a wire-format-v2
   round-trip (the signed path exercises serialization's signed-count
   validation).
"""

import functools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DaVinciConfig, DaVinciSketch
from repro.core.serialization import from_wire, to_wire
from repro.core.setops import difference, union
from repro.runtime.sharded import ShardRouter, merge_tree


def make_config(seed: int = 11) -> DaVinciConfig:
    return DaVinciConfig(
        fp_buckets=8,
        fp_entries=4,
        ef_level_widths=(128, 32),
        ef_level_bits=(4, 8),
        ifp_rows=3,
        ifp_width=32,
        seed=seed,
    )


keys = st.integers(min_value=1, max_value=400)
counts = st.integers(min_value=1, max_value=30)
pair_streams = st.lists(st.tuples(keys, counts), min_size=0, max_size=200)


def build(config, pairs):
    sketch = DaVinciSketch(config)
    if pairs:
        sketch.insert_batch(pairs, chunk_size=64)
    return sketch


# --------------------------------------------------------------------- #
# 1. query additivity
# --------------------------------------------------------------------- #
@settings(max_examples=40, deadline=None)
@given(left=pair_streams, right=pair_streams)
def test_union_query_is_sum_of_per_input_queries(left, right):
    config = make_config()
    a, b = build(config, left), build(config, right)
    merged = union(a, b)
    sampled = {key for key, _ in (left + right)[:50]} | {1, 7, 399}
    # The sketch is large relative to these streams, so every part is
    # essentially exact and the additive union query must equal the sum
    # of the per-input queries exactly; the threshold term is the
    # worst-case slack the paper's additive mode allows when the filter
    # saturates (never reached at this load, but pinned as the bound).
    tolerance = 2 * config.filter_threshold
    for key in sampled:
        assert abs(merged.query(key) - (a.query(key) + b.query(key))) <= (
            tolerance
        )


@settings(max_examples=20, deadline=None)
@given(left=pair_streams, right=pair_streams)
def test_union_total_count_and_mode(left, right):
    config = make_config()
    merged = union(build(config, left), build(config, right))
    assert merged.mode == "additive"
    assert merged.total_count == sum(c for _, c in left) + sum(
        c for _, c in right
    )


# --------------------------------------------------------------------- #
# 2. byte-associativity over router-partitioned inputs
# --------------------------------------------------------------------- #
@settings(max_examples=25, deadline=None)
@given(
    stream=st.lists(st.tuples(keys, counts), min_size=1, max_size=300),
    num_shards=st.integers(min_value=2, max_value=6),
)
def test_union_fold_left_equals_merge_tree_on_partitions(stream, num_shards):
    config = make_config()
    router = ShardRouter(num_shards)
    shards = [
        build(config, part) for part in router.partition_pairs(stream)
    ]
    fold_left = functools.reduce(union, shards)
    tree = merge_tree(list(shards))
    assert fold_left.to_state() == tree.to_state()


@settings(max_examples=15, deadline=None)
@given(
    stream=st.lists(st.tuples(keys, counts), min_size=1, max_size=300),
)
def test_union_grouping_independent_on_partitions(stream):
    """((a∪b)∪(c∪d)) == (((a∪b)∪c)∪d) byte-for-byte on disjoint inputs."""
    config = make_config()
    router = ShardRouter(4)
    a, b, c, d = [
        build(config, part) for part in router.partition_pairs(stream)
    ]
    balanced = union(union(a, b), union(c, d))
    skewed = union(union(union(a, b), c), d)
    assert balanced.to_state() == skewed.to_state()


# --------------------------------------------------------------------- #
# 3. difference metadata survives wire v2
# --------------------------------------------------------------------- #
@settings(max_examples=25, deadline=None)
@given(left=pair_streams, right=pair_streams)
def test_difference_bucket_metadata_round_trips_wire_v2(left, right):
    config = make_config()
    delta = difference(build(config, left), build(config, right))
    rebuilt = from_wire(to_wire(delta, "sha256"))
    assert rebuilt.mode == "signed"
    assert rebuilt.to_state() == delta.to_state()
    for mine, theirs in zip(delta.fp.buckets, rebuilt.fp.buckets):
        assert theirs.ecnt == mine.ecnt
        assert theirs.flag == mine.flag
        assert theirs.entries == mine.entries
