"""Property-based tests for sketch serialization: lossless round trips."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DaVinciConfig, DaVinciSketch, from_state, to_state

streams = st.lists(
    st.integers(min_value=1, max_value=200), min_size=0, max_size=400
)


def make_sketch(seed: int = 5) -> DaVinciSketch:
    config = DaVinciConfig(
        fp_buckets=8,
        fp_entries=4,
        ef_level_widths=(128, 32),
        ef_level_bits=(4, 8),
        ifp_rows=3,
        ifp_width=32,
        filter_threshold=10,
        seed=seed,
    )
    return DaVinciSketch(config)


class TestSerializationProperties:
    @given(stream=streams)
    @settings(max_examples=40, deadline=None)
    def test_queries_identical_after_roundtrip(self, stream):
        sketch = make_sketch()
        sketch.insert_all(stream)
        twin = from_state(json.loads(json.dumps(to_state(sketch))))
        for key in set(stream) | {9999}:
            assert twin.query(key) == sketch.query(key)

    @given(stream=streams)
    @settings(max_examples=30, deadline=None)
    def test_state_is_json_stable(self, stream):
        """Serializing the deserialized sketch reproduces the same state."""
        sketch = make_sketch()
        sketch.insert_all(stream)
        once = to_state(sketch)
        twice = to_state(from_state(once))
        assert json.dumps(once, sort_keys=True) == json.dumps(
            twice, sort_keys=True
        )

    @given(left=streams, right=streams)
    @settings(max_examples=25, deadline=None)
    def test_setops_commute_with_serialization(self, left, right):
        """union(deser(a), deser(b)) answers like union(a, b)."""
        a, b = make_sketch(), make_sketch()
        a.insert_all(left)
        b.insert_all(right)
        direct = a.union(b)
        via_wire = from_state(to_state(a)).union(from_state(to_state(b)))
        for key in (set(left) | set(right)) or {1}:
            assert via_wire.query(key) == direct.query(key)
