"""Property: ``insert_batch`` is state-equivalent to the sequential loop.

Hypothesis drives randomized streams (keys, weights, chunk sizes) through
both ingestion paths and requires the serialized states to be identical —
the strongest possible equivalence (FP entry order, eviction flags, EF
counters and IFP residues all included), not just query agreement.
"""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DaVinciConfig, DaVinciSketch
from repro.core.serialization import to_state

keys = st.integers(min_value=1, max_value=60)
counts = st.integers(min_value=1, max_value=40)
pair_streams = st.lists(st.tuples(keys, counts), min_size=0, max_size=250)
chunk_sizes = st.integers(min_value=1, max_value=300)


def make_config(seed: int = 11) -> DaVinciConfig:
    return DaVinciConfig(
        fp_buckets=8,
        fp_entries=4,
        ef_level_widths=(128, 32),
        ef_level_bits=(4, 8),
        ifp_rows=3,
        ifp_width=32,
        filter_threshold=10,
        seed=seed,
    )


def sequential_reference(pairs, chunk_size):
    sketch = DaVinciSketch(make_config())
    for start in range(0, len(pairs), chunk_size):
        aggregated = OrderedDict()
        for key, count in pairs[start : start + chunk_size]:
            aggregated[key] = aggregated.get(key, 0) + count
        for key, count in aggregated.items():
            sketch.insert(key, count)
    return sketch


class TestBatchEquivalence:
    @given(pairs=pair_streams, chunk_size=chunk_sizes)
    @settings(max_examples=80, deadline=None)
    def test_state_identical_to_sequential_loop(self, pairs, chunk_size):
        batched = DaVinciSketch(make_config())
        batched.insert_batch(pairs, chunk_size=chunk_size)
        reference = sequential_reference(pairs, chunk_size)
        assert to_state(batched) == to_state(reference)

    @given(stream=st.lists(keys, min_size=0, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_insert_all_mass_and_query_conservation(self, stream):
        batched = DaVinciSketch(make_config())
        batched.insert_all(stream)
        assert batched.total_count == len(stream)
        assert batched.insertions == len(stream)

    @given(pairs=pair_streams, chunk_size=chunk_sizes)
    @settings(max_examples=40, deadline=None)
    def test_batch_never_does_more_accesses(self, pairs, chunk_size):
        batched = DaVinciSketch(make_config())
        batched.insert_batch(pairs, chunk_size=chunk_size)
        reference = sequential_reference(pairs, chunk_size)
        assert batched.memory_accesses == reference.memory_accesses
