"""Property: the array kernel is byte-identical to the object kernel.

``DaVinciSketch(config, kernel="array")`` must produce exactly the state
the object kernel produces for the same input order — FP entry order,
eviction counters and flags, EF level counters and IFP residues all
included.  Hypothesis drives randomized interleavings of ``insert``,
``insert_batch``, ``query`` and ``union`` through both kernels and
requires the serialized states to match byte for byte.

These tests are skipped when numpy is unavailable (the array kernel then
degrades to the object kernel, which ``tests/core/test_kernel.py``
covers separately).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DaVinciConfig, DaVinciSketch
from repro.core.kernel import HAVE_NUMPY
from repro.core.serialization import to_state

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="array kernel needs numpy"
)

keys = st.integers(min_value=1, max_value=60)
counts = st.integers(min_value=1, max_value=40)
pair_streams = st.lists(st.tuples(keys, counts), min_size=0, max_size=250)
chunk_sizes = st.integers(min_value=1, max_value=300)

#: one interleaved operation: ("insert", key, count) applies a single
#: weighted insert, ("batch", pairs, chunk) a batched one, ("query", key)
#: a read (which must not perturb state on either kernel)
operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), keys, counts),
        st.tuples(
            st.just("batch"),
            st.lists(st.tuples(keys, counts), min_size=0, max_size=60),
            st.integers(min_value=1, max_value=64),
        ),
        st.tuples(st.just("query"), keys),
    ),
    min_size=0,
    max_size=25,
)


def make_config(seed: int = 11) -> DaVinciConfig:
    return DaVinciConfig(
        fp_buckets=8,
        fp_entries=4,
        ef_level_widths=(128, 32),
        ef_level_bits=(4, 8),
        ifp_rows=3,
        ifp_width=32,
        filter_threshold=10,
        seed=seed,
    )


def apply_operations(sketch: DaVinciSketch, ops) -> None:
    for op in ops:
        if op[0] == "insert":
            sketch.insert(op[1], op[2])
        elif op[0] == "batch":
            sketch.insert_batch(op[1], chunk_size=op[2])
        else:
            sketch.query(op[1])


class TestKernelParity:
    @given(pairs=pair_streams, chunk_size=chunk_sizes)
    @settings(max_examples=80, deadline=None)
    def test_insert_batch_state_identical(self, pairs, chunk_size):
        obj = DaVinciSketch(make_config(), kernel="object")
        arr = DaVinciSketch(make_config(), kernel="array")
        obj.insert_batch(pairs, chunk_size=chunk_size)
        arr.insert_batch(pairs, chunk_size=chunk_size)
        assert to_state(obj) == to_state(arr)

    @given(ops=operations)
    @settings(max_examples=60, deadline=None)
    def test_interleaved_operations_state_identical(self, ops):
        obj = DaVinciSketch(make_config(), kernel="object")
        arr = DaVinciSketch(make_config(), kernel="array")
        apply_operations(obj, ops)
        apply_operations(arr, ops)
        assert to_state(obj) == to_state(arr)

    @given(left=pair_streams, right=pair_streams, chunk_size=chunk_sizes)
    @settings(max_examples=40, deadline=None)
    def test_union_of_array_built_sketches_identical(
        self, left, right, chunk_size
    ):
        def build(kernel):
            a = DaVinciSketch(make_config(), kernel=kernel)
            b = DaVinciSketch(make_config(), kernel=kernel)
            a.insert_batch(left, chunk_size=chunk_size)
            b.insert_batch(right, chunk_size=chunk_size)
            return a.union(b)

        assert to_state(build("object")) == to_state(build("array"))

    @given(pairs=pair_streams, chunk_size=chunk_sizes)
    @settings(max_examples=40, deadline=None)
    def test_accounting_identical(self, pairs, chunk_size):
        obj = DaVinciSketch(make_config(), kernel="object")
        arr = DaVinciSketch(make_config(), kernel="array")
        obj.insert_batch(pairs, chunk_size=chunk_size)
        arr.insert_batch(pairs, chunk_size=chunk_size)
        assert arr.total_count == obj.total_count
        assert arr.insertions == obj.insertions
        assert arr.memory_accesses == obj.memory_accesses

    @given(
        stream=st.lists(
            st.one_of(
                keys,
                st.text(min_size=0, max_size=6),
                st.binary(min_size=0, max_size=6),
            ),
            min_size=0,
            max_size=120,
        ),
        chunk_size=chunk_sizes,
    )
    @settings(max_examples=40, deadline=None)
    def test_mixed_key_types_state_identical(self, stream, chunk_size):
        obj = DaVinciSketch(make_config(), kernel="object")
        arr = DaVinciSketch(make_config(), kernel="array")
        obj.insert_all(stream, chunk_size=chunk_size)
        arr.insert_all(stream, chunk_size=chunk_size)
        assert to_state(obj) == to_state(arr)
