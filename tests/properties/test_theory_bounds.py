"""Empirical verification of the paper's Section-IV theory.

Reproduces the *Theoretical Contribution*: we check — on concrete streams,
with the actual implementation — that Lemma 1's unbiasedness, Lemma 2's
variance bound, Lemma 3's tail bound and Theorem 1's two-sided frequency
bound all hold.
"""

import random

import pytest

from repro.core import DaVinciConfig, DaVinciSketch
from repro.core.analysis import (
    basic_structure_variance,
    davinci_error_bound,
    empirical_bias,
    empirical_variance,
    exceed_fraction,
    frequency_error_bound,
    l1_norm,
    l2_norm,
)
from repro.core.infrequent_part import InfrequentPart


def populated_ifp(width=64, keys=120, count=5, seed=3):
    """An IFP loaded beyond decoding capacity (exercises the fast query)."""
    ifp = InfrequentPart(rows=3, width=width, seed=seed)
    truth = {}
    rng = random.Random(seed)
    for _ in range(keys):
        key = rng.randrange(1, 2**31)
        value = rng.randrange(1, count * 2)
        ifp.insert(key, value)
        truth[key] = truth.get(key, 0) + value
    return ifp, truth


class TestNorms:
    def test_l2(self):
        assert l2_norm([3, 4]) == pytest.approx(5.0)

    def test_l1(self):
        assert l1_norm([3, -4]) == pytest.approx(7.0)

    def test_variance_bound_formula(self):
        assert basic_structure_variance([3, 4], width=5) == pytest.approx(5.0)

    def test_error_bound_formula(self):
        # √(k/R)·‖F‖₂ with k=4, R=25, ‖F‖₂=5 → (2/5)·5 = 2
        assert frequency_error_bound([3, 4], width=25, k=4) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            basic_structure_variance([1], width=0)
        with pytest.raises(ValueError):
            frequency_error_bound([1], width=4, k=0)


class TestLemma1Unbiasedness:
    def test_fast_query_bias_is_small(self):
        """E[f̂] = f: the mean signed error vanishes relative to the mass."""
        ifp, truth = populated_ifp()
        estimates = {key: ifp.fast_query(key) for key in truth}
        bias = empirical_bias(estimates, truth)
        mean_count = sum(truth.values()) / len(truth)
        # the median estimator is only approximately mean-unbiased; the
        # bias must still be a small fraction of the mean count
        assert abs(bias) < 0.5 * mean_count


class TestLemma2Variance:
    def test_empirical_variance_within_bound(self):
        """Var[f̂] ≤ ‖F‖₂²/R (per row; the 3-row median only shrinks it)."""
        ifp, truth = populated_ifp()
        estimates = {key: ifp.fast_query(key) for key in truth}
        observed = empirical_variance(estimates, truth)
        bound = basic_structure_variance(truth.values(), ifp.width)
        assert observed <= bound * 1.5  # 50% slack for sampling noise


class TestLemma3TailBound:
    @pytest.mark.parametrize("k", [4.0, 9.0])
    def test_exceed_fraction_below_one_over_k(self, k):
        ifp, truth = populated_ifp(width=96, keys=160)
        estimates = {key: ifp.fast_query(key) for key in truth}
        threshold = frequency_error_bound(truth.values(), ifp.width, k)
        violation = exceed_fraction(estimates, truth, threshold)
        assert violation < 1.0 / k + 0.05  # small sampling allowance


class TestTheorem1:
    def test_davinci_estimates_within_two_sided_bound(self):
        config = DaVinciConfig(
            fp_buckets=16,
            fp_entries=4,
            ef_level_widths=(512, 128),
            ef_level_bits=(4, 8),
            ifp_rows=3,
            ifp_width=96,
            filter_threshold=10,
            seed=9,
        )
        sketch = DaVinciSketch(config)
        rng = random.Random(11)
        keys = list(range(1, 501))
        weights = [1 / (k**1.1) for k in keys]
        stream = rng.choices(keys, weights=weights, k=8000)
        truth = {}
        for key in stream:
            truth[key] = truth.get(key, 0) + 1
        sketch.insert_all(stream)

        k = 9.0
        lower_slack, upper_slack = davinci_error_bound(sketch, truth, k)
        below = above = 0
        for key, count in truth.items():
            estimate = sketch.query(key)
            if estimate < count - lower_slack - 1e-9:
                below += 1
            if estimate > count + upper_slack + 1e-9:
                above += 1
        population = len(truth)
        # each side violated with probability < 1/k (plus sampling slack)
        assert below / population < 1.0 / k + 0.05
        assert above / population < 1.0 / k + 0.05

    def test_bound_components_positive(self):
        config = DaVinciConfig(
            fp_buckets=8,
            fp_entries=4,
            ef_level_widths=(128, 32),
            ef_level_bits=(4, 8),
            ifp_rows=3,
            ifp_width=32,
            filter_threshold=10,
            seed=2,
        )
        sketch = DaVinciSketch(config)
        sketch.insert_all([k for k in range(1, 100) for _ in range(30)])
        truth = {k: 30 for k in range(1, 100)}
        lower_slack, upper_slack = davinci_error_bound(sketch, truth, 4.0)
        assert lower_slack >= 0
        assert upper_slack >= lower_slack
