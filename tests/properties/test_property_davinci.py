"""Property-based tests for DaVinci Sketch invariants.

These encode the structural guarantees the paper's design rests on:
mass conservation across the three parts, exactness on small inputs,
linearity of the set operations, and the antisymmetry of differences.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DaVinciConfig, DaVinciSketch

small_keys = st.integers(min_value=1, max_value=50)
streams = st.lists(small_keys, min_size=0, max_size=300)


def make_config(seed: int = 3) -> DaVinciConfig:
    return DaVinciConfig(
        fp_buckets=8,
        fp_entries=4,
        ef_level_widths=(128, 32),
        ef_level_bits=(4, 8),
        ifp_rows=3,
        ifp_width=32,
        filter_threshold=10,
        seed=seed,
    )


class TestConservation:
    @given(stream=streams)
    @settings(max_examples=60, deadline=None)
    def test_total_count_conserved(self, stream):
        sketch = DaVinciSketch(make_config())
        sketch.insert_all(stream)
        assert sketch.total_count == len(stream)

    @given(stream=streams)
    @settings(max_examples=60, deadline=None)
    def test_mass_conserved_across_parts(self, stream):
        """FP counts + EF level counters + IFP mass == stream length.

        The element filter records each demoted unit at level 0 exactly
        once below saturation; we verify the weaker but exact invariant
        that FP mass plus all *encoded* lower mass equals the stream size.
        """
        sketch = DaVinciSketch(make_config())
        sketch.insert_all(stream)
        fp_mass = sum(count for _key, count in sketch.fp.items())
        decoded = sketch.ifp.decode()
        ifp_mass = sum(decoded.counts.values()) if decoded.complete else None
        if ifp_mass is None:
            return  # undecodable IFP: invariant not checkable this run
        # level-0 may saturate; use the top (widest-counter) level instead
        top = sketch.ef.levels[-1]
        cap = sketch.ef.level_caps[-1]
        if any(value >= cap for value in top):
            return
        ef_mass = sum(top)
        assert fp_mass + ef_mass + ifp_mass == len(stream)


class TestExactnessOnTinyInputs:
    @given(stream=st.lists(small_keys, min_size=0, max_size=24))
    @settings(max_examples=80, deadline=None)
    def test_small_streams_are_exact(self, stream):
        """With fewer distinct keys than FP capacity, queries are exact."""
        sketch = DaVinciSketch(make_config())
        sketch.insert_all(stream)
        truth = Counter(stream)
        if len(sketch.fp) + 0 < sketch.fp.capacity and all(
            flag is False
            for bucket in sketch.fp.buckets
            for *_kc, flag in bucket.entries
        ):
            for key, count in truth.items():
                assert sketch.query(key) == count

    @given(stream=streams)
    @settings(max_examples=60, deadline=None)
    def test_queries_are_non_negative(self, stream):
        sketch = DaVinciSketch(make_config())
        sketch.insert_all(stream)
        for key in set(stream) | {999}:
            assert sketch.query(key) >= 0


class TestSetOperationProperties:
    @given(left=streams, right=streams)
    @settings(max_examples=40, deadline=None)
    def test_union_total(self, left, right):
        a, b = DaVinciSketch(make_config()), DaVinciSketch(make_config())
        a.insert_all(left)
        b.insert_all(right)
        assert a.union(b).total_count == len(left) + len(right)

    @given(left=streams, right=streams)
    @settings(max_examples=40, deadline=None)
    def test_difference_antisymmetry_on_totals(self, left, right):
        a, b = DaVinciSketch(make_config()), DaVinciSketch(make_config())
        a.insert_all(left)
        b.insert_all(right)
        assert a.difference(b).total_count == -b.difference(a).total_count

    @given(stream=streams)
    @settings(max_examples=40, deadline=None)
    def test_self_difference_is_zero(self, stream):
        a, b = DaVinciSketch(make_config()), DaVinciSketch(make_config())
        a.insert_all(stream)
        b.insert_all(stream)
        delta = a.difference(b)
        for key in set(stream):
            assert delta.query(key) == 0

    @given(stream=streams)
    @settings(max_examples=40, deadline=None)
    def test_union_with_empty_preserves_queries(self, stream):
        a, b = DaVinciSketch(make_config()), DaVinciSketch(make_config())
        a.insert_all(stream)
        merged = a.union(b)
        truth = Counter(stream)
        for key, count in truth.items():
            # additive union query may differ from Alg-4 by collision noise
            # only; on the empty union it must not lose mass
            assert merged.query(key) >= min(count, 1)


class TestCanonicalization:
    @given(key=st.one_of(st.integers(), st.text(max_size=20), st.binary(max_size=20)))
    @settings(max_examples=80, deadline=None)
    def test_any_key_type_insertable_and_queryable(self, key):
        sketch = DaVinciSketch(make_config())
        sketch.insert(key)
        assert sketch.query(key) >= 1

    @given(key=st.integers())
    def test_canonical_key_in_domain(self, key):
        sketch = DaVinciSketch(make_config())
        canon = sketch.canonical_key(key)
        assert 1 <= canon < sketch.ifp.max_key
