"""Property-based tests for the hashing and prime-field substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.hashing import HashFamily, SignFamily, hash64, mix64
from repro.common.primes import (
    DEFAULT_PRIME,
    from_field_signed,
    mod_inverse,
    to_field,
)

keys = st.integers(min_value=0, max_value=2**64 - 1)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestHashProperties:
    @given(key=keys, seed=seeds)
    def test_hash64_in_range_and_stable(self, key, seed):
        value = hash64(key, seed)
        assert 0 <= value < 2**64
        assert value == hash64(key, seed)

    @given(key=keys)
    def test_mix64_is_a_bijection_witness(self, key):
        # distinct adjacent inputs never collide (weak injectivity witness)
        assert mix64(key) != mix64(key ^ 1)

    @given(key=keys, seed=seeds, rows=st.integers(1, 6), width=st.integers(1, 997))
    @settings(max_examples=50)
    def test_family_indexes_in_range(self, key, seed, rows, width):
        family = HashFamily(rows, width, seed=seed)
        for index in family.indexes(key):
            assert 0 <= index < width

    @given(key=keys, seed=seeds, rows=st.integers(1, 6))
    @settings(max_examples=50)
    def test_sign_family_range(self, key, seed, rows):
        family = SignFamily(rows, seed=seed)
        assert all(sign in (1, -1) for sign in family.signs(key))


class TestFieldProperties:
    @given(a=st.integers(min_value=1, max_value=DEFAULT_PRIME - 1))
    @settings(max_examples=100)
    def test_fermat_inverse(self, a):
        assert (a * mod_inverse(a, DEFAULT_PRIME)) % DEFAULT_PRIME == 1

    @given(value=st.integers(min_value=-(DEFAULT_PRIME // 2), max_value=DEFAULT_PRIME // 2))
    def test_signed_roundtrip(self, value):
        assert (
            from_field_signed(to_field(value, DEFAULT_PRIME), DEFAULT_PRIME)
            == value
        )

    @given(
        a=st.integers(min_value=-(10**12), max_value=10**12),
        b=st.integers(min_value=-(10**12), max_value=10**12),
    )
    def test_field_addition_homomorphism(self, a, b):
        p = DEFAULT_PRIME
        assert to_field(a + b, p) == (to_field(a, p) + to_field(b, p)) % p
