"""Property-based tests for baseline-sketch invariants."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches import (
    CountMinSketch,
    CUSketch,
    FermatSketch,
    LossRadar,
    TowerSketch,
)

small_keys = st.integers(min_value=1, max_value=60)
streams = st.lists(small_keys, min_size=0, max_size=200)


class TestOverestimationInvariants:
    @given(stream=streams)
    @settings(max_examples=50, deadline=None)
    def test_cm_never_underestimates(self, stream):
        sketch = CountMinSketch(rows=3, width=32, seed=1)
        sketch.insert_all(stream)
        truth = Counter(stream)
        for key, count in truth.items():
            assert sketch.query(key) >= count

    @given(stream=streams)
    @settings(max_examples=50, deadline=None)
    def test_cu_never_underestimates_and_dominates_cm(self, stream):
        cm = CountMinSketch(rows=3, width=32, seed=1)
        cu = CUSketch(rows=3, width=32, seed=1)
        cm.insert_all(stream)
        cu.insert_all(stream)
        truth = Counter(stream)
        for key, count in truth.items():
            assert count <= cu.query(key) <= cm.query(key)

    @given(stream=streams)
    @settings(max_examples=50, deadline=None)
    def test_tower_never_underestimates_below_saturation(self, stream):
        tower = TowerSketch((64, 16), (8, 16), seed=2)
        tower.insert_all(stream)
        truth = Counter(stream)
        for key, count in truth.items():
            if count < 255:
                assert tower.query(key) >= count


class TestInvertibleRoundtrips:
    @given(
        counts=st.dictionaries(
            st.integers(min_value=1, max_value=10**6),
            st.integers(min_value=1, max_value=100),
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_fermat_roundtrip(self, counts):
        sketch = FermatSketch(rows=3, width=128, seed=3)
        for key, count in counts.items():
            sketch.insert(key, count)
        assert sketch.decode() == counts

    @given(
        counts=st.dictionaries(
            st.integers(min_value=1, max_value=10**6),
            st.integers(min_value=1, max_value=100),
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_lossradar_roundtrip(self, counts):
        sketch = LossRadar(cells=128, seed=4)
        for key, count in counts.items():
            sketch.insert(key, count)
        assert sketch.decode() == counts

    @given(
        shared=st.dictionaries(
            st.integers(min_value=1, max_value=10**6),
            st.integers(min_value=1, max_value=50),
            max_size=15,
        ),
        extra=st.dictionaries(
            st.integers(min_value=10**7, max_value=2 * 10**7),
            st.integers(min_value=1, max_value=50),
            max_size=10,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_fermat_difference_cancels_shared_mass(self, shared, extra):
        a = FermatSketch(rows=3, width=128, seed=5)
        b = FermatSketch(rows=3, width=128, seed=5)
        for key, count in shared.items():
            a.insert(key, count)
            b.insert(key, count)
        for key, count in extra.items():
            a.insert(key, count)
        assert a.subtract(b).decode() == extra

    @given(
        counts=st.dictionaries(
            st.integers(min_value=1, max_value=10**6),
            st.integers(min_value=1, max_value=50),
            max_size=15,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_fermat_merge_doubles_self(self, counts):
        a = FermatSketch(rows=3, width=128, seed=6)
        for key, count in counts.items():
            a.insert(key, count)
        doubled = a.merge(a).decode()
        assert doubled == {key: 2 * count for key, count in counts.items()}
