"""Property-based tests for the EM deconvolution and the WMRE metric."""

import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.tasks.distribution import CounterArrayEM
from repro.metrics import weighted_mean_relative_error

counter_arrays = st.lists(
    st.integers(min_value=0, max_value=40), min_size=1, max_size=200
)

# subnormal counts underflow when multiplied, breaking exact identities
histograms = st.dictionaries(
    st.integers(min_value=1, max_value=50),
    st.floats(
        min_value=0.0,
        max_value=1000.0,
        allow_nan=False,
        allow_subnormal=False,
    ),
    max_size=20,
)


class TestEMProperties:
    @given(counters=counter_arrays)
    @settings(max_examples=60, deadline=None)
    def test_output_sizes_and_counts_valid(self, counters):
        result = CounterArrayEM(iterations=3).estimate(counters)
        for size, count in result.items():
            assert size >= 1
            assert count > 0

    @given(counters=counter_arrays)
    @settings(max_examples=60, deadline=None)
    def test_mass_never_exceeds_observed(self, counters):
        """EM can split counters but never invents mass: Σ size·count ≤ Σ
        counter values (within float tolerance)."""
        result = CounterArrayEM(iterations=3).estimate(counters)
        estimated_mass = sum(size * count for size, count in result.items())
        observed_mass = sum(value for value in counters if value > 0)
        assert estimated_mass <= observed_mass * 1.001 + 1e-6

    @given(counters=counter_arrays)
    @settings(max_examples=60, deadline=None)
    def test_flow_count_at_least_nonzero_counters(self, counters):
        """Splitting only adds flows: total ≥ number of non-zero counters."""
        result = CounterArrayEM(iterations=3).estimate(counters)
        nonzero = sum(1 for value in counters if value > 0)
        if nonzero:
            assert sum(result.values()) >= nonzero * 0.999

    @given(counters=counter_arrays, iterations=st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_deterministic(self, counters, iterations):
        em = CounterArrayEM(iterations=iterations)
        assert em.estimate(counters) == em.estimate(counters)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_recovers_uniform_size_under_light_load(self, seed):
        """All flows of size 3 at load < 0.4: the dominant EM mass is at 3."""
        rng = random.Random(seed)
        width = 256
        counters = [0] * width
        for _ in range(90):
            counters[rng.randrange(width)] += 3
        result = CounterArrayEM().estimate(counters)
        assume(result)
        total = sum(result.values())
        assert result.get(3, 0) + result.get(6, 0) > 0.6 * total


class TestWMREProperties:
    @given(hist=histograms)
    def test_identity_is_zero(self, hist):
        assert weighted_mean_relative_error(hist, hist) == 0.0

    @given(truth=histograms, estimate=histograms)
    def test_symmetry(self, truth, estimate):
        forward = weighted_mean_relative_error(truth, estimate)
        backward = weighted_mean_relative_error(estimate, truth)
        # equal up to float summation order
        assert abs(forward - backward) <= 1e-9 * max(1.0, forward)

    @given(truth=histograms, estimate=histograms)
    def test_bounded_by_two(self, truth, estimate):
        """|a−b| ≤ a+b for non-negative entries, so WMRE ≤ 2."""
        value = weighted_mean_relative_error(truth, estimate)
        assert 0.0 <= value <= 2.0 + 1e-9

    @given(truth=histograms, scale=st.floats(min_value=0.1, max_value=10))
    def test_scale_invariance(self, truth, scale):
        """Scaling both histograms equally leaves WMRE unchanged."""
        assume(truth)
        scaled_truth = {size: count * scale for size, count in truth.items()}
        other = {size: count * 0.5 for size, count in truth.items()}
        scaled_other = {size: count * scale for size, count in other.items()}
        original = weighted_mean_relative_error(truth, other)
        scaled = weighted_mean_relative_error(scaled_truth, scaled_other)
        assert abs(original - scaled) < 1e-9
