"""CheckpointingIngestor: durability, recovery, byte-identity.

The central property (ISSUE acceptance): for *any* injected crash point
during an ingest, recovering from disk and resuming the stream from
``items_ingested`` yields a sketch whose ``to_state()`` is byte-identical
to an uninterrupted run with the same chunking.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.common.errors import CheckpointError, ConfigurationError
from repro.core import serialization
from repro.core.config import DaVinciConfig
from repro.core.davinci import DaVinciSketch
from repro.runtime import (
    CHECKPOINT_FILENAME,
    JOURNAL_FILENAME,
    CheckpointingIngestor,
)
from repro.testing import CrashInjector, InjectedCrash
from tests.conftest import make_zipf_stream

#: cadence small enough that a short run crosses several checkpoints
FAST = dict(checkpoint_every_items=700, journal_chunk_items=128)


def _pairs(num_items: int, num_keys: int = 300, seed: int = 42):
    return [
        (key, 1)
        for key in make_zipf_stream(
            num_keys=num_keys, num_items=num_items, seed=seed
        )
    ]


def _run_to_completion(config, directory, pairs, hook=None, **kwargs):
    """The canonical session: ingest, flush the tail, checkpoint, close."""
    ingestor = CheckpointingIngestor(
        config, directory, crash_hook=hook, **kwargs
    )
    ingestor.ingest(pairs)
    ingestor.flush()
    ingestor.checkpoint()
    state = ingestor.sketch.to_state()
    ingestor.close()
    return state


def _recover_and_finish(config, directory, pairs, **kwargs):
    """Reopen after a crash, resume the stream, return the final state."""
    ingestor = CheckpointingIngestor(config, directory, **kwargs)
    ingestor.ingest(pairs[ingestor.items_ingested :])
    ingestor.flush()
    state = ingestor.sketch.to_state()
    ingestor.close()
    return state


class TestCrashRecoveryByteIdentity:
    def test_every_crash_point_recovers_byte_identically(
        self, small_config, tmp_path
    ):
        """Exhaustive sweep over *all* durable steps of a 2k-item run."""
        pairs = _pairs(2000)
        baseline = _run_to_completion(
            small_config, tmp_path / "base", pairs, **FAST
        )

        recorder = CrashInjector(0)
        _run_to_completion(
            small_config, tmp_path / "count", pairs, hook=recorder, **FAST
        )
        total_steps = len(recorder.labels)
        assert total_steps > 20, "sweep must cover a non-trivial run"
        # the run exercises every durable-step flavor
        assert {
            "journal:record",
            "apply",
            "checkpoint:tmp",
            "checkpoint:replace",
            "journal:truncate",
        } <= set(recorder.labels)

        for step in range(1, total_steps + 1):
            directory = tmp_path / f"crash{step}"
            injector = CrashInjector(step)
            with pytest.raises(InjectedCrash):
                _run_to_completion(
                    small_config, directory, pairs, hook=injector, **FAST
                )
            recovered = _recover_and_finish(
                small_config, directory, pairs, **FAST
            )
            assert recovered == baseline, f"divergence at crash step {step}"

    def test_100k_item_ingest_survives_sampled_crash_points(
        self, small_config, tmp_path
    ):
        """Representative run at scale with default-sized chunks."""
        kwargs = dict(checkpoint_every_items=20000, journal_chunk_items=4096)
        pairs = _pairs(100_000, num_keys=2000)
        baseline = _run_to_completion(
            small_config, tmp_path / "base", pairs, **kwargs
        )
        recorder = CrashInjector(0)
        _run_to_completion(
            small_config, tmp_path / "count", pairs, hook=recorder, **kwargs
        )
        total_steps = len(recorder.labels)
        samples = sorted(
            {1, 2, 7, total_steps // 3, total_steps // 2, total_steps - 1, total_steps}
        )
        for step in samples:
            directory = tmp_path / f"crash{step}"
            with pytest.raises(InjectedCrash):
                _run_to_completion(
                    small_config,
                    directory,
                    pairs,
                    hook=CrashInjector(step),
                    **kwargs,
                )
            recovered = _recover_and_finish(
                small_config, directory, pairs, **kwargs
            )
            assert recovered == baseline, f"divergence at crash step {step}"

    def test_resume_split_is_chunk_aligned(self, small_config, tmp_path):
        """A crash mid-buffer loses only the unjournaled tail."""
        pairs = _pairs(2000)
        ingestor = CheckpointingIngestor(
            small_config, tmp_path / "d", **FAST
        )
        ingestor.ingest(pairs[:1000])  # 7 full chunks of 128 = 896 applied
        assert ingestor.items_ingested == 896
        assert ingestor.pending_items == 104
        del ingestor  # crash: no close, buffer gone

        reopened = CheckpointingIngestor(small_config, tmp_path / "d", **FAST)
        assert reopened.recovered
        assert reopened.items_ingested == 896
        assert reopened.pending_items == 0
        reopened.close()

    def test_mixed_key_types_roundtrip_through_crash(
        self, small_config, tmp_path
    ):
        pairs = [
            (7, 3),
            ("flow-a", 2),
            (b"\x00\xffraw", 5),
            ("flow-a", 1),
            (1 << 40, 4),  # out-of-domain int goes through canonical_key
        ] * 40
        kwargs = dict(checkpoint_every_items=None, journal_chunk_items=16)
        baseline = _run_to_completion(
            small_config, tmp_path / "base", pairs, **kwargs
        )
        directory = tmp_path / "crash"
        with pytest.raises(InjectedCrash):
            _run_to_completion(
                small_config,
                directory,
                pairs,
                hook=CrashInjector(9),
                **kwargs,
            )
        recovered = _recover_and_finish(
            small_config, directory, pairs, **kwargs
        )
        assert recovered == baseline

        twin = DaVinciSketch.from_state(recovered)
        for key in (7, "flow-a", b"\x00\xffraw", 1 << 40):
            assert twin.query(key) > 0


class TestJournal:
    def test_torn_tail_is_discarded_and_truncated(
        self, small_config, tmp_path
    ):
        directory = tmp_path / "d"
        kwargs = dict(checkpoint_every_items=None, journal_chunk_items=64)
        ingestor = CheckpointingIngestor(small_config, directory, **kwargs)
        ingestor.ingest(_pairs(256))
        applied = ingestor.items_ingested
        ingestor.close()

        journal_path = directory / JOURNAL_FILENAME
        intact = journal_path.read_bytes()
        journal_path.write_bytes(intact + b'{"seq": 99, "pa')  # torn append

        reopened = CheckpointingIngestor(small_config, directory, **kwargs)
        assert reopened.items_ingested == applied
        # the torn bytes were physically truncated away so appends are safe
        assert journal_path.read_bytes() == intact
        reopened.ingest(_pairs(64, seed=5))
        reopened.close()
        # every surviving line is valid JSON again
        for line in journal_path.read_bytes().splitlines():
            json.loads(line)

    def test_non_tail_corruption_raises(self, small_config, tmp_path):
        directory = tmp_path / "d"
        kwargs = dict(checkpoint_every_items=None, journal_chunk_items=64)
        ingestor = CheckpointingIngestor(small_config, directory, **kwargs)
        ingestor.ingest(_pairs(256))  # four records
        ingestor.close()

        journal_path = directory / JOURNAL_FILENAME
        lines = journal_path.read_bytes().splitlines(keepends=True)
        assert len(lines) >= 3
        lines[0] = lines[0][:20] + b"X" + lines[0][21:]
        journal_path.write_bytes(b"".join(lines))

        with pytest.raises(CheckpointError, match="not the final"):
            CheckpointingIngestor(small_config, directory, **kwargs)

    def test_journal_gap_raises(self, small_config, tmp_path):
        directory = tmp_path / "d"
        kwargs = dict(checkpoint_every_items=None, journal_chunk_items=64)
        ingestor = CheckpointingIngestor(small_config, directory, **kwargs)
        ingestor.ingest(_pairs(256))
        ingestor.close()

        journal_path = directory / JOURNAL_FILENAME
        lines = journal_path.read_bytes().splitlines(keepends=True)
        journal_path.write_bytes(lines[0] + b"".join(lines[2:]))  # drop seq 2

        with pytest.raises(CheckpointError, match="gap"):
            CheckpointingIngestor(small_config, directory, **kwargs)

    def test_journal_is_truncated_after_checkpoint(
        self, small_config, tmp_path
    ):
        directory = tmp_path / "d"
        ingestor = CheckpointingIngestor(
            small_config,
            directory,
            checkpoint_every_items=None,
            journal_chunk_items=64,
        )
        ingestor.ingest(_pairs(256))
        assert (directory / JOURNAL_FILENAME).stat().st_size > 0
        ingestor.checkpoint()
        assert (directory / JOURNAL_FILENAME).stat().st_size == 0
        ingestor.close()


class TestCheckpointFile:
    def test_bitflip_in_checkpoint_raises(self, small_config, tmp_path):
        directory = tmp_path / "d"
        _run_to_completion(small_config, directory, _pairs(512), **FAST)
        path = directory / CHECKPOINT_FILENAME
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x10
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError):
            CheckpointingIngestor(small_config, directory, **FAST)

    def test_checkpoint_write_is_atomic(self, small_config, tmp_path):
        """A crash between temp-write and rename keeps the old snapshot."""
        pairs = _pairs(2000)
        baseline = _run_to_completion(
            small_config, tmp_path / "base", pairs, **FAST
        )
        directory = tmp_path / "crash"
        injector = CrashInjector(2, only_label="checkpoint:tmp")
        with pytest.raises(InjectedCrash):
            _run_to_completion(
                small_config, directory, pairs, hook=injector, **FAST
            )
        # old checkpoint (or none) plus the journal recovers everything
        recovered = _recover_and_finish(small_config, directory, pairs, **FAST)
        assert recovered == baseline

    def test_embedded_state_passes_deep_verification(
        self, small_config, tmp_path
    ):
        directory = tmp_path / "d"
        _run_to_completion(small_config, directory, _pairs(512), **FAST)
        record = json.loads((directory / CHECKPOINT_FILENAME).read_bytes())
        config = serialization.verify_state(record["state"])
        assert config == small_config

    def test_config_mismatch_is_refused(self, small_config, tmp_path):
        directory = tmp_path / "d"
        _run_to_completion(small_config, directory, _pairs(256), **FAST)
        other = DaVinciConfig(
            fp_buckets=8,
            fp_entries=4,
            ef_level_widths=(256, 64),
            ef_level_bits=(4, 8),
            ifp_rows=3,
            ifp_width=64,
            lambda_evict=8.0,
            filter_threshold=10,
            seed=7,
        )
        with pytest.raises(ConfigurationError, match="differently-configured"):
            CheckpointingIngestor(other, directory, **FAST)


class TestCadence:
    def test_item_cadence_checkpoints_mid_stream(self, small_config, tmp_path):
        directory = tmp_path / "d"
        ingestor = CheckpointingIngestor(
            small_config,
            directory,
            checkpoint_every_items=256,
            journal_chunk_items=64,
        )
        ingestor.ingest(_pairs(1024))
        ingestor.close()
        record = json.loads((directory / CHECKPOINT_FILENAME).read_bytes())
        assert record["items_ingested"] >= 256  # written without an explicit call

    def test_time_cadence_uses_injected_clock(self, small_config, tmp_path):
        ticks = iter(range(0, 10_000, 60))  # one minute per observation
        directory = tmp_path / "d"
        ingestor = CheckpointingIngestor(
            small_config,
            directory,
            checkpoint_every_items=None,
            checkpoint_every_seconds=30.0,
            journal_chunk_items=64,
            clock=lambda: float(next(ticks)),
        )
        ingestor.ingest(_pairs(128))  # two chunks, clock jumps 60s
        ingestor.close()
        assert (directory / CHECKPOINT_FILENAME).exists()

    def test_no_cadence_never_checkpoints_implicitly(
        self, small_config, tmp_path
    ):
        directory = tmp_path / "d"
        ingestor = CheckpointingIngestor(
            small_config,
            directory,
            checkpoint_every_items=None,
            journal_chunk_items=64,
        )
        ingestor.ingest(_pairs(1024))
        assert not (directory / CHECKPOINT_FILENAME).exists()
        ingestor.close()


class TestLifecycleAndValidation:
    def test_context_manager_flushes_and_checkpoints(
        self, small_config, tmp_path
    ):
        pairs = _pairs(300)
        directory = tmp_path / "d"
        with CheckpointingIngestor(small_config, directory, **FAST) as ingestor:
            ingestor.ingest(pairs)  # 300 = 2×128 + 44 buffered
            assert ingestor.pending_items == 44
        reopened = CheckpointingIngestor(small_config, directory, **FAST)
        assert reopened.items_ingested == 300
        assert (directory / JOURNAL_FILENAME).stat().st_size == 0
        reopened.close()

    def test_exceptional_exit_does_not_checkpoint(
        self, small_config, tmp_path
    ):
        directory = tmp_path / "d"
        with pytest.raises(RuntimeError, match="boom"):
            with CheckpointingIngestor(
                small_config, directory, **FAST
            ) as ingestor:
                ingestor.ingest(_pairs(64))
                raise RuntimeError("boom")
        assert not (directory / CHECKPOINT_FILENAME).exists()

    def test_fresh_directory_is_not_recovered(self, small_config, tmp_path):
        ingestor = CheckpointingIngestor(small_config, tmp_path / "d", **FAST)
        assert not ingestor.recovered
        assert ingestor.items_ingested == 0
        ingestor.close()

    def test_closed_ingestor_rejects_operations(self, small_config, tmp_path):
        ingestor = CheckpointingIngestor(small_config, tmp_path / "d", **FAST)
        ingestor.close()
        ingestor.close()  # idempotent
        for operation in (
            lambda: ingestor.ingest([(1, 1)]),
            ingestor.flush,
            ingestor.checkpoint,
        ):
            with pytest.raises(CheckpointError, match="closed"):
                operation()

    @pytest.mark.parametrize(
        "pair", [((1, 1), 0), ((1,), 1), (1, 1.5), (1, True), (None, 1)]
    )
    def test_rejects_malformed_pairs(self, small_config, tmp_path, pair):
        ingestor = CheckpointingIngestor(
            small_config, tmp_path / "d", journal_chunk_items=1
        )
        with pytest.raises((ConfigurationError, TypeError, ValueError)):
            ingestor.ingest([pair])
            ingestor.flush()
        ingestor.close()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(checkpoint_every_items=0),
            dict(checkpoint_every_seconds=0),
            dict(checkpoint_every_seconds=-1.0),
            dict(journal_chunk_items=0),
            dict(digest_algo="md5"),
        ],
    )
    def test_rejects_invalid_construction(self, small_config, tmp_path, kwargs):
        with pytest.raises(ConfigurationError):
            CheckpointingIngestor(small_config, tmp_path / "d", **kwargs)

    def test_ingest_keys_counts_single_occurrences(
        self, small_config, tmp_path
    ):
        directory = tmp_path / "d"
        with CheckpointingIngestor(small_config, directory, **FAST) as ingestor:
            accepted = ingestor.ingest_keys(k for k, _count in _pairs(200))
            assert accepted == 200
        reopened = CheckpointingIngestor(small_config, directory, **FAST)
        assert reopened.items_ingested == 200
        assert reopened.sketch.total_count == 200
        reopened.close()

    def test_sha256_checkpoints_also_recover(self, small_config, tmp_path):
        directory = tmp_path / "d"
        pairs = _pairs(512)
        state = _run_to_completion(
            small_config, directory, pairs, digest_algo="sha256", **FAST
        )
        reopened = CheckpointingIngestor(
            small_config, directory, digest_algo="sha256", **FAST
        )
        assert reopened.sketch.to_state() == state
        reopened.close()
