"""The fault injectors themselves: deterministic, reversible, honest."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.core.davinci import DaVinciSketch
from repro.testing import (
    CrashInjector,
    InjectedCrash,
    flip_bit,
    forced_peel_stall,
    truncate,
)


class TestCrashInjector:
    def test_crashes_on_exact_step(self):
        injector = CrashInjector(3)
        injector("a")
        injector("b")
        with pytest.raises(InjectedCrash, match="step 3"):
            injector("c")
        assert injector.crashed
        assert injector.labels == ["a", "b", "c"]

    def test_zero_never_crashes(self):
        recorder = CrashInjector(0)
        for label in ("a", "b", "c") * 10:
            recorder(label)
        assert not recorder.crashed
        assert recorder.ops == 30

    def test_label_filter_counts_only_matches(self):
        injector = CrashInjector(2, only_label="checkpoint:tmp")
        injector("journal:record")
        injector("checkpoint:tmp")
        injector("journal:record")
        with pytest.raises(InjectedCrash):
            injector("checkpoint:tmp")
        assert injector.ops == 2
        assert len(injector.labels) == 4


class TestByteFaults:
    def test_flip_bit_inverts_exactly_one_bit(self):
        blob = bytes(range(16))
        mutated = flip_bit(blob, 37)
        assert len(mutated) == len(blob)
        diff = [i for i in range(len(blob)) if mutated[i] != blob[i]]
        assert diff == [37 // 8]
        assert mutated[37 // 8] ^ blob[37 // 8] == 1 << (37 % 8)
        assert flip_bit(mutated, 37) == blob  # involutive

    def test_flip_bit_bounds(self):
        with pytest.raises(ConfigurationError):
            flip_bit(b"ab", 16)
        with pytest.raises(ConfigurationError):
            flip_bit(b"ab", -1)

    def test_truncate(self):
        blob = b"0123456789"
        assert truncate(blob, 4) == b"0123"
        assert truncate(blob, 0) == b""
        assert truncate(blob, 10) == blob
        with pytest.raises(ConfigurationError):
            truncate(blob, 11)


class TestForcedPeelStall:
    @pytest.fixture
    def populated(self, small_config) -> DaVinciSketch:
        sketch = DaVinciSketch(small_config)
        for key in range(1, 200):
            sketch.insert(key, 25)
        assert sketch.decode_result().complete
        assert len(sketch.decode_counts()) > 10  # IFP actually holds keys
        return sketch

    def test_stalls_inside_and_restores_after(self, populated):
        with forced_peel_stall(populated) as sketch:
            result = sketch.decode_result()
            assert not result.complete
            assert result.counts == {}
            assert result.residual_buckets >= 1
        assert populated.decode_result().complete

    def test_keep_partial_preserves_a_prefix_of_real_keys(self, populated):
        real = populated.decode_counts()
        with forced_peel_stall(populated, keep_partial=4) as sketch:
            partial = sketch.decode_result().counts
            assert len(partial) == 4
            for key, count in partial.items():
                assert real[key] == count

    def test_restores_even_when_body_raises(self, populated):
        with pytest.raises(RuntimeError, match="boom"):
            with forced_peel_stall(populated):
                raise RuntimeError("boom")
        assert populated.decode_result().complete

    def test_decode_cache_does_not_leak_across_boundary(self, populated):
        populated.decode_result()  # warm the cache with the real result
        with forced_peel_stall(populated) as sketch:
            assert not sketch.decode_result().complete  # cache was dropped
        assert populated.decode_result().complete  # stalled result dropped too
