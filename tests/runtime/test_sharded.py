"""Sharded multiprocess ingestion: routing, identity, faults, shutdown.

The heart of the contract is byte-identity: a ``ShardedIngestor`` run
must produce a merged sketch whose ``to_state()`` equals a sequential
fold over the router's partitions built with the same per-shard chunking
— including when a worker is SIGKILLed mid-run and recovered from its
durable shard checkpoint (the acceptance fault test).
"""

import functools
import os
import random
import signal
import time

import pytest

from repro.common.errors import ConfigurationError, ShardFailureError
from repro.core import setops
from repro.core.config import DaVinciConfig
from repro.core.davinci import DaVinciSketch
from repro.observability import metrics as obs_metrics
from repro.observability.metrics import MetricsRegistry
from repro.runtime import ShardedIngestor, ShardRouter, merge_tree

CHUNK = 1024


def small_config(seed: int = 3) -> DaVinciConfig:
    return DaVinciConfig.from_memory(16384, seed=seed)


def zipfish_keys(n: int, seed: int = 7):
    rng = random.Random(seed)
    return [rng.randint(1, 50_000) for _ in range(n)]


def reference_fold(config, router, pairs, chunk_items):
    """Sequential per-partition build + fold, the byte-identity oracle."""
    shards = []
    for part in router.partition_pairs(pairs):
        sketch = DaVinciSketch(config)
        if part:
            sketch.insert_batch(part, chunk_size=chunk_items)
        shards.append(sketch)
    return merge_tree(shards), shards


# --------------------------------------------------------------------- #
# router
# --------------------------------------------------------------------- #
class TestShardRouter:
    def test_deterministic_and_in_range(self):
        router = ShardRouter(5)
        for key in [1, 2, 2**31, "flow-9", b"\x00\x01", -17, 0]:
            shard = router.shard_of(key)
            assert 0 <= shard < 5
            assert router.shard_of(key) == shard

    def test_matches_canonical_key_of_sketch(self):
        sketch = DaVinciSketch(small_config())
        router = ShardRouter(4)
        for key in [5, "alpha", b"beta", 2**40, -3]:
            assert router.canonical_key(key) == sketch.canonical_key(key)

    def test_residue_classes_still_spread(self):
        # All keys congruent mod num_shards: a plain modulo router would
        # put everything on one shard; the multiplicative mix must not.
        router = ShardRouter(4)
        hits = [0] * 4
        for i in range(4000):
            hits[router.shard_of(1 + 4 * i)] += 1
        assert all(h > 0 for h in hits)
        assert max(hits) < 0.5 * sum(hits)

    def test_partition_preserves_order_and_identity(self):
        router = ShardRouter(3)
        pairs = [(k, 1) for k in zipfish_keys(5000)]
        parts = router.partition_pairs(pairs)
        assert sum(len(p) for p in parts) == len(pairs)
        for index, part in enumerate(parts):
            assert all(
                router.shard_of(key) == index for key, _count in part[:50]
            )

    def test_rejects_zero_shards(self):
        with pytest.raises(ConfigurationError):
            ShardRouter(0)


# --------------------------------------------------------------------- #
# merge tree
# --------------------------------------------------------------------- #
class TestMergeTree:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            merge_tree([])

    def test_single_sketch_passes_through(self):
        sketch = DaVinciSketch(small_config())
        assert merge_tree([sketch]) is sketch

    def test_tree_equals_fold_left_on_partitions(self):
        config = small_config()
        router = ShardRouter(5)
        pairs = [(k, 1) for k in zipfish_keys(30_000)]
        _merged, shards = reference_fold(config, router, pairs, CHUNK)
        tree = merge_tree(shards)
        fold_left = functools.reduce(setops.union, shards)
        assert tree.to_state() == fold_left.to_state()


# --------------------------------------------------------------------- #
# the facade: identity, weighted pairs, lifecycle
# --------------------------------------------------------------------- #
class TestShardedIngestor:
    def test_merged_state_matches_sequential_fold(self):
        config = small_config()
        keys = zipfish_keys(40_000)
        with ShardedIngestor(
            config, 4, chunk_items=CHUNK, batch_items=4096
        ) as ingestor:
            ingestor.ingest_keys(keys)
            merged = ingestor.finalize()
        reference, _ = reference_fold(
            config, ShardRouter(4), [(k, 1) for k in keys], CHUNK
        )
        assert merged.mode == "additive"
        assert merged.to_state() == reference.to_state()

    def test_weighted_pairs_and_mixed_key_types(self):
        config = small_config()
        rng = random.Random(11)
        pairs = []
        for i in range(8000):
            kind = rng.randrange(3)
            key = (
                rng.randint(1, 10_000)
                if kind == 0
                else f"flow-{rng.randint(1, 500)}"
                if kind == 1
                else bytes([rng.randrange(256), rng.randrange(256)])
            )
            pairs.append((key, rng.randint(1, 5)))
        router = ShardRouter(3)
        with ShardedIngestor(
            config, 3, chunk_items=CHUNK, batch_items=1024
        ) as ingestor:
            ingestor.ingest(pairs)
            merged = ingestor.finalize()
        reference, _ = reference_fold(config, router, pairs, CHUNK)
        assert merged.to_state() == reference.to_state()
        assert ingestor.items_routed == len(pairs)

    def test_weighted_then_unweighted_in_same_buffer_window(self):
        # ingest() leaves explicit per-shard count lists pending; a
        # following ingest_keys() into the same dispatch window must not
        # desync keys from counts (a mismatch would silently truncate
        # the batch at the worker's zip).
        config = small_config()
        pairs = [(k, 3) for k in zipfish_keys(500, seed=5)]
        keys = zipfish_keys(700, seed=6)
        with ShardedIngestor(
            config, 2, chunk_items=CHUNK, batch_items=8192
        ) as ingestor:
            ingestor.ingest(pairs)
            ingestor.ingest_keys(keys)
            merged = ingestor.finalize()
        reference, _ = reference_fold(
            config,
            ShardRouter(2),
            pairs + [(k, 1) for k in keys],
            CHUNK,
        )
        assert merged.total_count == 3 * 500 + 700
        assert merged.to_state() == reference.to_state()

    def test_vectorized_routing_matches_scalar_partition(self):
        # A large all-int list takes the numpy routing fast path; the
        # partitions it produces must be bit-for-bit what the scalar
        # router computes (order included).
        from repro.runtime.sharded import (
            _VECTOR_MIN_KEYS,
            _vector_partition,
        )

        keys = zipfish_keys(max(20_000, _VECTOR_MIN_KEYS), seed=13)
        router = ShardRouter(4)
        parts = _vector_partition(keys, 4)
        assert parts is not None
        scalar = [
            [k for k, _c in part]
            for part in router.partition_pairs((k, 1) for k in keys)
        ]
        assert parts == scalar
        # non-qualifying inputs must fall back, never mis-route
        assert _vector_partition([1.5, 2.0], 4) is None
        assert _vector_partition(["a", "b"], 4) is None
        assert _vector_partition([True, False], 4) is None
        assert _vector_partition([0, 1], 4) is None  # 0 out of domain
        assert _vector_partition([1, 2**40], 4) is None

    def test_finalize_is_idempotent(self):
        with ShardedIngestor(
            small_config(), 2, chunk_items=CHUNK, batch_items=1024
        ) as ingestor:
            ingestor.ingest_keys(zipfish_keys(3000))
            first = ingestor.finalize()
            assert ingestor.finalize() is first

    def test_close_is_idempotent_and_blocks_further_ingest(self):
        ingestor = ShardedIngestor(
            small_config(), 2, chunk_items=CHUNK, batch_items=1024
        )
        ingestor.ingest_keys(zipfish_keys(1000))
        ingestor.close()
        ingestor.close()
        with pytest.raises(ShardFailureError):
            ingestor.ingest_keys([1, 2, 3])

    def test_single_shard_round_trips(self):
        config = small_config()
        keys = zipfish_keys(5000)
        with ShardedIngestor(
            config, 1, chunk_items=CHUNK, batch_items=512
        ) as ingestor:
            ingestor.ingest_keys(keys)
            merged = ingestor.finalize()
        reference, _ = reference_fold(
            config, ShardRouter(1), [(k, 1) for k in keys], CHUNK
        )
        assert merged.to_state() == reference.to_state()

    def test_shard_sketches_are_key_disjoint(self):
        config = small_config()
        with ShardedIngestor(
            config, 4, chunk_items=CHUNK, batch_items=2048
        ) as ingestor:
            ingestor.ingest_keys(zipfish_keys(20_000))
            ingestor.finalize()
        assert len(ingestor.shard_sketches) == 4
        router = ShardRouter(4)
        for index, shard in enumerate(ingestor.shard_sketches):
            for bucket in shard.fp.buckets:
                for key, _count, _flag in bucket.entries:
                    assert router.shard_of(key) == index

    def test_configuration_validation(self):
        config = small_config()
        for kwargs in (
            {"chunk_items": 0},
            {"batch_items": 0},
            {"queue_depth": 0},
            {"max_restarts": -1},
            {"join_timeout": 0},
            {"digest_algo": "md5"},
        ):
            with pytest.raises(ConfigurationError):
                ShardedIngestor(config, 2, **kwargs)


# --------------------------------------------------------------------- #
# failure semantics
# --------------------------------------------------------------------- #
class TestFaults:
    def _kill_worker(self, ingestor, shard):
        process = ingestor._shards[shard].process
        os.kill(process.pid, signal.SIGKILL)
        process.join(timeout=10.0)

    def test_worker_kill_durable_recovers_to_identical_state(self, tmp_path):
        """The acceptance fault test: SIGKILL one worker mid-run; the
        respawn recovers from the shard checkpoint, the parent replays
        the unacknowledged tail, and the merged state is byte-identical
        to an uninterrupted run."""
        config = small_config()
        keys = zipfish_keys(24_000)
        common = dict(
            chunk_items=CHUNK,
            batch_items=2048,
            checkpoint_every_items=4096,
        )

        with ShardedIngestor(
            config, 4, durable_root=str(tmp_path / "clean"), **common
        ) as ingestor:
            ingestor.ingest_keys(keys)
            clean = ingestor.finalize()

        with ShardedIngestor(
            config,
            4,
            durable_root=str(tmp_path / "faulty"),
            max_restarts=2,
            **common,
        ) as ingestor:
            half = len(keys) // 2
            ingestor.ingest_keys(keys[:half])
            self._kill_worker(ingestor, 1)
            ingestor.ingest_keys(keys[half:])
            recovered = ingestor.finalize()
            assert ingestor._shards[1].restarts == 1

        assert recovered.to_state() == clean.to_state()
        # And both match the fully sequential oracle.
        reference, _ = reference_fold(
            config, ShardRouter(4), [(k, 1) for k in keys], CHUNK
        )
        assert recovered.to_state() == reference.to_state()

    def test_kill_during_finalize_recovers(self, tmp_path):
        config = small_config()
        keys = zipfish_keys(10_000)
        with ShardedIngestor(
            config,
            2,
            chunk_items=CHUNK,
            batch_items=2048,
            durable_root=str(tmp_path),
            checkpoint_every_items=2048,
            max_restarts=1,
        ) as ingestor:
            ingestor.ingest_keys(keys)
            # Give the workers a moment to drain, then kill one right
            # before collection.
            time.sleep(0.3)
            self._kill_worker(ingestor, 0)
            merged = ingestor.finalize()
        reference, _ = reference_fold(
            config, ShardRouter(2), [(k, 1) for k in keys], CHUNK
        )
        assert merged.to_state() == reference.to_state()

    def test_non_durable_death_fails_fast(self):
        ingestor = ShardedIngestor(
            small_config(), 2, chunk_items=CHUNK, batch_items=256
        )
        try:
            self._kill_worker(ingestor, 0)
            with pytest.raises(ShardFailureError):
                # Enough batches to hit the dead worker's queue limit.
                for _ in range(200):
                    ingestor.ingest_keys(zipfish_keys(2000))
                ingestor.finalize()
        finally:
            ingestor.close()

    def test_restart_budget_exhaustion_raises(self, tmp_path):
        ingestor = ShardedIngestor(
            small_config(),
            2,
            chunk_items=CHUNK,
            batch_items=512,
            durable_root=str(tmp_path),
            max_restarts=0,
        )
        try:
            self._kill_worker(ingestor, 1)
            with pytest.raises(ShardFailureError):
                for _ in range(100):
                    ingestor.ingest_keys(zipfish_keys(2000))
                ingestor.finalize()
        finally:
            ingestor.close()


# --------------------------------------------------------------------- #
# observability
# --------------------------------------------------------------------- #
class TestShardedMetrics:
    def test_counters_when_enabled(self):
        registry = MetricsRegistry()
        obs_metrics.set_enabled(True)
        try:
            with ShardedIngestor(
                small_config(),
                2,
                chunk_items=CHUNK,
                batch_items=512,
                metrics_registry=registry,
            ) as ingestor:
                ingestor.ingest_keys(zipfish_keys(4000))
                ingestor.finalize()
        finally:
            obs_metrics.set_enabled(False)
        snap = registry.snapshot()
        items = {
            name: value
            for name, value in snap["counters"].items()
            if name.startswith("sharded_shard_items_total")
        }
        assert len(items) == 2
        assert sum(items.values()) == 4000
        merge = [
            name
            for name, data in snap["histograms"].items()
            if name.startswith("sharded_merge_seconds") and data["count"] >= 1
        ]
        assert merge
