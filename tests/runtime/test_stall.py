"""A wedged-but-alive shard worker trips ``stall_timeout``.

The historical failure mode: a worker process stops consuming (stopped,
deadlocked, swapping) while staying alive, so ``ingest`` blocks forever
on the full queue with no error and no progress.  ``stall_timeout``
converts that silent hang into a typed ``ShardTimeoutError``.  The test
reproduces the wedge for real with SIGSTOP.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.common.errors import ConfigurationError, ShardTimeoutError
from repro.runtime.sharded import ShardedIngestor

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGSTOP"), reason="needs SIGSTOP/SIGCONT"
)


def test_stopped_worker_raises_shard_timeout(small_config):
    ingestor = ShardedIngestor(
        small_config,
        1,
        batch_items=4,
        queue_depth=1,
        stall_timeout=0.6,
    )
    pid = ingestor._shards[0].process.pid
    stopped = False
    try:
        os.kill(pid, signal.SIGSTOP)
        stopped = True
        started = time.monotonic()
        with pytest.raises(ShardTimeoutError) as excinfo:
            # keep feeding until the queue jams behind the stopped worker
            for base in range(0, 10_000, 4):
                ingestor.ingest_keys(range(base, base + 4))
        elapsed = time.monotonic() - started
        assert "shard 0" in str(excinfo.value)
        assert "0.6" in str(excinfo.value)
        # raised promptly after the stall bound, not after minutes
        assert elapsed < 30.0
    finally:
        if stopped:
            os.kill(pid, signal.SIGCONT)
        ingestor.close()


def test_live_worker_never_trips_the_stall_bound(small_config):
    ingestor = ShardedIngestor(
        small_config,
        1,
        batch_items=4,
        queue_depth=1,
        stall_timeout=5.0,
    )
    try:
        # far more puts than queue_depth: drain keeps resetting the timer
        for base in range(0, 400, 4):
            ingestor.ingest_keys(range(base, base + 4))
        merged = ingestor.finalize()
        assert merged.cardinality() > 0
        ingestor = None  # finalize already tore the workers down
    finally:
        if ingestor is not None:
            ingestor.close()


def test_stall_timeout_validation(small_config):
    with pytest.raises(ConfigurationError):
        ShardedIngestor(small_config, 1, stall_timeout=0.0)
    with pytest.raises(ConfigurationError):
        ShardedIngestor(small_config, 1, stall_timeout=-1.0)
