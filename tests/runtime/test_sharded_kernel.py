"""Sharded ingestion under the array kernel: identity and validation.

Workers executing chunks through the numpy array kernel must produce the
same merged state as the sequential per-partition fold built with the
object kernel — the kernel is an execution strategy, never a semantic
one, even across process boundaries.
"""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.config import DaVinciConfig
from repro.core.davinci import DaVinciSketch
from repro.core.kernel import HAVE_NUMPY
from repro.runtime import ShardedIngestor, ShardRouter, merge_tree

CHUNK = 1024


def small_config(seed: int = 3) -> DaVinciConfig:
    return DaVinciConfig.from_memory(16384, seed=seed)


def trace(n: int = 30_000, seed: int = 9):
    import random

    rng = random.Random(seed)
    return [rng.randint(1, 50_000) for _ in range(n)]


def reference_fold(config, num_shards, pairs, chunk_items):
    """Sequential object-kernel per-partition build + fold (the oracle)."""
    router = ShardRouter(num_shards)
    shards = []
    for part in router.partition_pairs(pairs):
        sketch = DaVinciSketch(config, kernel="object")
        if part:
            sketch.insert_batch(part, chunk_size=chunk_items)
        shards.append(sketch)
    return merge_tree(shards)


class TestShardedKernelValidation:
    def test_invalid_kernel_rejected_in_parent(self):
        # eager validation: the parent must raise before spawning workers
        with pytest.raises(ConfigurationError, match="unknown kernel"):
            ShardedIngestor(small_config(), 2, kernel="simd")


@pytest.mark.skipif(not HAVE_NUMPY, reason="array kernel needs numpy")
class TestShardedArrayKernelIdentity:
    def test_merged_state_matches_object_kernel_fold(self):
        config = small_config()
        keys = trace()
        with ShardedIngestor(
            config,
            4,
            chunk_items=CHUNK,
            batch_items=4096,
            kernel="array",
        ) as ingestor:
            ingestor.ingest_keys(keys)
            merged = ingestor.finalize()
        reference = reference_fold(
            config, 4, [(k, 1) for k in keys], CHUNK
        )
        assert merged.to_state() == reference.to_state()
