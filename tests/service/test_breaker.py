"""CircuitBreaker state machine on a virtual clock."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


def make_breaker(clock, **overrides):
    kwargs = dict(
        failure_threshold=0.5,
        window=8,
        min_samples=4,
        open_seconds=1.0,
        half_open_probes=1,
        clock=clock,
    )
    kwargs.update(overrides)
    return CircuitBreaker(**kwargs)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0.0},
            {"failure_threshold": 1.5},
            {"window": 0},
            {"min_samples": 0},
            {"min_samples": 99, "window": 8},
            {"open_seconds": 0.0},
            {"half_open_probes": 0},
        ],
    )
    def test_bad_parameters_raise(self, kwargs):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(**kwargs)


class TestStateMachine:
    def test_starts_closed_and_allows(self, clock):
        breaker = make_breaker(clock)
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_stays_closed_below_min_samples(self, clock):
        breaker = make_breaker(clock, min_samples=4)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CLOSED

    def test_opens_at_the_failure_rate_threshold(self, clock):
        breaker = make_breaker(clock, min_samples=4)
        breaker.record_success()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # 1/3 below threshold
        breaker.record_failure()  # 2/4 = 0.5 >= threshold
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_half_open_after_cooldown_with_probe_budget(self, clock):
        breaker = make_breaker(clock, min_samples=1, failure_threshold=1.0)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(0.5)
        assert not breaker.allow()
        clock.advance(0.6)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # consumes the single probe slot
        assert not breaker.allow()  # budget exhausted

    def test_probe_success_closes_and_resets_the_window(self, clock):
        breaker = make_breaker(clock, min_samples=1, failure_threshold=1.0)
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        # the old failure window is gone: one new failure below
        # min_samples=1? threshold trips immediately at min_samples=1,
        # so check the snapshot cleared instead
        assert breaker.snapshot()["window_samples"] == 0

    def test_probe_failure_reopens_and_restarts_cooldown(self, clock):
        breaker = make_breaker(clock, min_samples=1, failure_threshold=1.0)
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(0.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()

    def test_full_cycle_is_counted_and_broadcast(self, clock):
        breaker = make_breaker(clock, min_samples=2, failure_threshold=0.5)
        seen = []
        breaker.subscribe(lambda prev, new: seen.append((prev, new)))
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record_success()
        assert seen == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]
        snapshot = breaker.snapshot()
        assert snapshot["transitions"] == {
            CLOSED: 1,
            OPEN: 1,
            HALF_OPEN: 1,
        }
        assert snapshot["state"] == CLOSED

    def test_multi_probe_half_open_needs_every_probe(self, clock):
        breaker = make_breaker(
            clock, min_samples=1, failure_threshold=1.0, half_open_probes=2
        )
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.state == HALF_OPEN  # one probe still out
        breaker.record_success()
        assert breaker.state == CLOSED
