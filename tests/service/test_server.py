"""SketchServer over loopback: ops, dedup, shedding, deadlines, drain."""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.common.errors import RemoteError, RetryExhaustedError
from repro.core import serialization, setops
from repro.observability import metrics as obs
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import TraceSink
from repro.service import AggregationClient, RetryPolicy, SketchServer
from repro.service import protocol
from repro.service.deadline import Deadline


def make_client(server, **overrides):
    host, port = server.address
    kwargs = dict(
        retry_policy=RetryPolicy(
            max_attempts=2, deadline_seconds=10.0, base_backoff_seconds=0.01
        )
    )
    kwargs.update(overrides)
    return AggregationClient(host, port, **kwargs)


class TestOps:
    def test_push_then_fetch_is_byte_identical_to_local_fold(
        self, server, sketch_factory
    ):
        client = make_client(server)
        a = sketch_factory([(1, 5), (2, 3)])
        b = sketch_factory([(100, 7), (200, 1)])
        first = client.push("agg", a)
        second = client.push("agg", b)
        assert first == {
            "seq": 1,
            "status": "OK",
            "duplicate": False,
            "applied": 1,
        }
        assert second["applied"] == 2
        remote = serialization.from_wire(client.fetch_blob("agg"))
        assert remote.to_state() == setops.union(a, b).to_state()

    def test_query_tasks_match_local_results(self, server, sketch_factory):
        client = make_client(server)
        sketch = sketch_factory([(1, 20), (2, 15), (3, 1)])
        client.push("agg", sketch)
        assert client.query("agg", "query", key=1) == sketch.query(1)
        assert client.query(
            "agg", "heavy_hitters", threshold=10
        ) == sketch.heavy_hitters(10)
        assert client.query("agg", "cardinality") == pytest.approx(
            sketch.cardinality()
        )

    def test_pair_task_against_two_aggregates(self, server, sketch_factory):
        client = make_client(server)
        a = sketch_factory([(1, 10), (2, 10)])
        b = sketch_factory([(2, 10), (3, 10)])
        client.push("left", a)
        client.push("right", b)
        merged = client.query("left", "union", other="right")
        assert merged.to_state() == setops.union(a, b).to_state()

    def test_missing_aggregate_is_not_found(self, server):
        client = make_client(server)
        with pytest.raises(RemoteError) as excinfo:
            client.query("nope", "cardinality")
        assert excinfo.value.status == "NOT_FOUND"

    def test_unknown_op_is_bad_request(self, server):
        client = make_client(server)
        with pytest.raises(RemoteError) as excinfo:
            client._call("WAT", {"op": "WAT"})
        assert excinfo.value.status == "BAD_REQUEST"

    def test_unknown_task_is_bad_request(self, server, sketch_factory):
        client = make_client(server)
        client.push("agg", sketch_factory([(1, 1)]))
        with pytest.raises(RemoteError) as excinfo:
            client._call(
                "QUERY", {"op": "QUERY", "aggregate": "agg", "task": "nope"}
            )
        assert excinfo.value.status == "BAD_REQUEST"

    def test_health_reports_aggregates(self, server, sketch_factory):
        client = make_client(server)
        client.push("agg", sketch_factory([(1, 1)]))
        health = client.health()
        assert health["status"] == "OK"
        assert health["aggregates"] == 1
        assert health["draining"] is False
        assert client.ready()


class TestIdempotency:
    def test_reused_seq_is_deduplicated(self, server, sketch_factory):
        client = make_client(server)
        sketch = sketch_factory([(1, 5)])
        first = client.push("agg", sketch)
        before = server.aggregate_state("agg")
        replay = client.push("agg", sketch, seq=first["seq"])
        assert replay["duplicate"] is True
        assert replay["applied"] == first["applied"]
        assert server.aggregate_state("agg") == before

    def test_dedup_is_per_client(self, server, sketch_factory):
        a = make_client(server, client_id="alpha")
        b = make_client(server, client_id="beta")
        sketch = sketch_factory([(1, 5)])
        assert a.push("agg", sketch)["duplicate"] is False
        # same seq number, different client identity: not a duplicate
        assert b.push("agg", sketch, seq=1)["duplicate"] is False


class TestRobustness:
    def test_garbage_frame_answered_bad_frame_then_closed(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(b"this is not a frame at all" * 2)
            header, _ = protocol.recv_message(sock, deadline=Deadline(5.0))
            assert header["status"] == "BAD_FRAME"
            # the stream offset is untrusted: the server hangs up
            sock.settimeout(5.0)
            assert sock.recv(1) == b""

    def test_read_deadline_disconnects_a_silent_client(self):
        server = SketchServer(read_deadline_seconds=0.3)
        server.start()
        try:
            host, port = server.address
            with socket.create_connection((host, port), timeout=5) as sock:
                sock.settimeout(5.0)
                started = time.monotonic()
                assert sock.recv(1) == b""  # server closed on us
                assert time.monotonic() - started < 4.0
        finally:
            server.close()

    def test_overload_sheds_with_resource_exhausted(
        self, server, sketch_factory, monkeypatch
    ):
        release = threading.Event()
        entered = threading.Event()
        import repro.service.tasks as tasks_mod

        real_run_task = tasks_mod.run_task

        def slow_run_task(sketch, task, **kwargs):
            entered.set()
            release.wait(timeout=10.0)
            return real_run_task(sketch, task, **kwargs)

        monkeypatch.setattr(tasks_mod, "run_task", slow_run_task)
        server.max_inflight = 1
        client = make_client(server)
        client.push("agg", sketch_factory([(1, 1)]))
        blocker = threading.Thread(
            target=lambda: client.query("agg", "cardinality"), daemon=True
        )
        blocker.start()
        try:
            assert entered.wait(timeout=10.0)
            shed_client = make_client(
                server, retry_policy=RetryPolicy(max_attempts=1)
            )
            with pytest.raises(RetryExhaustedError) as excinfo:
                shed_client.push("agg", sketch_factory([(2, 1)]))
            assert isinstance(excinfo.value.last_error, RemoteError)
            assert excinfo.value.last_error.status == "RESOURCE_EXHAUSTED"
            # probes bypass admission even while the window is full
            assert shed_client.health()["status"] == "OK"
        finally:
            release.set()
            blocker.join(timeout=10.0)

    def test_drain_answers_draining_then_finishes_inflight(
        self, server, sketch_factory, monkeypatch
    ):
        release = threading.Event()
        entered = threading.Event()
        import repro.service.tasks as tasks_mod

        real_run_task = tasks_mod.run_task

        def slow_run_task(sketch, task, **kwargs):
            entered.set()
            release.wait(timeout=10.0)
            return real_run_task(sketch, task, **kwargs)

        monkeypatch.setattr(tasks_mod, "run_task", slow_run_task)
        client = make_client(server)
        client.push("agg", sketch_factory([(1, 1)]))
        results = {}

        def blocked_query():
            results["value"] = client.query("agg", "cardinality")

        blocker = threading.Thread(target=blocked_query, daemon=True)
        blocker.start()
        assert entered.wait(timeout=10.0)

        # a connection opened before the drain begins stays serviceable
        host, port = server.address
        early = socket.create_connection((host, port), timeout=5)
        closer = threading.Thread(target=server.close, daemon=True)
        closer.start()
        try:
            deadline = time.monotonic() + 10.0
            while not server._draining and time.monotonic() < deadline:
                time.sleep(0.01)
            assert server._draining
            protocol.send_message(
                early, {"op": "PUSH", "aggregate": "agg"}, b"x"
            )
            header, _ = protocol.recv_message(early, deadline=Deadline(5.0))
            assert header["status"] == "DRAINING"
            protocol.send_message(early, {"op": "READY"})
            header, _ = protocol.recv_message(early, deadline=Deadline(5.0))
            assert header["status"] == "DRAINING"
        finally:
            release.set()
            blocker.join(timeout=10.0)
            closer.join(timeout=10.0)
            early.close()
        # the in-flight query completed during the drain window
        assert results["value"] == pytest.approx(1.0)


class TestObservability:
    def test_metrics_pin_the_request_and_dedup_counters(
        self, sketch_factory
    ):
        registry = MetricsRegistry()
        trace = TraceSink()
        server = SketchServer(metrics_registry=registry, trace=trace)
        server.start()
        try:
            client = make_client(server)
            with obs.enabled():
                first = client.push("agg", sketch_factory([(1, 1)]))
                client.push("agg", sketch_factory([(2, 1)]))
                client.push(
                    "agg", sketch_factory([(1, 1)]), seq=first["seq"]
                )
                client.query("agg", "cardinality")
            counters = registry.snapshot()["counters"]
            assert counters["service_pushes_applied_total"] == 2
            assert counters["service_pushes_deduplicated_total"] == 1
            assert (
                counters['service_requests_total{op="PUSH",status="OK"}']
                == 3
            )
        finally:
            server.close()
        assert "service.push.dedup" in trace.names()
        assert "service.drain.begin" in trace.names()
        assert "service.drain.end" in trace.names()
