"""Chaos acceptance: convergence under faults, dedup, breaker cycle.

A client pushing through a ``ChaosProxy`` that drops, resets, corrupts,
and delays connections must converge to the exact same aggregate bytes
as a sequential in-process fold, with zero duplicate applications.
"""

from __future__ import annotations

import random

import pytest

from repro.common.errors import DeadlineExceededError, RetryExhaustedError
from repro.core import serialization, setops
from repro.observability import metrics as obs
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import TraceSink
from repro.service import (
    AggregationClient,
    CircuitBreaker,
    RetryPolicy,
    SketchServer,
)
from repro.testing import ChaosProxy, ChaosRule

CHAOS_POLICY = RetryPolicy(
    max_attempts=6,
    deadline_seconds=8.0,
    base_backoff_seconds=0.01,
    max_backoff_seconds=0.05,
    attempt_timeout_seconds=0.4,
)


def lenient_breaker():
    # chaos tests hammer a faulty path on purpose; never trip locally
    return CircuitBreaker(
        failure_threshold=1.0, window=10_000, min_samples=10_000
    )


class TestConvergence:
    def test_pushes_converge_byte_identically_under_faults(
        self, sketch_factory
    ):
        registry = MetricsRegistry()
        trace = TraceSink()
        parts = [
            sketch_factory([(i, i + 1), (i + 100, 2)]) for i in range(3)
        ]
        expected = parts[0]
        for part in parts[1:]:
            expected = setops.union(expected, part)

        server = SketchServer(
            metrics_registry=registry, read_deadline_seconds=2.0
        )
        server.start()
        host, port = server.address
        rules = [
            ChaosRule(action="reset_on_connect"),
            ChaosRule(action="corrupt", corrupt_offset=40),
            ChaosRule(action="pass"),
            ChaosRule(action="reset_after_bytes", after_bytes=30),
            ChaosRule(action="pass"),
            ChaosRule(action="blackhole"),
            ChaosRule(action="pass"),
        ]
        try:
            with ChaosProxy(host, port, rules=rules, trace=trace) as proxy:
                proxy_host, proxy_port = proxy.address
                client = AggregationClient(
                    proxy_host,
                    proxy_port,
                    retry_policy=CHAOS_POLICY,
                    breaker=lenient_breaker(),
                    rng=random.Random(0),
                )
                with obs.enabled():
                    for part in parts:
                        response = client.push("agg", part)
                        assert response["status"] == "OK"
                assert proxy.connections_seen >= len(rules) - 1
            remote = serialization.from_wire(server.aggregate_state("agg"))
            assert remote.to_state() == expected.to_state()

            counters = registry.snapshot()["counters"]
            # zero duplicate applications despite retries over faulty links
            assert counters["service_pushes_applied_total"] == len(parts)
            assert (
                counters.get("service_pushes_deduplicated_total", 0) == 0
            )
            # the corrupt rule produced at least one CRC-rejected frame
            assert counters["service_frame_rejects_total"] >= 1
        finally:
            server.close()
        assert "fault.proxy.reset" in trace.names()
        assert "fault.proxy.blackhole" in trace.names()
        assert "fault.proxy.corrupt" in trace.names()

    def test_explicit_seq_replay_is_deduplicated_end_to_end(
        self, server, sketch_factory
    ):
        host, port = server.address
        client = AggregationClient(
            host,
            port,
            retry_policy=CHAOS_POLICY,
            breaker=lenient_breaker(),
        )
        sketch = sketch_factory([(1, 5)])
        first = client.push("agg", sketch)
        before = server.aggregate_state("agg")
        replay = client.push("agg", sketch, seq=first["seq"])
        assert replay["duplicate"] is True
        assert server.aggregate_state("agg") == before

    def test_delay_past_attempt_timeout_still_converges(
        self, sketch_factory
    ):
        server = SketchServer(read_deadline_seconds=2.0)
        server.start()
        host, port = server.address
        rules = [
            ChaosRule(action="delay", delay_seconds=1.5),  # > attempt cap
            ChaosRule(action="pass"),
        ]
        try:
            with ChaosProxy(host, port, rules=rules) as proxy:
                proxy_host, proxy_port = proxy.address
                client = AggregationClient(
                    proxy_host,
                    proxy_port,
                    retry_policy=CHAOS_POLICY,
                    breaker=lenient_breaker(),
                    rng=random.Random(1),
                )
                sketch = sketch_factory([(7, 7)])
                assert client.push("agg", sketch)["status"] == "OK"
            remote = serialization.from_wire(server.aggregate_state("agg"))
            assert remote.to_state() == sketch.to_state()
        finally:
            server.close()

    def test_blackhole_with_tiny_deadline_fails_loudly(
        self, server, sketch_factory
    ):
        host, port = server.address
        with ChaosProxy(
            host, port, rules=[ChaosRule(action="blackhole")] * 3
        ) as proxy:
            proxy_host, proxy_port = proxy.address
            client = AggregationClient(
                proxy_host,
                proxy_port,
                retry_policy=RetryPolicy(
                    max_attempts=2,
                    deadline_seconds=0.3,
                    base_backoff_seconds=0.01,
                    attempt_timeout_seconds=0.2,
                ),
                breaker=lenient_breaker(),
            )
            with pytest.raises(
                (DeadlineExceededError, RetryExhaustedError)
            ):
                client.push("agg", sketch_factory([(1, 1)]))


class TestBreakerCycle:
    def test_closed_open_half_open_closed_is_observable(
        self, server, sketch_factory
    ):
        host, port = server.address
        registry = MetricsRegistry()
        trace = TraceSink()
        rules = [
            ChaosRule(action="reset_on_connect"),
            ChaosRule(action="reset_on_connect"),
        ]  # beyond the list every connection passes through
        with ChaosProxy(host, port, rules=rules) as proxy:
            proxy_host, proxy_port = proxy.address
            breaker = CircuitBreaker(
                failure_threshold=0.5,
                window=4,
                min_samples=2,
                open_seconds=0.2,
                half_open_probes=1,
            )
            client = AggregationClient(
                proxy_host,
                proxy_port,
                retry_policy=RetryPolicy(
                    max_attempts=1, deadline_seconds=5.0
                ),
                breaker=breaker,
                metrics_registry=registry,
                trace=trace,
            )
            with obs.enabled():
                for _ in range(2):  # two resets trip the breaker
                    with pytest.raises(RetryExhaustedError):
                        client.health()
                assert breaker.state == "open"
                assert not client.ready()  # fails locally, no dial

                import time

                time.sleep(0.25)  # cooldown elapses -> half-open probe
                assert client.health()["status"] == "OK"
                assert breaker.state == "closed"

        counters = registry.snapshot()["counters"]
        for state in ("open", "half_open", "closed"):
            key = (
                "service_client_breaker_transitions_total"
                f'{{state="{state}"}}'
            )
            assert counters[key] == 1, key
        transitions = [
            (event.fields["previous"], event.fields["state"])
            for event in trace.events("service.breaker.transition")
        ]
        assert transitions == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]
