"""AggregationClient: retry schedules, typed errors, breaker integration."""

from __future__ import annotations

import random
import socket

import pytest

from repro.common.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    RemoteError,
    RetryExhaustedError,
    TransportError,
)
from repro.observability import metrics as obs
from repro.observability.metrics import MetricsRegistry
from repro.service import (
    AggregationClient,
    CircuitBreaker,
    RetryPolicy,
    SketchServer,
)


def unused_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def dead_client(**overrides):
    kwargs = dict(
        retry_policy=RetryPolicy(
            max_attempts=3,
            deadline_seconds=5.0,
            base_backoff_seconds=0.001,
            max_backoff_seconds=0.002,
        ),
        rng=random.Random(0),
    )
    kwargs.update(overrides)
    sleeps = []
    kwargs.setdefault("sleep", sleeps.append)
    client = AggregationClient("127.0.0.1", unused_port(), **kwargs)
    return client, sleeps


class TestRetrying:
    def test_connect_refused_exhausts_attempts(self):
        client, sleeps = dead_client()
        with pytest.raises(RetryExhaustedError) as excinfo:
            client.health()
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last_error, TransportError)
        assert len(sleeps) == 2  # a backoff between each attempt pair

    def test_backoff_schedule_is_deterministic(self):
        first, sleeps_a = dead_client(rng=random.Random(42))
        second, sleeps_b = dead_client(rng=random.Random(42))
        with pytest.raises(RetryExhaustedError):
            first.health()
        with pytest.raises(RetryExhaustedError):
            second.health()
        assert sleeps_a == sleeps_b
        assert all(0.001 <= s <= 0.002 for s in sleeps_a)

    def test_deadline_beats_the_attempt_budget(self):
        import time

        client, _ = dead_client(
            retry_policy=RetryPolicy(
                max_attempts=1000,
                deadline_seconds=0.2,
                base_backoff_seconds=0.05,
                max_backoff_seconds=0.05,
            ),
            breaker=CircuitBreaker(
                failure_threshold=1.0, window=10_000, min_samples=10_000
            ),
            sleep=time.sleep,
        )
        with pytest.raises(DeadlineExceededError) as excinfo:
            client.health()
        # the transient fault that consumed the budget rides along
        assert isinstance(excinfo.value.last_error, TransportError)

    def test_definitive_remote_answer_is_not_retried(
        self, server, sketch_factory
    ):
        registry = MetricsRegistry()
        host, port = server.address
        client = AggregationClient(
            host,
            port,
            retry_policy=RetryPolicy(max_attempts=5),
            metrics_registry=registry,
        )
        with obs.enabled():
            with pytest.raises(RemoteError) as excinfo:
                client.query("missing", "cardinality")
        assert excinfo.value.status == "NOT_FOUND"
        counters = registry.snapshot()["counters"]
        assert counters['service_client_attempts_total{op="QUERY"}'] == 1


class TestBreaker:
    def test_open_breaker_fails_locally(self):
        breaker = CircuitBreaker(
            failure_threshold=1.0, window=4, min_samples=1
        )
        client, _ = dead_client(
            breaker=breaker,
            retry_policy=RetryPolicy(max_attempts=1),
        )
        with pytest.raises(RetryExhaustedError):
            client.health()  # one transport failure opens the breaker
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            client.health()

    def test_breaker_transitions_are_counted_in_metrics(self):
        registry = MetricsRegistry()
        breaker = CircuitBreaker(
            failure_threshold=1.0, window=4, min_samples=1
        )
        client, _ = dead_client(
            breaker=breaker,
            retry_policy=RetryPolicy(max_attempts=1),
            metrics_registry=registry,
        )
        with obs.enabled():
            with pytest.raises(RetryExhaustedError):
                client.health()
        counters = registry.snapshot()["counters"]
        assert (
            counters['service_client_breaker_transitions_total{state="open"}']
            == 1
        )

    def test_remote_not_found_counts_as_breaker_success(
        self, server, sketch_factory
    ):
        breaker = CircuitBreaker(
            failure_threshold=0.5, window=4, min_samples=1
        )
        host, port = server.address
        client = AggregationClient(host, port, breaker=breaker)
        for _ in range(4):
            with pytest.raises(RemoteError):
                client.query("missing", "cardinality")
        assert breaker.state == "closed"


class TestIdentity:
    def test_client_id_is_deterministic_under_injected_rng(self):
        a = AggregationClient("h", 1, rng=random.Random(5))
        b = AggregationClient("h", 1, rng=random.Random(5))
        assert a.client_id == b.client_id

    def test_explicit_client_id_wins(self):
        client = AggregationClient("h", 1, client_id="me")
        assert client.client_id == "me"

    def test_push_roundtrip_after_server_restart_on_same_port(
        self, sketch_factory
    ):
        # a fresh server on the same port serves a reconnecting client
        first = SketchServer().start()
        host, port = first.address
        client = AggregationClient(
            host,
            port,
            breaker=CircuitBreaker(
                failure_threshold=1.0, window=10_000, min_samples=10_000
            ),
        )
        client.push("agg", sketch_factory([(1, 1)]))
        first.close()
        with pytest.raises((RetryExhaustedError, DeadlineExceededError)):
            client.push(
                "agg", sketch_factory([(2, 1)]), deadline_seconds=0.5
            )
