"""ClusterQuerier: fan-out merges, missing shards, degradation contract."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError, ServiceError
from repro.core import setops
from repro.core.degrade import DegradationPolicy, DegradedResult
from repro.service import (
    AggregationClient,
    CircuitBreaker,
    ClusterQuerier,
    RetryPolicy,
    SketchServer,
)

FAST_POLICY = RetryPolicy(
    max_attempts=2, deadline_seconds=5.0, base_backoff_seconds=0.01
)


def impatient_breaker():
    return CircuitBreaker(
        failure_threshold=1.0, window=10_000, min_samples=10_000
    )


@pytest.fixture
def two_servers():
    servers = [SketchServer().start(), SketchServer().start()]
    yield servers
    for server in servers:
        server.close()


def client_for(server_or_address):
    if isinstance(server_or_address, SketchServer):
        host, port = server_or_address.address
    else:
        host, port = server_or_address
    return AggregationClient(
        host,
        port,
        retry_policy=FAST_POLICY,
        breaker=impatient_breaker(),
    )


@pytest.fixture
def populated(two_servers, sketch_factory):
    parts = [
        sketch_factory([(1, 10), (2, 5)]),
        sketch_factory([(100, 20), (200, 1)]),
    ]
    clients = [client_for(server) for server in two_servers]
    for client, part in zip(clients, parts):
        client.push("agg", part)
    merged = setops.union(parts[0], parts[1])
    return clients, parts, merged


class TestHealthy:
    def test_merged_answer_matches_local_fold(self, populated):
        clients, _, merged = populated
        querier = ClusterQuerier(clients)
        assert querier.query("agg", "cardinality") == pytest.approx(
            merged.cardinality()
        )
        assert querier.query("agg", "query", key=1) == merged.query(1)

    def test_policy_wraps_a_healthy_answer_undegraded(self, populated):
        clients, _, merged = populated
        querier = ClusterQuerier(clients)
        result = querier.query(
            "agg", "cardinality", policy=DegradationPolicy.BEST_EFFORT
        )
        assert isinstance(result, DegradedResult)
        assert result.degraded is False
        assert result.value == pytest.approx(merged.cardinality())

    def test_requires_at_least_one_client(self):
        with pytest.raises(ConfigurationError):
            ClusterQuerier([])


class TestMissingShards:
    @pytest.fixture
    def one_dead(self, populated, two_servers):
        clients, parts, merged = populated
        two_servers[1].close()
        return clients, parts, merged

    def test_strict_raises_the_shard_error(self, one_dead):
        clients, _, _ = one_dead
        querier = ClusterQuerier(clients)
        with pytest.raises(ServiceError):
            querier.query(
                "agg", "cardinality", policy=DegradationPolicy.STRICT
            )
        with pytest.raises(ServiceError):
            querier.query("agg", "cardinality")  # policy=None is strict

    def test_degrade_names_the_missing_endpoint(self, one_dead):
        clients, parts, _ = one_dead
        querier = ClusterQuerier(clients)
        result = querier.query(
            "agg", "cardinality", policy=DegradationPolicy.DEGRADE
        )
        assert isinstance(result, DegradedResult)
        assert result.degraded is True
        assert clients[1].endpoint in result.reason
        assert "missing shards" in result.reason
        # the surviving shard still contributes its answer
        assert result.value == pytest.approx(parts[0].cardinality())

    def test_not_found_shard_degrades_too(self, populated, sketch_factory):
        clients, parts, _ = populated
        clients[0].push("solo", sketch_factory([(5, 5)]))
        result = ClusterQuerier(clients).query(
            "solo", "cardinality", policy=DegradationPolicy.DEGRADE
        )
        assert result.degraded is True
        assert "NOT_FOUND" in result.reason or "not found" in result.reason

    def test_best_effort_with_zero_shards_falls_back_neutral(
        self, sketch_factory
    ):
        # endpoints that were never up: every shard is missing
        import socket

        def unused_port():
            with socket.socket() as sock:
                sock.bind(("127.0.0.1", 0))
                return sock.getsockname()[1]

        clients = [
            client_for(("127.0.0.1", unused_port())) for _ in range(2)
        ]
        querier = ClusterQuerier(clients)
        result = querier.query(
            "agg",
            "cardinality",
            policy=DegradationPolicy.BEST_EFFORT,
            deadline_seconds=3.0,
        )
        assert isinstance(result, DegradedResult)
        assert result.degraded is True
        assert result.value == 0.0
        for client in clients:
            assert client.endpoint in result.reason

    def test_best_effort_zero_shards_sketch_task_still_raises(self):
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            address = sock.getsockname()
        querier = ClusterQuerier([client_for(address)])
        with pytest.raises(ConfigurationError):
            querier.query(
                "agg",
                "union",
                other="agg",
                policy=DegradationPolicy.BEST_EFFORT,
                deadline_seconds=2.0,
            )

    def test_degrade_without_best_effort_raises_when_all_missing(
        self, one_dead, two_servers
    ):
        clients, _, _ = one_dead
        two_servers[0].close()
        querier = ClusterQuerier(clients)
        with pytest.raises(ServiceError):
            querier.query(
                "agg",
                "cardinality",
                policy=DegradationPolicy.DEGRADE,
                deadline_seconds=3.0,
            )
