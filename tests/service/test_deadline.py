"""Deadline budgets: monotonic, end-to-end, typed on expiry."""

from __future__ import annotations

import pytest

from repro.common.errors import (
    ConfigurationError,
    DeadlineExceededError,
    TransportError,
)
from repro.service.deadline import Deadline


class TestDeadline:
    def test_rejects_non_positive_budget(self):
        for bad in (0, -1.0):
            with pytest.raises(ConfigurationError):
                Deadline(bad)

    def test_remaining_counts_down_on_injected_clock(self, clock):
        deadline = Deadline(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        clock.advance(0.5)
        assert deadline.remaining() == pytest.approx(1.5)
        assert not deadline.expired()
        clock.advance(1.5)
        assert deadline.remaining() == 0.0
        assert deadline.expired()

    def test_remaining_never_negative(self, clock):
        deadline = Deadline(1.0, clock=clock)
        clock.advance(5.0)
        assert deadline.remaining() == 0.0

    def test_require_returns_budget_then_raises(self, clock):
        deadline = Deadline(1.0, clock=clock)
        assert deadline.require("step") == pytest.approx(1.0)
        clock.advance(1.0)
        with pytest.raises(DeadlineExceededError):
            deadline.require("step")

    def test_require_carries_the_last_error(self, clock):
        deadline = Deadline(1.0, clock=clock)
        clock.advance(2.0)
        cause = TransportError("connection reset")
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.require("retry loop", last_error=cause)
        assert excinfo.value.last_error is cause
        assert "connection reset" in str(excinfo.value)
