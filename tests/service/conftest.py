"""Shared helpers for the aggregation-service tests.

Everything runs on loopback with ephemeral ports and deterministic
retry schedules (injected RNGs, recorded sleeps), so the suite is
parallel-safe and timing-insensitive except where a test is *about*
time (deadlines, breaker cool-downs) — those use generous margins.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Tuple

import pytest

from repro.core import DaVinciConfig, DaVinciSketch
from repro.service import SketchServer


@pytest.fixture
def sketch_factory(
    small_config: DaVinciConfig,
) -> Callable[[List[Tuple[int, int]]], DaVinciSketch]:
    """Build a small sketch from ``(key, count)`` pairs."""

    def build(pairs: List[Tuple[int, int]]) -> DaVinciSketch:
        sketch = DaVinciSketch(small_config)
        for key, count in pairs:
            sketch.insert(key, count)
        return sketch

    return build


@pytest.fixture
def server() -> Iterator[SketchServer]:
    """A started loopback server, drained and closed on teardown."""
    instance = SketchServer(read_deadline_seconds=10.0)
    instance.start()
    yield instance
    instance.close()


class VirtualClock:
    """A manually advanced clock for deadline/breaker tests."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock() -> VirtualClock:
    return VirtualClock()
