"""Frame protocol: round-trips, CRC rejection, torn frames, deadlines."""

from __future__ import annotations

import socket
import struct
import zlib

import pytest

from repro.common.errors import (
    ConfigurationError,
    DeadlineExceededError,
    TransportError,
)
from repro.service import protocol
from repro.service.deadline import Deadline


@pytest.fixture
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestEncoding:
    def test_roundtrip_header_and_blob(self, pair):
        left, right = pair
        header = {"op": "PUSH", "aggregate": "a", "seq": 3}
        blob = bytes(range(256)) * 4
        protocol.send_message(left, header, blob)
        got_header, got_blob = protocol.recv_message(
            right, deadline=Deadline(5.0)
        )
        assert got_header == header
        assert got_blob == blob

    def test_empty_blob_roundtrip(self, pair):
        left, right = pair
        protocol.send_message(left, {"status": "OK"})
        header, blob = protocol.recv_message(right, deadline=Deadline(5.0))
        assert header == {"status": "OK"}
        assert blob == b""

    def test_decode_payload_rejects_overrunning_header_length(self):
        bad = struct.pack(">I", 100) + b"{}"
        with pytest.raises(TransportError):
            protocol.decode_payload(bad)

    def test_decode_payload_rejects_non_object_header(self):
        body = b"[1,2]"
        payload = struct.pack(">I", len(body)) + body
        with pytest.raises(TransportError):
            protocol.decode_payload(payload)

    def test_oversize_payload_refused_at_encode(self):
        with pytest.raises(ConfigurationError):
            protocol.encode_message({}, b"x" * (protocol.MAX_FRAME_BYTES + 1))


class TestRejection:
    def test_single_flipped_bit_fails_the_crc(self, pair):
        left, right = pair
        frame = bytearray(
            protocol.encode_message({"op": "PUSH"}, b"payload-bytes")
        )
        frame[-3] ^= 0x10  # corrupt the payload, not the header
        left.sendall(bytes(frame))
        with pytest.raises(TransportError, match="CRC"):
            protocol.recv_message(right, deadline=Deadline(5.0))

    def test_bad_magic_rejected(self, pair):
        left, right = pair
        frame = bytearray(protocol.encode_message({"op": "PUSH"}))
        frame[0] = ord("X")
        left.sendall(bytes(frame))
        with pytest.raises(TransportError, match="magic"):
            protocol.recv_message(right, deadline=Deadline(5.0))

    def test_unknown_version_rejected(self, pair):
        left, right = pair
        frame = bytearray(protocol.encode_message({"op": "PUSH"}))
        frame[2] = 99
        left.sendall(bytes(frame))
        with pytest.raises(TransportError, match="version"):
            protocol.recv_message(right, deadline=Deadline(5.0))

    def test_declared_length_beyond_limit_rejected(self, pair):
        left, right = pair
        frame = protocol.encode_message({"op": "PUSH"}, b"x" * 128)
        left.sendall(frame)
        with pytest.raises(TransportError, match="limit"):
            protocol.recv_message(
                right, deadline=Deadline(5.0), max_frame_bytes=16
            )

    def test_torn_frame_is_a_transport_error(self, pair):
        left, right = pair
        frame = protocol.encode_message({"op": "PUSH"}, b"x" * 64)
        left.sendall(frame[: len(frame) // 2])
        left.close()
        with pytest.raises(TransportError, match="mid-frame"):
            protocol.recv_message(right, deadline=Deadline(5.0))

    def test_clean_eof_returns_none_only_with_eof_ok(self, pair):
        left, right = pair
        left.close()
        assert (
            protocol.recv_message(right, deadline=Deadline(5.0), eof_ok=True)
            is None
        )

    def test_clean_eof_without_eof_ok_raises(self, pair):
        left, right = pair
        left.close()
        with pytest.raises(TransportError):
            protocol.recv_message(right, deadline=Deadline(5.0))


class TestDeadlines:
    def test_recv_on_a_silent_peer_times_out(self, pair):
        _, right = pair
        with pytest.raises(DeadlineExceededError):
            protocol.recv_message(right, deadline=Deadline(0.2))

    def test_mid_frame_stall_times_out(self, pair):
        left, right = pair
        frame = protocol.encode_message({"op": "PUSH"}, b"x" * 64)
        left.sendall(frame[:5])  # header started, never finished
        with pytest.raises(DeadlineExceededError):
            protocol.recv_message(right, deadline=Deadline(0.2))
