"""A corrupt shard blob degrades every task consumer, never crashes one.

Satellite for the degradation contract: when one endpoint's fetched
blob fails its embedded digest (``from_wire`` raises
``StateCorruptionError``), a ``BEST_EFFORT`` cluster query must answer
with a ``DegradedResult`` naming the corrupt shard — for all nine task
consumers, scalar and sketch-valued alike.
"""

from __future__ import annotations

import pytest

from repro.common.errors import StateCorruptionError
from repro.core import serialization
from repro.core.davinci import DaVinciSketch
from repro.core.degrade import DegradationPolicy, DegradedResult
from repro.service import (
    AggregationClient,
    CircuitBreaker,
    ClusterQuerier,
    RetryPolicy,
    SketchServer,
)

NINE_CONSUMERS = [
    ("query", {"key": 1}),
    ("heavy_hitters", {"threshold": 1}),
    ("cardinality", {}),
    ("distribution", {}),
    ("entropy", {}),
    ("inner_join", {"other": "agg"}),
    ("heavy_changers", {"threshold": 1, "other": "agg"}),
    ("union", {"other": "agg"}),
    ("difference", {"other": "agg"}),
]


def flip_bit(blob: bytes) -> bytes:
    # flip inside the payload, far from the envelope braces
    corrupted = bytearray(blob)
    corrupted[len(corrupted) // 2] ^= 0x01
    return bytes(corrupted)


@pytest.fixture
def corrupt_cluster(sketch_factory, monkeypatch):
    servers = [SketchServer().start(), SketchServer().start()]
    clients = [
        AggregationClient(
            *server.address,
            retry_policy=RetryPolicy(
                max_attempts=2,
                deadline_seconds=5.0,
                base_backoff_seconds=0.01,
            ),
            breaker=CircuitBreaker(
                failure_threshold=1.0, window=10_000, min_samples=10_000
            ),
        )
        for server in servers
    ]
    parts = [
        sketch_factory([(1, 10), (2, 5)]),
        sketch_factory([(100, 20), (200, 1)]),
    ]
    for client, part in zip(clients, parts):
        client.push("agg", part)

    real_fetch = clients[1].fetch_blob

    def corrupt_fetch(aggregate, **kwargs):
        return flip_bit(real_fetch(aggregate, **kwargs))

    monkeypatch.setattr(clients[1], "fetch_blob", corrupt_fetch)
    yield clients, parts
    for server in servers:
        server.close()


def test_the_flipped_blob_really_fails_its_digest(corrupt_cluster):
    clients, _ = corrupt_cluster
    with pytest.raises(StateCorruptionError):
        serialization.from_wire(clients[1].fetch_blob("agg"))


@pytest.mark.parametrize(
    "task,args", NINE_CONSUMERS, ids=[task for task, _ in NINE_CONSUMERS]
)
def test_corrupt_shard_degrades_every_consumer(corrupt_cluster, task, args):
    clients, parts = corrupt_cluster
    querier = ClusterQuerier(clients)
    result = querier.query(
        "agg", task, policy=DegradationPolicy.BEST_EFFORT, **args
    )
    assert isinstance(result, DegradedResult)
    assert result.degraded is True
    assert clients[1].endpoint in result.reason
    if task in ("union", "difference"):
        assert isinstance(result.value, DaVinciSketch)
    else:
        assert result.value is not None


@pytest.mark.parametrize(
    "task,args", NINE_CONSUMERS, ids=[task for task, _ in NINE_CONSUMERS]
)
def test_corrupt_shard_raises_under_strict(corrupt_cluster, task, args):
    clients, _ = corrupt_cluster
    querier = ClusterQuerier(clients)
    with pytest.raises(StateCorruptionError):
        querier.query(
            "agg", task, policy=DegradationPolicy.STRICT, **args
        )


def test_surviving_shard_still_answers(corrupt_cluster):
    clients, parts = corrupt_cluster
    result = ClusterQuerier(clients).query(
        "agg", "cardinality", policy=DegradationPolicy.BEST_EFFORT
    )
    assert result.value == pytest.approx(parts[0].cardinality())
