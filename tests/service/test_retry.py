"""RetryPolicy: validation and the decorrelated-jitter backoff band."""

from __future__ import annotations

import random

import pytest

from repro.common.errors import ConfigurationError
from repro.service.retry import DEFAULT_RETRY_POLICY, RetryPolicy


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"deadline_seconds": 0.0},
            {"base_backoff_seconds": 0.0},
            {"max_backoff_seconds": 0.01, "base_backoff_seconds": 0.02},
            {"attempt_timeout_seconds": 0.0},
            {"attempt_timeout_seconds": -1.0},
        ],
    )
    def test_bad_parameters_raise(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)

    def test_default_policy_is_valid(self):
        assert DEFAULT_RETRY_POLICY.max_attempts == 4
        assert DEFAULT_RETRY_POLICY.attempt_timeout_seconds is None


class TestBackoff:
    def test_backoff_stays_inside_the_jitter_band(self):
        policy = RetryPolicy(
            base_backoff_seconds=0.05, max_backoff_seconds=2.0
        )
        rng = policy.rng(random.Random(123))
        previous = 0.0
        for _ in range(200):
            sleep = policy.backoff(previous, rng)
            assert policy.base_backoff_seconds <= sleep
            assert sleep <= policy.max_backoff_seconds
            # decorrelated jitter: next draw bounded by 3x the previous
            assert sleep <= max(
                policy.base_backoff_seconds, previous * 3.0
            ) + 1e-12
            previous = sleep

    def test_backoff_is_deterministic_under_an_injected_rng(self):
        policy = RetryPolicy()
        first = [
            policy.backoff(0.1, policy.rng(random.Random(7)))
            for _ in range(1)
        ]
        second = [
            policy.backoff(0.1, policy.rng(random.Random(7)))
            for _ in range(1)
        ]
        assert first == second

    def test_seed_drives_the_default_rng(self):
        a = RetryPolicy(seed=1)
        b = RetryPolicy(seed=1)
        c = RetryPolicy(seed=2)
        rng_a, rng_b, rng_c = a.rng(), b.rng(), c.rng()
        seq_a = [a.backoff(0.5, rng_a) for _ in range(5)]
        seq_b = [b.backoff(0.5, rng_b) for _ in range(5)]
        assert seq_a == seq_b
        # a different seed almost surely diverges somewhere in 5 draws
        seq_c = [c.backoff(0.5, rng_c) for _ in range(5)]
        assert seq_a != seq_c
