"""Shared plumbing for the static-analysis test suite.

Makes the repo root importable (so ``tools.sketchlint`` resolves even when
pytest is invoked from a different working directory) and exposes the
fixture corpus under ``tests/analysis/fixtures/``.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:  # pragma: no cover - environment guard
    sys.path.insert(0, str(REPO_ROOT))

FIXTURES = Path(__file__).parent / "fixtures"
SRC_REPRO = REPO_ROOT / "src" / "repro"


def lint_fixture(name: str, rule) -> List:
    """Lint one fixture file with a single rule instance."""
    from tools.sketchlint.engine import lint_file

    return lint_file(FIXTURES / name, [rule])


def lint_pack(code: str, name: str) -> List:
    """Lint one file of a rule's fixture pack (``fixtures/sk10x/<name>``)."""
    from tools.sketchlint.engine import lint_file
    from tools.sketchlint.rules import rules_by_code

    rule_cls = rules_by_code()[code.upper()]
    return lint_file(FIXTURES / code.lower() / name, [rule_cls()])


def pack_path(code: str, name: str) -> Path:
    return FIXTURES / code.lower() / name


@pytest.fixture
def invariants_on():
    """Arm the runtime sanitizer for one test, restoring the prior state."""
    from repro.common import invariants as inv

    previous = inv.set_enabled(True)
    yield inv
    inv.set_enabled(previous)
