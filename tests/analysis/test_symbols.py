"""Tests for the whole-package symbol index."""

from __future__ import annotations

import ast
import textwrap

from tools.sketchlint.symbols import SymbolIndex


def _index(**sources: str) -> SymbolIndex:
    files = {
        f"{name}.py": ast.parse(textwrap.dedent(code))
        for name, code in sources.items()
    }
    return SymbolIndex.build(files)


def test_module_functions_and_methods_share_the_name_table():
    index = _index(
        facade="""
        class Facade:
            def heavy(self, k, policy=None):
                return heavy(self, k)
        """,
        tasks="""
        def heavy(sketch, k):
            return k
        """,
    )
    infos = index.functions_named("heavy")
    assert len(infos) == 2
    methods = [i for i in infos if i.is_method]
    functions = [i for i in infos if not i.is_method]
    assert methods[0].qualname == "Facade.heavy"
    assert methods[0].class_name == "Facade"
    assert functions[0].qualname == "heavy"
    assert functions[0].path == "tasks.py"


def test_param_names_cover_every_kind():
    index = _index(
        mod="""
        def f(a, b, *rest, c, **extra):
            return a
        """
    )
    info = index.functions_named("f")[0]
    assert info.param_names() == ["a", "b", "c", "rest", "extra"]
    assert info.positional_param_names() == ["a", "b"]
    assert info.has_param("extra")
    assert not info.has_param("missing")


def test_self_attributes_collect_all_assignment_forms():
    index = _index(
        sketch="""
        class Sketch:
            def __init__(self):
                self.table = []
                self._decode_cache = None

            def insert(self, key):
                self.insertions += 1

            def annotate(self):
                self.note: str = "x"
        """
    )
    (cls,) = index.classes_named("Sketch")
    assert cls.self_attributes == {
        "table",
        "_decode_cache",
        "insertions",
        "note",
    }
    assert set(cls.methods) == {"__init__", "insert", "annotate"}


def test_classes_with_attribute_filters_by_self_assignment():
    index = _index(
        a="""
        class Cached:
            def __init__(self):
                self._decode_cache = None
        """,
        b="""
        class Plain:
            def __init__(self):
                self.table = []
        """,
    )
    owners = [c.name for c in index.classes_with_attribute("_decode_cache")]
    assert owners == ["Cached"]


def test_module_function_is_scoped_to_one_file():
    index = _index(
        a="def shared():\n    return 1\n",
        b="def shared():\n    return 2\n",
    )
    in_a = index.module_function("a.py", "shared")
    assert in_a is not None and in_a.path == "a.py"
    assert index.module_function("a.py", "absent") is None
    assert index.module_function("missing.py", "shared") is None
    assert len(index.functions_named("shared")) == 2


def test_nested_functions_are_not_indexed():
    index = _index(
        mod="""
        def outer():
            def inner():
                return 0
            return inner
        """
    )
    assert index.functions_named("outer")
    assert not index.functions_named("inner")
