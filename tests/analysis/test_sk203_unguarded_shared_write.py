"""SK203 — unguarded shared writes from thread-reachable code."""

from __future__ import annotations

from tests.analysis.conftest import lint_pack


def test_bad_pack_flags_thread_and_handler_writes():
    violations = lint_pack("sk203", "bad.py")
    assert [v.code for v in violations] == ["SK203"] * 3
    assert [v.line for v in violations] == [19, 23, 32]
    by_line = {v.line: v.message for v in violations}
    # direct write in the Thread target
    assert "'self._items'" in by_line[19]
    assert "Collector._run" in by_line[19]
    # write reached interprocedurally (_run -> _tally)
    assert "'self.total'" in by_line[23]
    assert "Collector._lock" in by_line[23]
    # RequestHandler.handle counts as a concurrent entry point
    assert "Handler.handle" in by_line[32]


def test_good_pack_is_clean():
    # lock-guarded writes, exempt __init__/_record* helpers, methods
    # never reached by a thread, and classes that declare no locks
    assert lint_pack("sk203", "good.py") == []


def test_pragma_pack_is_suppressed():
    assert lint_pack("sk203", "pragma.py") == []
