"""SK205 — Condition.wait() outside a predicate re-check loop."""

from __future__ import annotations

from tests.analysis.conftest import lint_pack


def test_bad_pack_flags_if_wrapped_and_bare_waits():
    violations = lint_pack("sk205", "bad.py")
    assert [v.code for v in violations] == ["SK205"] * 2
    assert [v.line for v in violations] == [15, 21]
    for violation in violations:
        assert "predicate re-check loop" in violation.message
        assert "Mailbox._cond" in violation.message
    # a timeout does not excuse the missing loop: the predicate may
    # still be false when wait() returns
    assert "wait_for" in violations[1].message


def test_good_pack_is_clean():
    # while-wrapped waits (bare and bounded) and wait_for all pass
    assert lint_pack("sk205", "good.py") == []


def test_pragma_pack_is_suppressed():
    assert lint_pack("sk205", "pragma.py") == []
