"""Tests for the forward dataflow engine and the stock tag lattice."""

from __future__ import annotations

import ast
import textwrap
from typing import Optional

from tools.sketchlint.cfg import Node, build_cfg
from tools.sketchlint.dataflow import (
    TagAnalysis,
    TagState,
    assigned_names,
    attribute_chain,
    call_name,
    run_forward,
)


class _TaintAnalysis(TagAnalysis):
    """Toy taint: ``source()`` taints; assigning a constant clears."""

    def transfer(self, node: Node, state: TagState) -> TagState:
        stmt = node.stmt
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                value = stmt.value
                if isinstance(value, ast.Call) and call_name(value) == "source":
                    return state.set(target.id, {"taint"})
                if isinstance(value, ast.Constant):
                    return state.clear(target.id)
                if isinstance(value, ast.Name):
                    return state.set(target.id, state.tags_of(value.id))
        return state


def _analyse(source: str):
    tree = ast.parse(textwrap.dedent(source))
    cfg = build_cfg(tree.body[0])
    return cfg, run_forward(cfg, _TaintAnalysis())


def test_straight_line_propagation():
    _cfg, result = _analyse(
        """
        def f():
            x = source()
            y = x
            return y
        """
    )
    assert result.exit_state is not None
    assert result.exit_state.has("x", "taint")
    assert result.exit_state.has("y", "taint")


def test_reassignment_kills_the_tag():
    _cfg, result = _analyse(
        """
        def f():
            x = source()
            x = 0
            return x
        """
    )
    assert result.exit_state is not None
    assert not result.exit_state.has("x", "taint")


def test_join_is_union_over_branches():
    _cfg, result = _analyse(
        """
        def f(flag):
            if flag:
                x = source()
            else:
                x = 0
            return x
        """
    )
    assert result.exit_state is not None
    # may-analysis: tainted on one in-edge means tainted after the join
    assert result.exit_state.has("x", "taint")


def test_loop_reaches_fixpoint_with_carried_tag():
    _cfg, result = _analyse(
        """
        def f(items):
            x = 0
            for item in items:
                x = source()
            return x
        """
    )
    assert result.exit_state is not None
    assert result.exit_state.has("x", "taint")


def test_contribution_update_is_not_sticky():
    # A predecessor's contribution must be *replaced*, not accumulated:
    # after the loop re-clears x on every path, the exit must not keep a
    # stale taint from an earlier worklist iteration of the same edge.
    _cfg, result = _analyse(
        """
        def f(items):
            x = 0
            for item in items:
                x = source()
                x = 0
            return x
        """
    )
    assert result.exit_state is not None
    assert not result.exit_state.has("x", "taint")


class _RefiningAnalysis(_TaintAnalysis):
    def refine(
        self, test: Optional[ast.expr], label: Optional[str], state: TagState
    ) -> TagState:
        # on the true arm of `if clean:` declare x clean
        if (
            isinstance(test, ast.Name)
            and test.id == "clean"
            and label == "true"
        ):
            return state.clear("x")
        return state


def test_branch_refinement_sharpens_one_arm_only():
    tree = ast.parse(
        textwrap.dedent(
            """
            def f(clean):
                x = source()
                if clean:
                    y = x
                else:
                    z = x
                return x
            """
        )
    )
    cfg = build_cfg(tree.body[0])
    result = run_forward(cfg, _RefiningAnalysis())
    by_line = {
        node.stmt.lineno: node
        for node in cfg.statement_nodes()
        if node.stmt is not None
    }
    true_arm = result.before[by_line[5].uid]
    false_arm = result.before[by_line[7].uid]
    assert not true_arm.has("x", "taint")
    assert false_arm.has("x", "taint")
    # after the join the refinement washes back out (union join)
    assert result.exit_state is not None
    assert result.exit_state.has("x", "taint")


def test_raise_state_collects_exceptional_exits():
    _cfg, result = _analyse(
        """
        def f():
            x = source()
            raise ValueError(x)
        """
    )
    assert result.raise_state is not None
    assert result.raise_state.has("x", "taint")
    assert result.exit_state is None


# --------------------------------------------------------------------- #
# TagState semantics
# --------------------------------------------------------------------- #
def test_tagstate_is_immutable_and_merge_unions():
    a = TagState().set("x", {"t1"})
    b = TagState().set("x", {"t2"}).set("y", {"t3"})
    merged = a.merge(b)
    assert merged.tags_of("x") == frozenset({"t1", "t2"})
    assert merged.tags_of("y") == frozenset({"t3"})
    # the operands are untouched
    assert a.tags_of("x") == frozenset({"t1"})
    assert b.tags_of("x") == frozenset({"t2"})


def test_tagstate_set_empty_is_clear():
    state = TagState().set("x", {"t"}).set("x", set())
    assert state == TagState()
    assert hash(state) == hash(TagState())


# --------------------------------------------------------------------- #
# syntactic helpers
# --------------------------------------------------------------------- #
def test_assigned_names_unpacks_tuples():
    stmt = ast.parse("a, (b, c) = f()").body[0]
    assert isinstance(stmt, ast.Assign)
    assert assigned_names(stmt.targets[0]) == ["a", "b", "c"]


def test_attribute_chain_is_subscript_transparent():
    expr = ast.parse("self.table[i].slots", mode="eval").body
    assert attribute_chain(expr) == ["self", "table", "slots"]
    assert attribute_chain(ast.parse("f().x", mode="eval").body) is None


def test_call_name_resolves_attributes_and_names():
    assert call_name(ast.parse("a.b.f(1)", mode="eval").body) == "f"
    assert call_name(ast.parse("g(1)", mode="eval").body) == "g"
    assert call_name(ast.parse("(h or g)(1)", mode="eval").body) == ""
