"""Every raise site in repro.core uses the package exception hierarchy.

The dynamic counterpart of sketchlint's SK003: instead of trusting the
name-based static rule, resolve each raised class against
``repro.common.errors`` and verify it is a genuine ``ReproError`` subclass
(and keeps its stdlib compatibility base where documented).
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.common import errors

import repro.core

CORE_DIR = Path(repro.core.__file__).parent
CORE_FILES = sorted(CORE_DIR.rglob("*.py"))


def _raised_class_names(tree: ast.AST):
    for node in ast.walk(tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            yield node.lineno, exc.func.id
        elif isinstance(exc, ast.Name) and exc.id[:1].isupper():
            yield node.lineno, exc.id


@pytest.mark.parametrize("path", CORE_FILES, ids=lambda p: p.name)
def test_public_raises_are_repro_errors(path: Path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    for lineno, name in _raised_class_names(tree):
        exc_class = getattr(errors, name, None)
        assert exc_class is not None, (
            f"{path.name}:{lineno} raises {name}, which is not part of "
            "repro.common.errors"
        )
        assert issubclass(exc_class, errors.ReproError), (
            f"{path.name}:{lineno} raises {name}, which does not derive "
            "from ReproError"
        )


def test_hierarchy_keeps_stdlib_compatibility_bases():
    # Callers that predate the hierarchy may still catch the stdlib bases.
    assert issubclass(errors.ConfigurationError, ValueError)
    assert issubclass(errors.IncompatibleSketchError, ValueError)
    assert issubclass(errors.DecodeError, RuntimeError)
    assert issubclass(errors.InvariantViolation, AssertionError)
    for name in (
        "ConfigurationError",
        "DecodeError",
        "IncompatibleSketchError",
        "InvariantViolation",
    ):
        assert issubclass(getattr(errors, name), errors.ReproError)
