"""Strict-typing and style gates, run when the tools are available.

``mypy`` and ``ruff`` are CI dependencies, not runtime dependencies; in
environments without them these tests skip rather than fail, while the
GitHub workflow installs and enforces both.  The configuration they run
under lives in ``pyproject.toml`` (``[tool.mypy]`` / ``[tool.ruff]``) so
Makefile, pre-commit, CI and this test all execute the identical gate.
"""

from __future__ import annotations

import shutil
import subprocess

import pytest

from tests.analysis.conftest import REPO_ROOT

RUFF = shutil.which("ruff")
MYPY = shutil.which("mypy")


def _run(command):
    return subprocess.run(
        command,
        cwd=REPO_ROOT,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        timeout=600,
    )


@pytest.mark.skipif(RUFF is None, reason="ruff is not installed (CI-only gate)")
def test_ruff_clean_on_src_and_tools():
    result = _run([RUFF, "check", "src", "tools"])
    assert result.returncode == 0, result.stdout


@pytest.mark.skipif(MYPY is None, reason="mypy is not installed (CI-only gate)")
def test_mypy_strict_clean_on_common_and_core():
    # Packages and strictness come from [tool.mypy] in pyproject.toml.
    result = _run([MYPY])
    assert result.returncode == 0, result.stdout


def test_pyproject_declares_both_gates():
    text = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
    assert "[tool.mypy]" in text
    assert "strict = true" in text
    assert "[tool.ruff]" in text
