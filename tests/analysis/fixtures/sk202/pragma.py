"""SK202 with the finding suppressed by pragma."""

import threading
import time


class Relay:
    def __init__(self):
        self._lock = threading.Lock()

    def nap(self):
        with self._lock:
            time.sleep(0.5)  # sketchlint: disable=SK202
