"""SK202 clean fixtures: I/O outside the region, bounded waits inside."""

import socket
import threading
import time


class Relay:
    def __init__(self):
        self._lock = threading.Lock()
        self._sock = socket.socket()
        self._queue = None
        self.last = b""

    def pump(self):
        data = self._sock.recv(4096)
        with self._lock:
            self.last = data
        return data

    def nap(self):
        self._lock.acquire()
        try:
            self.last = b"napping"
        finally:
            self._lock.release()
        time.sleep(0.5)

    def reap(self, worker):
        with self._lock:
            worker.join(timeout=2.0)

    def drain_queue(self):
        with self._lock:
            return self._queue.get(timeout=0.5)


class Gate:
    """wait() on the held condition is the one legitimate block."""

    def __init__(self):
        self._cond = threading.Condition()
        self.ready = False

    def block(self):
        with self._cond:
            while not self.ready:
                self._cond.wait(timeout=1.0)
