"""SK202 true positives: blocking calls inside held lock regions."""

import socket
import threading
import time


class Relay:
    def __init__(self):
        self._lock = threading.Lock()
        self._sock = socket.socket()
        self._queue = None

    def pump(self):
        with self._lock:
            return self._sock.recv(4096)

    def nap(self):
        self._lock.acquire()
        try:
            time.sleep(0.5)
        finally:
            self._lock.release()

    def reap(self, worker):
        with self._lock:
            worker.join()

    def drain_queue(self):
        with self._lock:
            return self._queue.get()


class Gate:
    """Waiting on one condition while holding an unrelated lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self._cond = threading.Condition()

    def stall(self):
        with self._lock:
            with self._cond:
                while True:
                    self._cond.wait()
