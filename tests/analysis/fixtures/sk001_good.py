"""SK001 fixture: every field write reduced in the same statement."""


def to_field(value, prime):
    return value % prime


class GoodFermat:
    def __init__(self, rows, width, prime):
        self.prime = prime
        # Whole-array (re)bindings are structural, not element writes.
        self.ids = [[0] * width for _ in range(rows)]

    def encode(self, row, j, key, count):
        p = self.prime
        self.ids[row][j] = (self.ids[row][j] + count * key) % p

    def renormalize(self, row, j):
        self.ids[row][j] %= self.prime

    def encode_via_helper(self, row, j, delta):
        self.ids[row][j] = to_field(self.ids[row][j] + delta, self.prime)

    def copy_is_not_arithmetic(self, row, j, value):
        # A plain (non-arithmetic) store needs no reduction.
        self.ids[row][j] = value
