"""SK103 positive fixture: asymmetric state key sets, both directions."""


def to_state(sketch):
    state = {
        "version": 2,
        "rows": list(sketch.rows),
        "checksum": 0,
    }
    return state


def from_state(state):
    version = state["version"]
    rows = state["rows"]
    seed = state["seed"]
    return version, rows, seed
