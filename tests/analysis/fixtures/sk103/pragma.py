"""SK103 pragma fixture: the asymmetry, explicitly suppressed."""


def to_state(sketch):  # sketchlint: disable=SK103
    state = {
        "version": 2,
        "checksum": 0,
    }
    return state


def from_state(state):  # sketchlint: disable=SK103
    return state["version"], state["seed"]
