"""SK103 negative fixture: symmetric keys, including helper-added ones."""


def _stamp(state):
    state["digest"] = "d"
    return state


def to_state(sketch):
    state = {
        "version": 2,
        "rows": list(sketch.rows),
    }
    return _stamp(state)


def from_state(state):
    if "digest" not in state:
        raise KeyError("unsigned state")
    for key in ("version", "rows"):
        if key not in state:
            raise KeyError(key)
    return state["version"], state.get("rows")
