"""SK104 positive fixture: unreduced intermediates reaching sinks."""

import struct


def fold(ids, count, key, p):
    acc = ids[0] + count * key
    if acc == key:
        return True
    ids[0] = acc
    return False


def emit(ids, count, key, p):
    total = ids[0] + count * key
    return struct.pack("<q", total)
