"""SK104 pragma fixture: the unreduced flow, explicitly suppressed."""


def fold(ids, count, key, p):
    acc = ids[0] + count * key
    if acc == key:  # sketchlint: disable=SK104
        return True
    return False
