"""SK104 negative fixture: every flow reduced before its sink."""

import struct


def fold(ids, count, key, p):
    acc = (ids[0] + count * key) % p
    if acc == key:
        return True
    ids[0] = acc
    return False


def fold_late(ids, count, key, p):
    acc = ids[0] + count * key
    acc %= p
    ids[0] = acc
    return acc == 0


def emit(ids, count, key, p):
    total = to_field(ids[0] + count * key)
    return struct.pack("<q", total)


def to_field(value):
    return value
