"""SK001 fixture: unreduced arithmetic written into field-residue state.

Never imported — parsed by tests/analysis/test_sk001_field_arithmetic.py.
"""


class BadFermat:
    def __init__(self, rows, width, prime):
        self.prime = prime
        self.ids = [[0] * width for _ in range(rows)]

    def encode(self, row, j, key, count):
        # Both statements leave the residue unreduced: SK001 twice.
        self.ids[row][j] = self.ids[row][j] + count * key
        self.ids[row][j] += count * key

    def negate(self, row, j):
        # Unary minus is arithmetic too.
        self.ids[row][j] = -self.ids[row][j]
