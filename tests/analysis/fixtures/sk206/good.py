"""SK206 clean fixtures: snapshot under the lock, record after release."""

import threading

from repro import observability as _obs


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self._rows = {}

    def put(self, key, value):
        with self._lock:
            self._rows[key] = value
            size = len(self._rows)
        self._record_put(key, size)

    def put_guarded(self, key, value):
        with self._lock:
            if not _obs.enabled():
                self._rows[key] = value
        _obs.counter("store.puts").inc()

    def _record_put(self, key, size):
        # the recorder implementation itself is exempt
        _obs.counter("store.puts").inc()
        _obs.histogram("store.size").observe(size)
