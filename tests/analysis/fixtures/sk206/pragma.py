"""SK206 with the finding suppressed by pragma."""

import threading

from repro import observability as _obs


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self._rows = {}

    def put(self, key, value):
        with self._lock:
            self._rows[key] = value
            _obs.counter("store.puts").inc()  # sketchlint: disable=SK206
