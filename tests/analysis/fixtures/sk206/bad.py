"""SK206 true positives: recorder calls issued while a lock is held."""

import threading

from repro import observability as _obs


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self._rows = {}

    def put(self, key, value):
        with self._lock:
            self._rows[key] = value
            self._record_put(key)

    def put_counted(self, key, value):
        with self._lock:
            self._rows[key] = value
            _obs.counter("store.puts").inc()

    def put_traced(self, key, value):
        with self._lock:
            self._rows[key] = value
            self._sink().emit({"key": key})

    def _locked_insert(self, key, value):
        # only ever called with the lock held -> callers_held kicks in
        self._rows[key] = value
        _obs.histogram("store.size").observe(len(self._rows))

    def bulk(self, pairs):
        with self._lock:
            for key, value in pairs:
                self._locked_insert(key, value)

    def _record_put(self, key):
        _obs.counter("store.puts").inc()

    def _sink(self):
        return _obs.registry()
