"""SK002 fixture: seeded, injected randomness only."""

import random


def make_rng(seed, rng=None):
    if rng is not None:
        return rng
    return random.Random(seed)


class Sampler:
    def __init__(self, seed, rng=None):
        self._rng = rng if rng is not None else random.Random(seed ^ 0x51)

    def draw(self):
        # Drawing from an injected instance is fine — the receiver is not
        # the ``random`` module.
        return self._rng.random()

    def pick(self, items):
        return self._rng.choice(items)
