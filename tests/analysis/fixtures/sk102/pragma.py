"""SK102 pragma fixture: the unguarded call, explicitly suppressed."""

from repro import observability as _obs


class Pipeline:
    def record_total(self, total):
        self._observe().totals.observe(total)  # sketchlint: disable=SK102

    def _observe(self):
        return object()
