"""SK102 negative fixture: hoisted guard reads, guarded recorder calls."""

from repro import observability as _obs


class Pipeline:
    def process(self, items):
        observing = _obs.ENABLED
        for item in items:
            if observing:
                self._observe().seen.inc()
            self.handle(item)

    def finish(self, total):
        if not _obs.ENABLED:
            return total
        self._observe().totals.observe(total)
        return total

    def tail(self, items, had_state):
        if _obs.ENABLED and had_state:
            self._observe().resumes.inc()
        return items

    def handle(self, item):
        return item

    def _observe(self):
        return object()


def control_plane(path):
    # enabling/dumping the layer is by definition outside any guard
    with _obs.enabled():
        return _obs.snapshot()
