"""SK102 positive fixture: unguarded obs call + per-item guard read."""

from repro import observability as _obs


class Pipeline:
    def process(self, items):
        for item in items:
            if _obs.ENABLED:
                self._observe().seen.inc()
            self.handle(item)

    def record_total(self, total):
        self._observe().totals.observe(total)

    def handle(self, item):
        return item

    def _observe(self):
        return object()
