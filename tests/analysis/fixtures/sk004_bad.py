"""SK004 fixture: merge-family methods touching counters unchecked."""


class IncompatibleSketchError(ValueError):
    pass


class BadSketch:
    def __init__(self, width):
        self.width = width
        self.counters = [0] * width

    def merged(self, other):
        # No compatibility evidence anywhere: SK004.
        result = BadSketch(self.width)
        for j in range(self.width):
            result.counters[j] = self.counters[j] + other.counters[j]
        return result

    def subtracted(self, other):
        # Check exists but only after the counters were written: SK004.
        result = BadSketch(self.width)
        for j in range(self.width):
            result.counters[j] = self.counters[j] - other.counters[j]
        self.check_compatible(other)
        return result

    def check_compatible(self, other):
        if self.width != other.width:
            raise IncompatibleSketchError("width mismatch")
