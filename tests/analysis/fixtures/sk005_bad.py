"""SK005 fixture: allocation, handlers and floats in the per-item path."""


class BadCounter:
    def __init__(self, width):
        self.slots = [0] * width

    def insert(self, key, count=1):
        try:
            positions = [hash(key) % len(self.slots) for _ in range(2)]
        except TypeError:
            return
        for j in positions:
            self.slots[j] += int(count * 1.5)
