"""SK204 true positives: threads + forks mixed in one module."""

import multiprocessing
import threading


def _child(payload):
    return payload


class Hybrid:
    def __init__(self):
        self._lock = threading.Lock()
        self._watcher = None

    def start(self):
        self._watcher = threading.Thread(target=self._watch, daemon=True)
        self._watcher.start()
        worker = multiprocessing.Process(
            target=_child, args=(self._lock,)
        )
        worker.start()
        bound = multiprocessing.Process(target=self._watch)
        bound.start()
        return worker, bound

    def _watch(self):
        return self._watcher
