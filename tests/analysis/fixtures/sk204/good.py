"""SK204 clean fixture: the sharded-runtime shape — processes only,
module-level targets, queue arguments."""

import multiprocessing


def _shard_worker(inbox, outbox):
    while True:
        item = inbox.get()
        if item is None:
            return
        outbox.put(item)


class ShardPool:
    def __init__(self, shards):
        self.shards = int(shards)
        self._procs = []

    def start(self):
        for _ in range(self.shards):
            inbox = multiprocessing.Queue()
            outbox = multiprocessing.Queue()
            proc = multiprocessing.Process(
                target=_shard_worker, args=(inbox, outbox)
            )
            proc.start()
            self._procs.append(proc)
        return self._procs
