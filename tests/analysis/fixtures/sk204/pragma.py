"""SK204 with the findings suppressed by pragma."""

import multiprocessing
import threading


def _child(payload):
    return payload


class Hybrid:
    def __init__(self):
        self._lock = threading.Lock()

    def start(self):
        watcher = threading.Thread(target=self._watch, daemon=True)
        watcher.start()
        worker = multiprocessing.Process(  # sketchlint: disable=SK204
            target=_child,
            args=(self._lock,),
        )
        worker.start()
        return worker

    def _watch(self):
        return None
