"""SK005 fixture: a clean per-item hot path."""

#: float constants belong at module level, not in the hot path
DECAY_BASE = 1.08


class GoodCounter:
    def __init__(self, width):
        # Comprehensions at construction time are fine.
        self.slots = [0 for _ in range(width)]

    def insert(self, key, count=1):
        j = hash(key) % len(self.slots)
        self.slots[j] += count

    def insert_all(self, keys):
        # Batch helpers are out of scope; they may amortize allocations.
        sizes = [1 for _ in keys]
        for key, size in zip(keys, sizes):
            self.insert(key, size)


def insert(table, key):
    # Module-level functions named ``insert`` are not hot-path methods.
    table[key] = [key for _ in range(1)]
