"""SK205 with the finding suppressed by pragma."""

import threading


class Mailbox:
    def __init__(self):
        self._cond = threading.Condition()
        self._payload = None

    def take(self):
        with self._cond:
            self._cond.wait()  # sketchlint: disable=SK205
            return self._payload
