"""SK205 clean fixtures: waits wrapped in predicate re-check loops."""

import threading


class Mailbox:
    def __init__(self):
        self._cond = threading.Condition()
        self._ready = False
        self._payload = None

    def take(self):
        with self._cond:
            while not self._ready:
                self._cond.wait()
            self._ready = False
            return self._payload

    def take_bounded(self):
        with self._cond:
            while not self._ready:
                self._cond.wait(timeout=1.0)
            return self._payload

    def take_predicated(self):
        with self._cond:
            self._cond.wait_for(lambda: self._ready)
            return self._payload
