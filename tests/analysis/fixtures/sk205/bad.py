"""SK205 true positives: Condition.wait() without a predicate re-check loop."""

import threading


class Mailbox:
    def __init__(self):
        self._cond = threading.Condition()
        self._ready = False
        self._payload = None

    def take(self):
        with self._cond:
            if not self._ready:
                self._cond.wait()
            self._ready = False
            return self._payload

    def take_eventually(self):
        with self._cond:
            self._cond.wait(timeout=5.0)
            return self._payload
