"""SK201 clean fixtures: global order, RLock re-entry, sorted groups."""

import threading


class Transfer:
    """Both paths honor the same acquisition order: accounts, journal."""

    def __init__(self):
        self._accounts = threading.Lock()
        self._journal = threading.Lock()

    def debit(self):
        with self._accounts:
            with self._journal:
                return "debit"

    def audit(self):
        with self._accounts:
            with self._journal:
                return "audit"


class Reread:
    """RLock re-entry through a helper is reentrant-safe, not a cycle."""

    def __init__(self):
        self._guard = threading.RLock()
        self.total = 0

    def bump(self):
        with self._guard:
            return self._safe_read()

    def _safe_read(self):
        with self._guard:
            return self.total


class Shard:
    def __init__(self, name):
        self.name = name
        self.lock = threading.Lock()


class PairRunner:
    """Name-sorted group acquisition: acyclic by construction."""

    def run_pair(self, left, right):
        ordered = [lock for _, lock in sorted(
            [(left.name, left.lock), (right.name, right.lock)]
        )]
        for lock in ordered:
            lock.acquire()
        try:
            return (left.name, right.name)
        finally:
            for lock in reversed(ordered):
                lock.release()


class Rebound:
    """Aliasing and try/finally release keep the walk precise."""

    def __init__(self):
        self._lock = threading.Lock()

    def once(self):
        lock = self._lock
        lock.acquire()
        try:
            return 1
        finally:
            lock.release()
