"""SK201 true positives: an ABBA pair and an interprocedural self-deadlock."""

import threading


class Transfer:
    """Two paths acquire the same pair of locks in opposite order."""

    def __init__(self):
        self._accounts = threading.Lock()
        self._journal = threading.Lock()

    def debit(self):
        with self._accounts:
            with self._journal:
                return "debit"

    def audit(self):
        with self._journal:
            with self._accounts:
                return "audit"


class Recount:
    """A non-reentrant lock re-acquired through a private helper."""

    def __init__(self):
        self._guard = threading.Lock()
        self.total = 0

    def bump(self):
        with self._guard:
            return self._unsafe_read()

    def _unsafe_read(self):
        with self._guard:
            return self.total
