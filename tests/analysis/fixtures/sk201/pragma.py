"""SK201 with every finding suppressed by pragma."""

import threading


class Transfer:
    def __init__(self):
        self._accounts = threading.Lock()
        self._journal = threading.Lock()

    def debit(self):
        with self._accounts:
            with self._journal:  # sketchlint: disable=SK201
                return "debit"

    def audit(self):
        with self._journal:
            with self._accounts:  # sketchlint: disable=SK201
                return "audit"
