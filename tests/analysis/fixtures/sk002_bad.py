"""SK002 fixture: global-state randomness in library-style code."""

import random

import numpy as np
from random import randint


def jitter():
    return random.random()


def shuffled(items):
    random.shuffle(items)
    return items


def make_rng():
    return random.Random()


def numpy_draw():
    return np.random.rand(3)


def pick(limit):
    return randint(0, limit)
