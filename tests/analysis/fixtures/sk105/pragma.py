"""SK105 pragma fixture: the dropped thread, explicitly suppressed."""


class Facade:
    def heavy(self, k, policy=None):
        if policy is not None:
            return heavy(self, k)  # sketchlint: disable=SK105
        return heavy(self, k)


def heavy(sketch, k):  # sketchlint: disable=SK105
    return k


def entropy(sketch, policy=None):  # sketchlint: disable=SK105
    return 0.0
