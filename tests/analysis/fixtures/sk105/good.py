"""SK105 negative fixture: the policy thread held end to end."""


class Facade:
    def heavy(self, k, policy=None):
        if policy is not None:
            return heavy(self, k, policy=policy)
        # policy is provably None here: the bare call is legal
        return heavy(self, k)


def heavy(sketch, k, policy=None):
    if policy is None:
        return k
    return (k, policy)
