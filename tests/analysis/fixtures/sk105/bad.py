"""SK105 positive fixture: all three ways to drop the policy thread."""


class Facade:
    def heavy(self, k, policy=None):
        if policy is not None:
            return heavy(self, k)
        return heavy(self, k)


def heavy(sketch, k):
    return k


def entropy(sketch, policy=None):
    return 0.0
