"""SK004 fixture: compatibility established before any counter write."""


class IncompatibleSketchError(ValueError):
    pass


class GoodSketch:
    def __init__(self, width):
        self.width = width
        self.counters = [0] * width

    def check_compatible(self, other):
        if self.width != other.width:
            raise IncompatibleSketchError("width mismatch")

    def merged(self, other):
        self.check_compatible(other)
        result = GoodSketch(self.width)
        for j in range(self.width):
            result.counters[j] = self.counters[j] + other.counters[j]
        return result

    def subtracted(self, other):
        # Inline-raise style counts as evidence too.
        if self.width != other.width:
            raise IncompatibleSketchError("width mismatch")
        result = GoodSketch(self.width)
        for j in range(self.width):
            result.counters[j] = self.counters[j] - other.counters[j]
        return result


class Wrapper:
    def __init__(self, inner):
        self.inner = inner

    def union_with(self, other):
        # Pure delegation writes no counters; safety is the delegate's job.
        return Wrapper(self.inner.merged(other.inner))
