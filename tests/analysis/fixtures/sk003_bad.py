"""SK003 fixture: foreign raises, bare except, assert."""


def checked(value):
    assert value > 0, "value must be positive"
    return value


def load(mapping, key):
    try:
        return mapping[key]
    except:  # noqa: E722
        return None


def validate(width):
    if width <= 0:
        raise ValueError("width must be positive")
    return width
