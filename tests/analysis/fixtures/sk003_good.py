"""SK003 fixture: ReproError-family raises only, concrete excepts."""


class ReproError(Exception):
    pass


class ShapeError(ReproError):
    # A local subclass of an allowed exception is itself allowed
    # (resolved transitively by the rule).
    pass


class DeepShapeError(ShapeError):
    pass


def validate(width):
    if width <= 0:
        raise ShapeError("width must be positive")
    return width


def validate_deep(width):
    if width <= 0:
        raise DeepShapeError("width must be positive")
    return width


def reraise(mapping, key):
    try:
        return mapping[key]
    except KeyError:
        raise ShapeError(f"missing key {key!r}") from None


def passthrough(mapping, key):
    try:
        return mapping[key]
    except KeyError:
        raise  # bare re-raise is fine
