"""SK101 negative fixture: every mutating exit path invalidates."""


class CachingSketch:
    def __init__(self):
        self.rows = [0] * 4
        self.total = 0
        self._decode_cache = None

    def insert(self, key):
        # invalidate-before-mutate is the repo idiom and is accepted
        self._decode_cache = None
        self.rows[0] += key

    def insert_many(self, keys):
        # delegation: the helper invalidates on every path it mutates;
        # the zero-iteration path neither mutates nor invalidates
        for key in keys:
            self._apply(key)

    def reset(self, key):
        if key > 0:
            self.total = key
            self._decode_cache = None
        return self.total

    def peek(self):
        # read-only methods need no invalidation
        return self.rows[0]

    def _apply(self, key):
        self.rows[0] += key
        self._decode_cache = None

    def decode(self):
        if self._decode_cache is None:
            self._decode_cache = sum(self.rows)
        return self._decode_cache
