"""SK101 positive fixture: mutations that escape without invalidation."""


class CachingSketch:
    def __init__(self):
        self.rows = [0] * 4
        self.total = 0
        self._decode_cache = None

    def insert(self, key):
        # mutation, no invalidation anywhere: every exit path is stale
        self.rows[0] += key

    def adjust(self, key):
        # invalidation only on one branch: the key <= 0 path exits stale
        if key > 0:
            self._decode_cache = None
        self.total = key

    def decode(self):
        if self._decode_cache is None:
            self._decode_cache = sum(self.rows)
        return self._decode_cache
