"""SK101 pragma fixture: the same defect, explicitly suppressed."""


class CachingSketch:
    def __init__(self):
        self.rows = [0] * 4
        self._decode_cache = None

    def insert(self, key):  # sketchlint: disable=SK101
        self.rows[0] += key
