"""SK203 true positives: thread-reachable writes without the lock."""

import socketserver
import threading


class Collector:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []
        self.total = 0

    def start(self):
        worker = threading.Thread(target=self._run, daemon=True)
        worker.start()
        return worker

    def _run(self):
        self._items.append(1)
        self._tally()

    def _tally(self):
        self.total += 1


class Handler(socketserver.BaseRequestHandler):
    """A socketserver handler method is a thread entry point."""

    _lock = threading.Lock()

    def handle(self):
        self.hits = 1
