"""SK203 with the finding suppressed by pragma."""

import threading


class Collector:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []

    def start(self):
        worker = threading.Thread(target=self._run, daemon=True)
        worker.start()
        return worker

    def _run(self):
        self._items.append(1)  # sketchlint: disable=SK203
