"""SK203 clean fixtures: guarded writes, exempt helpers, cold paths."""

import threading


class Collector:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []
        self.total = 0
        self._obs_bundle = None

    def start(self):
        worker = threading.Thread(target=self._run, daemon=True)
        worker.start()
        return worker

    def _run(self):
        with self._lock:
            self._items.append(1)
        self._tally()
        self._record_sample(1)

    def _tally(self):
        with self._lock:
            self.total += 1

    def _record_sample(self, n):
        # recorder helpers are exempt: the lazy memo write is idempotent
        self._obs_bundle = n


class ColdPath:
    """Writes from methods never reached by a thread stay silent."""

    def __init__(self):
        self._lock = threading.Lock()
        self.configured = False

    def configure(self):
        self.configured = True


class Unshared:
    """A class that declares no locks has made no sharing claim."""

    def __init__(self):
        self.count = 0

    def start(self):
        worker = threading.Thread(target=self._run, daemon=True)
        worker.start()
        return worker

    def _run(self):
        self.count += 1
