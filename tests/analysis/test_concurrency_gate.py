"""The v3 concurrency gate: SK2xx over the shipped tree, SARIF sites,
and rule-pack cache invalidation.

The first test pins the triage outcome of the concurrency audit: every
SK201–SK206 candidate in the service/runtime/observability layers was
either already correct (writes guarded, pairs name-sorted, recording
hoisted out of lock regions) or fixed before this gate landed — so the
tree must stay *clean*, with zero unsuppressed findings and an empty
concurrency baseline.
"""

from __future__ import annotations

import ast
import json
from typing import Iterator

from tests.analysis.conftest import REPO_ROOT, SRC_REPRO, pack_path

from tools.sketchlint.cache import ResultCache
from tools.sketchlint.engine import FileContext, Rule, Violation, lint_paths
from tools.sketchlint.rules import RULE_PACK_VERSION, rules_by_code
from tools.sketchlint.sarif import render_sarif

SK2XX = ["SK201", "SK202", "SK203", "SK204", "SK205", "SK206"]
TOOLS_DIR = REPO_ROOT / "tools"


# --------------------------------------------------------------------- #
# the clean-repo gate
# --------------------------------------------------------------------- #
def test_src_and_tools_are_clean_under_sk2xx():
    report = lint_paths([SRC_REPRO, TOOLS_DIR], select=SK2XX)
    assert report.files_checked > 100  # service+runtime+obs plus tools
    assert report.violations == [], "\n" + report.render()
    assert report.ok


def test_no_sk2xx_pragmas_hide_findings_in_the_service_layer():
    # the gate above would pass if findings were pragma'd away; the
    # concurrency contract requires the hot layers to be *fixed*, so no
    # SK2xx suppression pragma may appear outside the fixture corpus
    offenders = []
    for layer in ("service", "runtime", "observability", "testing"):
        for path in sorted((SRC_REPRO / layer).rglob("*.py")):
            for number, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1
            ):
                if "sketchlint: disable=SK2" in line:
                    offenders.append(f"{path}:{number}")
    assert offenders == [], ", ".join(offenders)


# --------------------------------------------------------------------- #
# SARIF: a lock-order cycle must surface BOTH acquisition sites
# --------------------------------------------------------------------- #
def test_sarif_reports_both_sites_of_a_lock_order_cycle():
    report = lint_paths([pack_path("sk201", "bad.py")], select=["SK201"])
    log = json.loads(render_sarif(report, [rules_by_code()["SK201"]()]))
    results = [
        r for r in log["runs"][0]["results"] if r["ruleId"] == "SK201"
    ]
    lines = {
        r["locations"][0]["physicalLocation"]["region"]["startLine"]: r[
            "message"
        ]["text"]
        for r in results
    }
    # one result anchored at each acquisition site of the ABBA pair...
    assert 15 in lines and 20 in lines
    # ...and each message points at the opposite site
    assert "bad.py:20" in lines[15]
    assert "bad.py:15" in lines[20]


# --------------------------------------------------------------------- #
# cache: bumping the rule-pack version re-lints unchanged files
# --------------------------------------------------------------------- #
class _CountingRule(Rule):
    code = "SK902"
    summary = "counting probe"

    def __init__(self) -> None:
        self.calls = 0

    def check(
        self, tree: ast.AST, context: FileContext
    ) -> Iterator[Violation]:
        self.calls += 1
        return iter(())


def test_rule_pack_version_is_part_of_the_cache_signature(
    tmp_path, monkeypatch
):
    target = tmp_path / "mod.py"
    target.write_text("x = 1\n", encoding="utf-8")
    cache_path = tmp_path / "cache.json"

    first = _CountingRule()
    lint_paths([target], rules=[first], cache=ResultCache(cache_path))
    assert first.calls == 1

    # unchanged file, unchanged rule pack: the cache short-circuits
    warm = _CountingRule()
    lint_paths([target], rules=[warm], cache=ResultCache(cache_path))
    assert warm.calls == 0

    # a rule-pack upgrade must invalidate every entry even though the
    # file (and the linter's own source stamps) did not change
    import tools.sketchlint.rules as rules_module

    monkeypatch.setattr(
        rules_module, "RULE_PACK_VERSION", RULE_PACK_VERSION + "-next"
    )
    bumped = _CountingRule()
    lint_paths([target], rules=[bumped], cache=ResultCache(cache_path))
    assert bumped.calls == 1
