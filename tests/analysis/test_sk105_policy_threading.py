"""SK105 — degradation-policy threading (fixture pack)."""

from __future__ import annotations

from tests.analysis.conftest import lint_pack

from tools.sketchlint.baseline import Baseline
from tools.sketchlint.engine import LintReport


def test_bad_pack_flags_all_three_drop_modes():
    violations = lint_pack("sk105", "bad.py")
    assert [v.code for v in violations] == ["SK105"] * 3
    assert [v.line for v in violations] == [7, 11, 15]
    by_line = {v.line: v.message for v in violations}
    # delegation call omits policy= on a maybe-set path
    assert "drops" in by_line[7]
    # no same-named task consumer accepts policy at all
    assert "cannot reach" in by_line[11]
    # dead parameter: accepted, never loaded
    assert "never uses" in by_line[15]


def test_good_pack_is_clean():
    # forwarding on the non-None arm plus a bare call on the provably
    # known-None arm is the repo idiom and must pass
    assert lint_pack("sk105", "good.py") == []


def test_pragma_pack_is_suppressed():
    assert lint_pack("sk105", "pragma.py") == []


def test_baseline_suppresses_the_bad_pack(tmp_path):
    report = LintReport(violations=lint_pack("sk105", "bad.py"))
    Baseline.from_report(report, path=tmp_path / "baseline.json").apply(report)
    assert report.violations == []
    assert report.baseline_suppressed == 3
