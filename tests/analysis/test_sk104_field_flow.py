"""SK104 — unreduced field values flowing into sinks (fixture pack)."""

from __future__ import annotations

from tests.analysis.conftest import lint_pack

from tools.sketchlint.baseline import Baseline
from tools.sketchlint.engine import LintReport


def test_bad_pack_flags_all_three_sink_kinds():
    violations = lint_pack("sk104", "bad.py")
    assert [v.code for v in violations] == ["SK104"] * 3
    assert [v.line for v in violations] == [8, 10, 16]
    messages = " | ".join(v.message for v in violations)
    assert "compar" in messages  # unreduced value in a comparison
    assert "field-state store" in messages  # unreduced value stored back
    assert "serial" in messages  # unreduced value packed to bytes


def test_good_pack_is_clean():
    # top-level `% p`, late `acc %= p` reduction, and the sanctioned
    # to_field() reducer must all satisfy the dataflow
    assert lint_pack("sk104", "good.py") == []


def test_pragma_pack_is_suppressed():
    assert lint_pack("sk104", "pragma.py") == []


def test_baseline_suppresses_the_bad_pack(tmp_path):
    report = LintReport(violations=lint_pack("sk104", "bad.py"))
    Baseline.from_report(report, path=tmp_path / "baseline.json").apply(report)
    assert report.violations == []
    assert report.baseline_suppressed == 3
