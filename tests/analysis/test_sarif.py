"""SARIF 2.1.0 output: structural schema conformance and CLI integration."""

from __future__ import annotations

import json

from tools.sketchlint.cli import main
from tools.sketchlint.engine import LintReport, Violation, lint_paths
from tools.sketchlint.rules import ALL_RULES
from tools.sketchlint.sarif import SARIF_SCHEMA, SARIF_VERSION, render_sarif


def _assert_valid_sarif(log: dict) -> None:
    """Hand-rolled structural check against the SARIF 2.1.0 schema.

    Covers the required properties GitHub code scanning actually
    validates on upload: top-level version/runs, tool.driver with name
    and rule descriptors, results referencing rules by id/index with
    physical locations.
    """
    assert log["version"] == SARIF_VERSION == "2.1.0"
    assert log["$schema"] == SARIF_SCHEMA
    assert isinstance(log["runs"], list) and len(log["runs"]) == 1

    run = log["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "sketchlint"
    assert isinstance(driver["version"], str)

    rules = driver["rules"]
    assert isinstance(rules, list) and rules
    ids = [rule["id"] for rule in rules]
    assert len(ids) == len(set(ids)), "rule ids must be unique"
    for rule in rules:
        assert rule["id"].startswith("SK")
        assert rule["shortDescription"]["text"]
        assert rule["defaultConfiguration"]["level"] in (
            "none",
            "note",
            "warning",
            "error",
        )

    for result in run["results"]:
        assert result["ruleId"] in ids
        if "ruleIndex" in result:
            assert ids[result["ruleIndex"]] == result["ruleId"]
        assert result["level"] in ("none", "note", "warning", "error")
        assert result["message"]["text"]
        (location,) = result["locations"]
        physical = location["physicalLocation"]
        assert physical["artifactLocation"]["uri"]
        assert "\\" not in physical["artifactLocation"]["uri"]
        region = physical["region"]
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1
        fingerprints = result["partialFingerprints"]
        assert "sketchlint/v1" in fingerprints
        assert len(fingerprints["sketchlint/v1"]) == 32

    for invocation in run.get("invocations", []):
        assert isinstance(invocation["executionSuccessful"], bool)


def _all_rules():
    return [cls() for cls in ALL_RULES]


def test_empty_report_is_valid_sarif():
    log = json.loads(render_sarif(LintReport(), _all_rules()))
    _assert_valid_sarif(log)
    assert log["runs"][0]["results"] == []


def test_report_with_findings_round_trips(tmp_path):
    target = tmp_path / "bad.py"
    target.write_text("assert True\n", encoding="utf-8")
    report = lint_paths([target])
    assert report.violations, "fixture should trip at least one rule"

    log = json.loads(render_sarif(report, _all_rules()))
    _assert_valid_sarif(log)
    results = log["runs"][0]["results"]
    assert len(results) == len(report.violations)
    assert {r["ruleId"] for r in results} == {v.code for v in report.violations}


def test_all_registered_rules_appear_as_descriptors():
    log = json.loads(render_sarif(LintReport(), _all_rules()))
    ids = {rule["id"] for rule in log["runs"][0]["tool"]["driver"]["rules"]}
    assert {cls.code for cls in ALL_RULES} <= ids
    # the five v2 interprocedural rules specifically
    assert {"SK101", "SK102", "SK103", "SK104", "SK105"} <= ids


def test_fingerprints_are_content_addressed(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("# pad\nassert True\n", encoding="utf-8")
    shifted = tmp_path / "mod2.py"
    shifted.write_text("# pad\n# pad\nassert True\n", encoding="utf-8")

    v1 = Violation("SK900", "m", str(target), 2)
    v2 = Violation("SK900", "m", str(target), 2)
    report = LintReport(violations=[v1, v2])
    log = json.loads(render_sarif(report, _all_rules()))
    prints = [
        r["partialFingerprints"]["sketchlint/v1"]
        for r in log["runs"][0]["results"]
    ]
    assert prints[0] == prints[1], "same (code, path, content) -> same print"

    other = LintReport(violations=[Violation("SK900", "m", str(shifted), 3)])
    other_log = json.loads(render_sarif(other, _all_rules()))
    other_print = other_log["runs"][0]["results"][0]["partialFingerprints"][
        "sketchlint/v1"
    ]
    assert other_print != prints[0], "different path -> different print"


def test_parse_errors_become_tool_notifications(tmp_path):
    target = tmp_path / "broken.py"
    target.write_text("def f(:\n", encoding="utf-8")
    report = lint_paths([target])
    log = json.loads(render_sarif(report, _all_rules()))
    _assert_valid_sarif(log)
    (invocation,) = log["runs"][0]["invocations"]
    assert invocation["executionSuccessful"] is False
    (note,) = invocation["toolExecutionNotifications"]
    assert "syntax error" in note["message"]["text"]


def test_cli_writes_sarif_to_output_file(tmp_path):
    target = tmp_path / "bad.py"
    target.write_text("assert True\n", encoding="utf-8")
    out = tmp_path / "report.sarif"
    exit_code = main(
        [
            str(target),
            "--format",
            "sarif",
            "--output",
            str(out),
            "--no-cache",
            "--no-baseline",
        ]
    )
    assert exit_code == 1
    log = json.loads(out.read_text(encoding="utf-8"))
    _assert_valid_sarif(log)
    assert log["runs"][0]["results"]
