"""SK101 — decode-cache invalidation paths (fixture pack)."""

from __future__ import annotations

from tests.analysis.conftest import lint_pack

from tools.sketchlint.baseline import Baseline
from tools.sketchlint.engine import LintReport


def test_bad_pack_flags_both_escape_paths():
    violations = lint_pack("sk101", "bad.py")
    assert [v.code for v in violations] == ["SK101", "SK101"]
    lines = [v.line for v in violations]
    assert lines == [10, 14]
    # one is the unconditional mutate-without-invalidate, the other the
    # branch where only one arm invalidates
    assert any("insert" in v.message for v in violations)
    assert any("adjust" in v.message for v in violations)


def test_good_pack_is_clean():
    assert lint_pack("sk101", "good.py") == []


def test_pragma_pack_is_suppressed():
    assert lint_pack("sk101", "pragma.py") == []


def test_baseline_suppresses_the_bad_pack(tmp_path):
    report = LintReport(violations=lint_pack("sk101", "bad.py"))
    baseline = Baseline.from_report(report, path=tmp_path / "baseline.json")
    baseline.apply(report)
    assert report.violations == []
    assert report.baseline_suppressed == 2
