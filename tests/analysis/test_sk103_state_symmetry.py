"""SK103 — to_state/from_state key symmetry (fixture pack)."""

from __future__ import annotations

from tests.analysis.conftest import lint_pack

from tools.sketchlint.baseline import Baseline
from tools.sketchlint.engine import LintReport


def test_bad_pack_flags_both_asymmetry_directions():
    violations = lint_pack("sk103", "bad.py")
    assert [v.code for v in violations] == ["SK103", "SK103"]
    assert [v.line for v in violations] == [4, 13]
    by_line = {v.line: v.message for v in violations}
    # writer emits 'checksum' that the reader never consumes
    assert "checksum" in by_line[4]
    # reader consumes 'seed' that the writer never emits
    assert "seed" in by_line[13]


def test_good_pack_is_clean():
    # exercises helper-call following, membership reads, for-tuple alias
    # reads and .get() access — all must count as reads
    assert lint_pack("sk103", "good.py") == []


def test_pragma_pack_is_suppressed():
    assert lint_pack("sk103", "pragma.py") == []


def test_baseline_suppresses_the_bad_pack(tmp_path):
    report = LintReport(violations=lint_pack("sk103", "bad.py"))
    Baseline.from_report(report, path=tmp_path / "baseline.json").apply(report)
    assert report.violations == []
    assert report.baseline_suppressed == 2
