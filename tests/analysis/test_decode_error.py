"""DecodeError.partial: typed, documented, and round-trippable."""

from __future__ import annotations

import pytest

from repro.common.errors import DecodeError, ReproError
from repro.core.infrequent_part import InfrequentPart


def _stalling_ifp() -> InfrequentPart:
    """A tiny IFP overloaded until peeling provably stalls."""
    ifp = InfrequentPart(rows=2, width=2, seed=9)
    key = 1
    while ifp.decode().complete:
        ifp.insert(key, 1)
        key += 1
        assert key < 200, "could not construct a stalling decode"
    return ifp


def test_default_partial_is_an_empty_dict():
    error = DecodeError("nothing recovered")
    assert error.partial == {}
    assert isinstance(error.partial, dict)


def test_strict_decode_raises_with_typed_partial():
    ifp = _stalling_ifp()
    with pytest.raises(DecodeError) as excinfo:
        ifp.decode(strict=True)
    partial = excinfo.value.partial
    assert isinstance(partial, dict)
    for key, count in partial.items():
        assert isinstance(key, int) and not isinstance(key, bool)
        assert 1 <= key < ifp.max_key  # element IDs live in the key domain
        assert isinstance(count, int) and count != 0  # signed counts


def test_partial_matches_the_non_strict_decode():
    ifp = _stalling_ifp()
    relaxed = ifp.decode(strict=False).counts
    with pytest.raises(DecodeError) as excinfo:
        ifp.decode(strict=True)
    assert excinfo.value.partial == relaxed


def test_raise_catch_roundtrip_preserves_partial():
    payload = {3: 7, 12: -2}
    try:
        raise DecodeError("2 buckets undecodable", partial=payload)
    except ReproError as caught:  # the package-wide catch contract
        assert isinstance(caught, DecodeError)
        assert caught.partial == {3: 7, 12: -2}
        assert "undecodable" in str(caught)


def test_partial_is_defensively_copied_from_the_caller():
    """Pin the copy-in contract: later mutation of the caller's dict must
    not retroactively change an already-raised error's payload."""
    payload = {3: 7}
    error = DecodeError("stalled", partial=payload)
    payload[12] = -2
    payload[3] = 999
    assert error.partial == {3: 7}


def test_partial_mutation_never_aliases_caller_data():
    payload = {3: 7}
    error = DecodeError("stalled", partial=payload)
    error.partial[5] = 1
    assert payload == {3: 7}


def test_none_partial_still_yields_a_fresh_dict_per_instance():
    first = DecodeError("a")
    second = DecodeError("b")
    first.partial[1] = 1
    assert second.partial == {}
