"""SK004 — merge safety, against the fixture corpus."""

from __future__ import annotations

from tests.analysis.conftest import lint_fixture
from tools.sketchlint.rules.sk004_merge_safety import MergeSafetyRule


def test_bad_fixture_flags_unchecked_and_late_checked_merges():
    violations = lint_fixture("sk004_bad.py", MergeSafetyRule())
    assert len(violations) == 2
    messages = "\n".join(v.message for v in violations)
    assert "'merged'" in messages and "without" in messages
    assert "'subtracted'" in messages and "before its compatibility check" in messages


def test_good_fixture_is_clean():
    assert lint_fixture("sk004_good.py", MergeSafetyRule()) == []


def test_pure_delegation_passes_vacuously():
    from tools.sketchlint.engine import lint_source

    source = (
        "class W:\n"
        "    def union_with(self, other):\n"
        "        return self.inner.merged(other.inner)\n"
    )
    assert lint_source(source, rules=[MergeSafetyRule()]) == []


def test_module_level_merge_function_is_checked():
    from tools.sketchlint.engine import lint_source

    source = (
        "def union(left, right):\n"
        "    out = [0] * 4\n"
        "    for j in range(4):\n"
        "        out[j] = left.counters[j] + right.counters[j]\n"
        "    return out\n"
    )
    violations = lint_source(source, rules=[MergeSafetyRule()])
    assert [v.code for v in violations] == ["SK004"]


def test_module_level_merge_with_check_first_passes():
    from tools.sketchlint.engine import lint_source

    source = (
        "def union(left, right):\n"
        "    left.check_compatible(right)\n"
        "    out = [0] * 4\n"
        "    for j in range(4):\n"
        "        out[j] = left.counters[j] + right.counters[j]\n"
        "    return out\n"
    )
    assert lint_source(source, rules=[MergeSafetyRule()]) == []
