"""Engine v2 behavior: span pragmas, package rules, cache, baseline."""

from __future__ import annotations

import ast
import json
import textwrap
from typing import Iterator

import pytest

from tools.sketchlint.baseline import Baseline, fingerprint_of
from tools.sketchlint.cache import ResultCache
from tools.sketchlint.engine import (
    FileContext,
    LintReport,
    PackageContext,
    PackageRule,
    Rule,
    Violation,
    iter_python_files,
    lint_paths,
    lint_source,
)


class _MarkerRule(Rule):
    """Flags every integer constant 999, at the constant's own line."""

    code = "SK900"
    summary = "test marker"

    def check(self, tree: ast.AST, context: FileContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Constant) and node.value == 999:
                yield self.violation(context, node, "marker constant")


class _CountingRule(_MarkerRule):
    def __init__(self) -> None:
        self.calls = 0

    def check(self, tree: ast.AST, context: FileContext) -> Iterator[Violation]:
        self.calls += 1
        yield from super().check(tree, context)


class _CountingPackageRule(PackageRule):
    code = "SK901"
    summary = "test package marker"

    def __init__(self) -> None:
        self.calls = 0

    def check_package(self, package: PackageContext) -> Iterator[Violation]:
        self.calls += 1
        for path, tree in package.trees.items():
            for node in ast.walk(tree):
                if isinstance(node, ast.Constant) and node.value == 999:
                    yield self.violation_at(path, node, "package marker")


# --------------------------------------------------------------------- #
# pragma spans
# --------------------------------------------------------------------- #
def test_pragma_on_first_line_covers_the_whole_simple_statement():
    source = textwrap.dedent(
        """
        value = compute(  # sketchlint: disable=SK900
            999,
        )
        """
    )
    assert lint_source(source, rules=[_MarkerRule()]) == []


def test_without_pragma_the_continuation_line_is_reported():
    source = textwrap.dedent(
        """
        value = compute(
            999,
        )
        """
    )
    violations = lint_source(source, rules=[_MarkerRule()])
    assert [v.line for v in violations] == [3]


def test_pragma_on_compound_statement_does_not_blanket_the_body():
    source = textwrap.dedent(
        """
        if flag:  # sketchlint: disable=SK900
            value = 999
        """
    )
    violations = lint_source(source, rules=[_MarkerRule()])
    assert [v.line for v in violations] == [3]


def test_pragma_all_suppresses_every_code_on_the_line():
    source = "value = 999  # sketchlint: disable=all\n"
    assert lint_source(source, rules=[_MarkerRule()]) == []


def test_pragma_codes_are_case_insensitive():
    source = "value = 999  # sketchlint: disable=sk900\n"
    assert lint_source(source, rules=[_MarkerRule()]) == []


def test_span_pragma_applies_to_package_rules_too(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        "value = compute(  # sketchlint: disable=SK901\n    999,\n)\n",
        encoding="utf-8",
    )
    report = lint_paths([target], rules=[_CountingPackageRule()])
    assert report.violations == []


# --------------------------------------------------------------------- #
# package rules through lint_source / lint_paths
# --------------------------------------------------------------------- #
def test_lint_source_treats_one_file_as_a_package():
    violations = lint_source("x = 999\n", rules=[_CountingPackageRule()])
    assert [v.code for v in violations] == ["SK901"]


def test_lint_paths_runs_package_rule_once_over_the_batch(tmp_path):
    for name in ("a.py", "b.py", "c.py"):
        (tmp_path / name).write_text("x = 999\n", encoding="utf-8")
    rule = _CountingPackageRule()
    report = lint_paths([tmp_path], rules=[rule])
    assert rule.calls == 1
    assert len(report.violations) == 3
    assert report.files_checked == 3


def test_select_unknown_code_raises_value_error(tmp_path):
    (tmp_path / "a.py").write_text("x = 1\n", encoding="utf-8")
    with pytest.raises(ValueError, match="SK999"):
        lint_paths([tmp_path], select=["SK999"])


def test_parse_error_is_reported_not_raised(tmp_path):
    (tmp_path / "broken.py").write_text("def f(:\n", encoding="utf-8")
    report = lint_paths([tmp_path], rules=[_MarkerRule()])
    assert not report.ok
    assert report.parse_errors and "syntax error" in report.parse_errors[0]


def test_iter_python_files_expands_dirs_and_skips_non_python(tmp_path):
    (tmp_path / "one.py").write_text("", encoding="utf-8")
    (tmp_path / "two.txt").write_text("", encoding="utf-8")
    sub = tmp_path / "sub"
    sub.mkdir()
    (sub / "three.py").write_text("", encoding="utf-8")
    found = sorted(p.name for p in iter_python_files([tmp_path]))
    assert found == ["one.py", "three.py"]


# --------------------------------------------------------------------- #
# result cache
# --------------------------------------------------------------------- #
def test_cache_skips_rule_runs_on_unchanged_files(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("x = 999\n", encoding="utf-8")
    cache_path = tmp_path / "cache.json"

    first = _CountingRule()
    report1 = lint_paths([target], rules=[first], cache=ResultCache(cache_path))
    assert first.calls == 1
    assert cache_path.exists()

    second = _CountingRule()
    report2 = lint_paths([target], rules=[second], cache=ResultCache(cache_path))
    assert second.calls == 0
    assert [v.render() for v in report2.violations] == [
        v.render() for v in report1.violations
    ]


def test_cache_invalidates_when_the_file_changes(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("x = 999\n", encoding="utf-8")
    cache_path = tmp_path / "cache.json"

    lint_paths([target], rules=[_CountingRule()], cache=ResultCache(cache_path))
    target.write_text("x = 999\ny = 999\n", encoding="utf-8")

    rerun = _CountingRule()
    report = lint_paths([target], rules=[rerun], cache=ResultCache(cache_path))
    assert rerun.calls == 1
    assert len(report.violations) == 2


def test_cache_covers_the_package_rule_pass(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("x = 999\n", encoding="utf-8")
    cache_path = tmp_path / "cache.json"

    lint_paths(
        [target], rules=[_CountingPackageRule()], cache=ResultCache(cache_path)
    )
    rerun = _CountingPackageRule()
    report = lint_paths([target], rules=[rerun], cache=ResultCache(cache_path))
    assert rerun.calls == 0
    assert [v.code for v in report.violations] == ["SK901"]


def test_cache_with_stale_signature_is_ignored(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("x = 999\n", encoding="utf-8")
    cache_path = tmp_path / "cache.json"

    lint_paths([target], rules=[_CountingRule()], cache=ResultCache(cache_path))
    payload = json.loads(cache_path.read_text(encoding="utf-8"))
    payload["signature"] = "v0|stale"
    cache_path.write_text(json.dumps(payload), encoding="utf-8")

    rerun = _CountingRule()
    lint_paths([target], rules=[rerun], cache=ResultCache(cache_path))
    assert rerun.calls == 1


# --------------------------------------------------------------------- #
# baseline
# --------------------------------------------------------------------- #
def _report_for(tmp_path, occurrences: int) -> LintReport:
    target = tmp_path / "legacy.py"
    target.write_text("raise ValueError(x)\n" * occurrences, encoding="utf-8")
    violations = [
        Violation("SK900", "marker", str(target), line)
        for line in range(1, occurrences + 1)
    ]
    return LintReport(violations=violations, files_checked=1)


def test_baseline_apply_suppresses_up_to_the_recorded_count(tmp_path):
    report = _report_for(tmp_path, occurrences=3)
    key = fingerprint_of(report.violations[0])
    baseline = Baseline(
        tmp_path / "baseline.json",
        {key: {"count": 2, "justification": "legacy"}},
    )
    baseline.apply(report)
    assert report.baseline_suppressed == 2
    assert [v.line for v in report.violations] == [3]


def test_baseline_fingerprint_survives_line_shifts(tmp_path):
    target = tmp_path / "legacy.py"
    target.write_text("# header\nraise ValueError(x)\n", encoding="utf-8")
    shifted = Violation("SK900", "marker", str(target), 2)
    original_key = ("SK900", str(target), "raise ValueError(x)")
    assert fingerprint_of(shifted) == original_key


def test_baseline_from_report_roundtrip_preserves_justifications(tmp_path):
    report = _report_for(tmp_path, occurrences=2)
    path = tmp_path / "baseline.json"
    Baseline.from_report(report, path=path).save()

    loaded = Baseline.load(path)
    (key,) = loaded.entries
    assert loaded.entries[key]["count"] == 2
    loaded.entries[key]["justification"] = "reviewed: CLI error convention"
    loaded.save()

    refreshed = Baseline.from_report(report, path=path)
    assert (
        refreshed.entries[key]["justification"]
        == "reviewed: CLI error convention"
    )


def test_baseline_unjustified_lists_empty_justifications(tmp_path):
    baseline = Baseline(
        tmp_path / "baseline.json",
        {
            ("SK900", "a.py", "x = 1"): {"count": 1, "justification": "  "},
            ("SK900", "b.py", "y = 2"): {"count": 1, "justification": "ok"},
        },
    )
    assert baseline.unjustified() == [("SK900", "a.py", "x = 1")]


def test_baseline_load_missing_file_is_empty(tmp_path):
    baseline = Baseline.load(tmp_path / "nope.json")
    assert baseline.entries == {}


def test_baseline_load_rejects_invalid_json(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(ValueError, match="invalid baseline JSON"):
        Baseline.load(path)
