"""Unit tests for the benchmark-regression gate (``tools.benchcheck``)."""

import json

import pytest

from tools.benchcheck import compare, lookup, main


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


class TestLookup:
    def test_flat_and_dotted_paths(self):
        report = {"speedup": 2.3, "batched": {"items_per_second": 125000.0}}
        assert lookup(report, "speedup") == 2.3
        assert lookup(report, "batched.items_per_second") == 125000.0

    def test_missing_paths_are_none(self):
        report = {"batched": {"x": 1}}
        assert lookup(report, "missing") is None
        assert lookup(report, "batched.y") is None
        assert lookup(report, "batched.x.too_deep") is None


class TestCompare:
    def test_within_tolerance_passes(self, capsys):
        fresh = {"speedup": 2.0, "state_identical_to_sequential": True}
        base = {"speedup": 2.3}
        assert compare(fresh, base) == []
        assert "PASS" not in capsys.readouterr().out  # compare only prints rows

    def test_higher_is_better_regression_fails(self):
        fresh = {"speedup": 1.7}
        base = {"speedup": 2.3}  # floor = 1.84
        failures = compare(fresh, base)
        assert len(failures) == 1
        assert failures[0].startswith("speedup:")

    def test_lower_is_better_gets_absolute_slack(self):
        # 0.04 baseline: +20% relative would demand <= 0.048, but the
        # 0.05 absolute slack lifts the ceiling to 0.09
        fresh = {"overhead_fraction": 0.08}
        base = {"overhead_fraction": 0.04}
        assert compare(fresh, base) == []
        assert compare({"overhead_fraction": 0.10}, base) != []

    def test_boolean_verdicts_must_be_true(self):
        base = {"speedup": 2.0}
        fresh = {"speedup": 2.0, "recovered_state_identical": False}
        failures = compare(fresh, base)
        assert any("recovered_state_identical" in f for f in failures)
        # absent verdicts are not required
        assert compare({"speedup": 2.0}, base) == []

    def test_explicit_floor_replaces_relative_check(self):
        # would fail the ±20% relative check, but the explicit floor wins
        fresh = {"speedup": 1.6}
        base = {"speedup": 2.3}
        assert compare(fresh, base, floors={"speedup": 1.5}) == []
        assert compare(fresh, base, floors={"speedup": 1.7}) != []

    def test_explicit_ceiling_replaces_relative_check(self):
        fresh = {"overhead_fraction": 0.4}
        base = {"overhead_fraction": 0.05}
        assert compare(fresh, base, ceilings={"overhead_fraction": 0.5}) == []
        assert compare(fresh, base, ceilings={"overhead_fraction": 0.3}) != []

    def test_dotted_bound_on_nested_field(self):
        fresh = {"batched": {"items_per_second": 90000.0}}
        failures = compare(
            fresh, {}, floors={"batched.items_per_second": 100000.0}
        )
        assert len(failures) == 1
        assert compare(
            fresh, {}, floors={"batched.items_per_second": 50000.0}
        ) == []

    def test_missing_bound_target_fails_loudly(self):
        failures = compare({}, {}, floors={"speedup": 1.5})
        assert any("missing" in f for f in failures)

    def test_metric_absent_from_both_reports_is_skipped(self):
        # a checkpoint report has no speedup and vice versa
        assert compare({"overhead_fraction": 0.05}, {"overhead_fraction": 0.05}) == []

    def test_missing_baseline_metric_skips_not_fails(self):
        assert compare({"speedup": 2.0}, {}) == []


class TestMain:
    def test_pass_exit_zero(self, tmp_path, capsys):
        fresh = _write(tmp_path, "fresh.json", {"speedup": 2.2})
        base = _write(tmp_path, "base.json", {"speedup": 2.3})
        assert main([fresh, "--baseline", base]) == 0
        assert "benchcheck: PASS" in capsys.readouterr().out

    def test_regression_exit_one(self, tmp_path, capsys):
        fresh = _write(tmp_path, "fresh.json", {"speedup": 1.0})
        base = _write(tmp_path, "base.json", {"speedup": 2.3})
        assert main([fresh, "--baseline", base]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_min_max_flags(self, tmp_path):
        fresh = _write(
            tmp_path,
            "fresh.json",
            {"speedup": 1.6, "overhead_fraction": 0.4},
        )
        base = _write(
            tmp_path,
            "base.json",
            {"speedup": 2.3, "overhead_fraction": 0.05},
        )
        code = main(
            [
                fresh,
                "--baseline",
                base,
                "--min",
                "speedup=1.5",
                "--max",
                "overhead_fraction=0.5",
            ]
        )
        assert code == 0

    def test_unreadable_report_exits_two(self, tmp_path):
        base = _write(tmp_path, "base.json", {})
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path / "nope.json"), "--baseline", base])
        assert "cannot read report" in str(excinfo.value)

    def test_malformed_bound_exits_two(self, tmp_path):
        fresh = _write(tmp_path, "fresh.json", {})
        base = _write(tmp_path, "base.json", {})
        with pytest.raises(SystemExit) as excinfo:
            main([fresh, "--baseline", base, "--min", "speedup"])
        assert "malformed bound" in str(excinfo.value)

    def test_non_object_report_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]", encoding="utf-8")
        base = _write(tmp_path, "base.json", {})
        with pytest.raises(SystemExit) as excinfo:
            main([str(path), "--baseline", base])
        assert "not a JSON object" in str(excinfo.value)

    def test_committed_baselines_pass_against_themselves(self, capsys):
        # the repo-root baselines are self-consistent by construction
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        for name in ("BENCH_ingest.json", "BENCH_checkpoint.json"):
            baseline = str(root / name)
            assert main([baseline, "--baseline", baseline]) == 0, name
