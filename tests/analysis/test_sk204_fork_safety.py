"""SK204 — fork-safety hazards around child-process spawns."""

from __future__ import annotations

from tests.analysis.conftest import lint_pack


def test_bad_pack_flags_all_three_hazards():
    violations = lint_pack("sk204", "bad.py")
    assert [v.code for v in violations] == ["SK204"] * 4
    assert [v.line for v in violations] == [19, 20, 23, 23]
    messages = " | ".join(v.message for v in violations)
    # fork-after-thread: the module starts threads *and* forks children
    assert "also starts threads" in messages
    # a threading lock handed to the child synchronizes nothing
    assert "passed into a child process" in messages
    assert "Hybrid._lock" in messages
    # bound-method target drags the lock-owning instance across the fork
    assert "bound method of 'Hybrid'" in messages


def test_good_pack_is_clean():
    # the sharded-runtime shape: processes only, module-level target,
    # queues as arguments
    assert lint_pack("sk204", "good.py") == []


def test_pragma_pack_is_suppressed():
    assert lint_pack("sk204", "pragma.py") == []
