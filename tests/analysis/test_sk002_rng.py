"""SK002 — injected-rng discipline, against the fixture corpus."""

from __future__ import annotations

from tests.analysis.conftest import lint_fixture
from tools.sketchlint.rules.sk002_rng import InjectedRngRule


def test_bad_fixture_flags_all_global_state_uses():
    violations = lint_fixture("sk002_bad.py", InjectedRngRule())
    assert len(violations) == 5
    messages = "\n".join(v.message for v in violations)
    assert "random.random()" in messages  # module-level draw
    assert "random.shuffle()" in messages  # mutating draw
    assert "without a seed" in messages  # unseeded constructor
    assert "np.random.rand()" in messages  # numpy global state
    assert "random.randint" in messages  # from-import smuggling


def test_good_fixture_is_clean():
    assert lint_fixture("sk002_good.py", InjectedRngRule()) == []


def test_seeded_constructor_allowed():
    from tools.sketchlint.engine import lint_source

    source = "import random\nrng = random.Random(42)\n"
    assert lint_source(source, rules=[InjectedRngRule()]) == []


def test_numpy_default_rng_seeded_allowed():
    from tools.sketchlint.engine import lint_source

    source = "import numpy as np\nrng = np.random.default_rng(7)\n"
    assert lint_source(source, rules=[InjectedRngRule()]) == []


def test_aliased_import_still_tracked():
    from tools.sketchlint.engine import lint_source

    source = "import random as rnd\nx = rnd.random()\n"
    violations = lint_source(source, rules=[InjectedRngRule()])
    assert [v.code for v in violations] == ["SK002"]
