"""Engine mechanics: pragmas, selection, rendering, parse errors."""

from __future__ import annotations

from pathlib import Path

import pytest

from tools.sketchlint.engine import (
    LintReport,
    Violation,
    iter_python_files,
    lint_paths,
    lint_source,
)
from tools.sketchlint.rules import ALL_RULES, rules_by_code


def test_all_rules_have_distinct_codes_and_summaries():
    codes = [cls.code for cls in ALL_RULES]
    assert codes == [
        "SK001", "SK002", "SK003", "SK004", "SK005",
        "SK101", "SK102", "SK103", "SK104", "SK105",
        "SK201", "SK202", "SK203", "SK204", "SK205", "SK206",
    ]
    assert len(set(codes)) == len(codes)
    assert all(cls.summary for cls in ALL_RULES)
    assert set(rules_by_code()) == set(codes)


def test_violation_render_is_editor_clickable():
    violation = Violation(
        code="SK003", message="no asserts", path="src/x.py", line=7, column=4
    )
    assert violation.render() == "src/x.py:7:5: SK003 no asserts"


def test_pragma_suppresses_named_code():
    source = "assert True  # sketchlint: disable=SK003\n"
    assert lint_source(source) == []


def test_pragma_all_suppresses_everything():
    source = "assert True  # sketchlint: disable=all\n"
    assert lint_source(source) == []


def test_pragma_other_code_does_not_suppress():
    source = "assert True  # sketchlint: disable=SK001\n"
    violations = lint_source(source)
    assert [v.code for v in violations] == ["SK003"]


def test_select_unknown_code_raises(tmp_path: Path):
    with pytest.raises(ValueError, match="SK999"):
        lint_paths([tmp_path], select=["SK999"])


def test_select_restricts_to_named_rule(tmp_path: Path):
    bad = tmp_path / "mixed.py"
    bad.write_text("assert True\nrandom.random()\nimport random\n")
    report = lint_paths([bad], select=["sk003"])
    assert [v.code for v in report.violations] == ["SK003"]


def test_syntax_error_is_reported_not_raised(tmp_path: Path):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    report = lint_paths([tmp_path])
    assert not report.ok
    assert report.files_checked == 1
    assert any("syntax error" in message for message in report.parse_errors)


def test_iter_python_files_is_sorted_and_recursive(tmp_path: Path):
    (tmp_path / "sub").mkdir()
    for name in ("b.py", "a.py", "sub/c.py", "notes.txt"):
        (tmp_path / name).write_text("x = 1\n")
    found = [p.name for p in iter_python_files([tmp_path])]
    assert found == ["a.py", "b.py", "c.py"]


def test_report_render_mentions_counts():
    report = LintReport(files_checked=3)
    assert report.ok
    assert "3 file(s) checked, 0 violation(s)" in report.render()
