"""Edge cases of the :mod:`tools.sketchlint.lockgraph` model."""

from __future__ import annotations

import ast
import textwrap
from typing import Dict

from tools.sketchlint.lockgraph import LockModel, function_key, lock_model
from tools.sketchlint.engine import FileContext, PackageContext
from tools.sketchlint.symbols import SymbolIndex


def model_of(sources: Dict[str, str]) -> LockModel:
    trees = {
        path: ast.parse(textwrap.dedent(source), filename=path)
        for path, source in sources.items()
    }
    return LockModel.build(SymbolIndex.build(trees))


def events_of(model: LockModel, path: str, qualname: str):
    return model.functions[f"{path}::{qualname}"]


def test_rlock_reentry_is_not_a_self_deadlock():
    model = model_of({"m.py": """
        import threading

        class C:
            def __init__(self):
                self._g = threading.RLock()

            def outer(self):
                with self._g:
                    return self.inner()

            def inner(self):
                with self._g:
                    return 1
    """})
    assert model.self_deadlocks == []
    assert ("C._g", "C._g") not in model.order_edges


def test_direct_nested_acquire_of_plain_lock_is_a_self_deadlock():
    model = model_of({"m.py": """
        import threading

        class C:
            def __init__(self):
                self._g = threading.Lock()

            def outer(self):
                with self._g:
                    with self._g:
                        return 1
    """})
    assert [dl.lock for dl in model.self_deadlocks] == ["C._g"]


def test_condition_reentrancy_tracks_the_underlying_lock():
    model = model_of({"m.py": """
        import threading

        class C:
            def __init__(self):
                self._soft = threading.Condition()
                self._hard = threading.Condition(threading.Lock())
    """})
    assert model.decls["C._soft"].kind == "condition"
    assert model.decls["C._soft"].reentrant is True
    assert model.decls["C._hard"].reentrant is False


def test_alias_acquire_and_try_finally_release():
    model = model_of({"m.py": """
        import threading

        class C:
            def __init__(self):
                self._lock = threading.Lock()

            def run(self):
                lock = self._lock
                lock.acquire()
                try:
                    self._inside()
                except ValueError:
                    self._failed()
                finally:
                    lock.release()
                self._after()

            def _inside(self):
                return 1

            def _failed(self):
                return 2

            def _after(self):
                return 3
    """})
    events = events_of(model, "m.py", "C.run")
    assert [acq.lock for acq in events.acquires] == ["C._lock"]
    held_by_callee = {call.callee: call.held for call in events.calls}
    # the try body and the exceptional edge both run with the lock held
    assert held_by_callee["m.py::C._inside"] == ("C._lock",)
    assert held_by_callee["m.py::C._failed"] == ("C._lock",)
    # the finally released it, so the tail of the function is lock-free
    assert held_by_callee["m.py::C._after"] == ()


def test_name_sorted_group_acquisition_adds_no_order_edges():
    model = model_of({"m.py": """
        import threading

        class Shard:
            def __init__(self, name):
                self.name = name
                self.lock = threading.Lock()

        def run_pair(left, right):
            ordered = [lock for _, lock in sorted(
                [(left.name, left.lock), (right.name, right.lock)]
            )]
            for lock in ordered:
                lock.acquire()
            try:
                return (left.name, right.name)
            finally:
                for lock in reversed(ordered):
                    lock.release()
    """})
    assert model.order_edges == {}
    assert model.self_deadlocks == []


def test_opposite_order_pair_records_both_edges_with_sites():
    model = model_of({"m.py": """
        import threading

        class T:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def one(self):
                with self._a:
                    with self._b:
                        return 1

            def two(self):
                with self._b:
                    with self._a:
                        return 2
    """})
    assert ("T._a", "T._b") in model.order_edges
    assert ("T._b", "T._a") in model.order_edges
    sites = model.order_edges[("T._a", "T._b")]
    assert all(site.path == "m.py" for site in sites)


def test_same_class_name_in_two_modules_merges_to_reentrant():
    # two classes sharing a name and attribute disagree on the factory;
    # the identity is ambiguous, so the model must not claim a
    # self-deadlock it cannot prove
    model = model_of({
        "a.py": """
            import threading

            class C:
                def __init__(self):
                    self._g = threading.Lock()

                def outer(self):
                    with self._g:
                        with self._g:
                            return 1
        """,
        "b.py": """
            import threading

            class C:
                def __init__(self):
                    self._g = threading.RLock()
        """,
    })
    assert model.decls["C._g"].reentrant is True
    assert model.self_deadlocks == []


def test_callers_held_is_the_intersection_over_call_sites():
    model = model_of({"m.py": """
        import threading

        class C:
            def __init__(self):
                self._lock = threading.Lock()

            def push(self):
                with self._lock:
                    self._insert()

            def pop(self):
                with self._lock:
                    self._insert()

            def peek(self):
                self._probe()

            def guarded_probe(self):
                with self._lock:
                    self._probe()

            def _insert(self):
                return 1

            def _probe(self):
                return 2
    """})
    # every call site holds the lock -> the helper inherits it
    assert model.callers_held["m.py::C._insert"] == frozenset({"C._lock"})
    # one bare call site -> intersection collapses to nothing
    assert model.callers_held["m.py::C._probe"] == frozenset()
    # public entry points are pinned to the empty set
    assert model.callers_held["m.py::C.push"] == frozenset()


def test_thread_target_reachability_is_transitive():
    model = model_of({"m.py": """
        import threading

        class C:
            def __init__(self):
                self._lock = threading.Lock()

            def start(self):
                threading.Thread(target=self._run).start()

            def _run(self):
                self._step()

            def _step(self):
                return 1
    """})
    assert "m.py::C._run" in model.thread_entries
    assert "m.py::C._run" in model.concurrent_entry_held
    assert "m.py::C._step" in model.concurrent_entry_held
    # start() itself runs on the caller's thread, not the spawned one
    assert "m.py::C.start" not in model.thread_entries


def test_may_acquire_is_transitive_through_helpers():
    model = model_of({"m.py": """
        import threading

        class C:
            def __init__(self):
                self._lock = threading.Lock()

            def top(self):
                self._mid()

            def _mid(self):
                self._bottom()

            def _bottom(self):
                with self._lock:
                    return 1
    """})
    assert model.may_acquire["m.py::C.top"] == frozenset({"C._lock"})


def test_lock_model_is_memoized_per_symbol_index():
    source = textwrap.dedent("""
        import threading

        class C:
            def __init__(self):
                self._lock = threading.Lock()
    """)
    tree = ast.parse(source, filename="m.py")
    package = PackageContext(
        index=SymbolIndex.build({"m.py": tree}),
        files={"m.py": FileContext(path="m.py", source=source)},
        trees={"m.py": tree},
    )
    assert lock_model(package) is lock_model(package)
