"""The self-gate: the shipped tree must satisfy its own linter.

This is the reproduction-side contract behind the CI step
``python -m tools.sketchlint src/repro`` — if any of these fail, the gate
in ``.github/workflows/ci.yml`` fails identically.
"""

from __future__ import annotations

import ast

from tests.analysis.conftest import SRC_REPRO
from tools.sketchlint.cli import main
from tools.sketchlint.engine import iter_python_files, lint_paths


def test_src_repro_is_sketchlint_clean():
    report = lint_paths([SRC_REPRO])
    assert report.files_checked > 50  # the whole package, not a subset
    assert report.ok, "\n" + report.render()


def test_no_assert_statements_anywhere_in_src_repro():
    offenders = []
    for path in iter_python_files([SRC_REPRO]):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if isinstance(node, ast.Assert):
                offenders.append(f"{path}:{node.lineno}")
    assert offenders == [], (
        "assert statements are stripped under 'python -O'; use "
        "repro.common.invariants.check() instead: " + ", ".join(offenders)
    )


def test_cli_gate_exits_zero_on_clean_tree():
    assert main([str(SRC_REPRO), "--quiet"]) == 0


def test_cli_gate_exits_one_on_violations(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("assert True\n")
    assert main([str(bad), "--quiet"]) == 1


def test_cli_select_unknown_code_is_usage_error(capsys):
    assert main(["--select", "SK999", str(SRC_REPRO)]) == 2
    assert "SK999" in capsys.readouterr().err
