"""The self-gate: the shipped tree must satisfy its own linter.

This is the reproduction-side contract behind the CI step
``python -m tools.sketchlint src/repro`` — if any of these fail, the gate
in ``.github/workflows/ci.yml`` fails identically.
"""

from __future__ import annotations

import ast
from pathlib import Path

from tests.analysis.conftest import REPO_ROOT, SRC_REPRO
from tools.sketchlint.baseline import Baseline
from tools.sketchlint.cli import main
from tools.sketchlint.engine import iter_python_files, lint_paths

BASELINE_PATH = REPO_ROOT / ".sketchlint-baseline.json"
TOOLS_DIR = REPO_ROOT / "tools"


def test_src_repro_is_sketchlint_clean():
    report = lint_paths([SRC_REPRO])
    assert report.files_checked > 50  # the whole package, not a subset
    assert report.ok, "\n" + report.render()


def test_no_assert_statements_anywhere_in_src_repro():
    offenders = []
    for path in iter_python_files([SRC_REPRO]):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if isinstance(node, ast.Assert):
                offenders.append(f"{path}:{node.lineno}")
    assert offenders == [], (
        "assert statements are stripped under 'python -O'; use "
        "repro.common.invariants.check() instead: " + ", ".join(offenders)
    )


def test_cli_gate_exits_zero_on_clean_tree():
    assert main([str(SRC_REPRO), "--quiet"]) == 0


def test_cli_gate_exits_one_on_violations(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("assert True\n")
    assert main([str(bad), "--quiet"]) == 1


def test_cli_select_unknown_code_is_usage_error(capsys):
    assert main(["--select", "SK999", str(SRC_REPRO)]) == 2
    assert "SK999" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# the v2 gate: src + tools clean modulo the checked-in baseline
# --------------------------------------------------------------------- #
def test_src_and_tools_are_clean_modulo_baseline(monkeypatch):
    # relative paths so violation fingerprints match the checked-in
    # baseline entries (which record repo-relative paths)
    monkeypatch.chdir(REPO_ROOT)
    report = lint_paths([Path("src"), Path("tools")])
    report = Baseline.load(BASELINE_PATH).apply(report)
    assert report.files_checked > 60  # src/repro plus the tools tree
    assert report.ok, "\n" + report.render()


def test_baseline_has_no_src_repro_entries():
    baseline = Baseline.load(BASELINE_PATH)
    offenders = [
        path
        for (_code, path, _content) in baseline.entries
        if path.replace("\\", "/").startswith("src/repro")
    ]
    assert offenders == [], (
        "library code must be fixed or pragma'd with a reason, never "
        "baselined: " + ", ".join(offenders)
    )


def test_every_baseline_entry_is_justified():
    baseline = Baseline.load(BASELINE_PATH)
    assert baseline.entries, "the checked-in baseline should not be empty"
    assert baseline.unjustified() == []


def test_baseline_entries_still_match_real_source_lines():
    """Stale entries (content no longer present) must be pruned."""
    baseline = Baseline.load(BASELINE_PATH)
    for code, path, content in baseline.entries:
        text = (REPO_ROOT / path).read_text(encoding="utf-8")
        stripped = [line.strip() for line in text.splitlines()]
        assert content in stripped, (
            f"baseline entry ({code}, {path}) no longer matches any "
            f"source line: {content!r}"
        )
