"""The runtime debug-invariant sanitizer (repro.common.invariants)."""

from __future__ import annotations

import pytest

from repro.common import invariants as inv
from repro.common.errors import InvariantViolation, ReproError, SketchModeError
from repro.core import DaVinciSketch
from repro.core.element_filter import ElementFilter
from repro.core.infrequent_part import InfrequentPart


# --------------------------------------------------------------------- #
# switch mechanics
# --------------------------------------------------------------------- #
def test_disabled_by_default(monkeypatch):
    # the module-level default tracks the env var; with the variable unset
    # (the production configuration) a refresh() lands on "off"
    monkeypatch.delenv(inv.ENV_VAR, raising=False)
    previous = inv.ENABLED
    try:
        assert inv.refresh() is False
        assert inv.ENABLED is False
    finally:
        inv.set_enabled(previous)


def test_set_enabled_returns_previous_state():
    previous = inv.set_enabled(False)
    try:
        assert inv.set_enabled(True) is False
        assert inv.ENABLED is True
        assert inv.set_enabled(False) is True
    finally:
        inv.set_enabled(previous)


@pytest.mark.parametrize(
    "value,expected",
    [("1", True), ("true", True), ("yes", True), ("0", False), ("", False), ("false", False)],
)
def test_refresh_parses_the_environment_variable(monkeypatch, value, expected):
    monkeypatch.setenv(inv.ENV_VAR, value)
    try:
        assert inv.refresh() is expected
    finally:
        monkeypatch.delenv(inv.ENV_VAR, raising=False)
        inv.refresh()
    assert inv.ENABLED is False


def test_guards_are_skipped_entirely_when_disabled(small_config, monkeypatch):
    assert inv.ENABLED is False

    def boom(*args, **kwargs):  # pragma: no cover - must never run
        raise AssertionError("guard helper ran while the sanitizer was off")

    monkeypatch.setattr(inv, "check_counter_int", boom)
    monkeypatch.setattr(inv, "check_saturation", boom)
    sketch = DaVinciSketch(small_config)
    for key in range(1, 200):
        sketch.insert(key % 17 + 1)
    assert sketch.total_count == 199


# --------------------------------------------------------------------- #
# the check helpers
# --------------------------------------------------------------------- #
def test_check_raises_into_the_package_hierarchy():
    with pytest.raises(InvariantViolation) as excinfo:
        inv.check(False, "the message")
    assert "the message" in str(excinfo.value)
    assert isinstance(excinfo.value, ReproError)
    assert isinstance(excinfo.value, AssertionError)
    inv.check(True, "never raised")


def test_check_field_element_bounds():
    inv.check_field_element(0, 7, "t")
    inv.check_field_element(6, 7, "t")
    with pytest.raises(InvariantViolation):
        inv.check_field_element(7, 7, "t")
    with pytest.raises(InvariantViolation):
        inv.check_field_element(-1, 7, "t")
    with pytest.raises(InvariantViolation):
        inv.check_field_element(2.0, 7, "t")  # floats are contamination


def test_check_counter_int_rejects_floats_and_bools():
    inv.check_counter_int(-3, "t")
    with pytest.raises(InvariantViolation):
        inv.check_counter_int(1.0, "t")
    with pytest.raises(InvariantViolation):
        inv.check_counter_int(True, "t")


def test_range_helpers():
    inv.check_non_negative(0, "t")
    inv.check_bounded(5, 0, 10, "t")
    inv.check_saturation(15, 15, "t")
    with pytest.raises(InvariantViolation):
        inv.check_non_negative(-1, "t")
    with pytest.raises(InvariantViolation):
        inv.check_bounded(11, 0, 10, "t")
    with pytest.raises(InvariantViolation):
        inv.check_saturation(16, 15, "t")


# --------------------------------------------------------------------- #
# wired guards, armed
# --------------------------------------------------------------------- #
def test_full_insert_path_passes_under_the_sanitizer(small_config, invariants_on):
    sketch = DaVinciSketch(small_config)
    for key in range(1, 500):
        sketch.insert(key % 61 + 1)
    assert sketch.query(1) >= 0
    assert sketch.cardinality() > 0


def test_insert_into_merged_sketch_is_rejected(small_config, invariants_on):
    left = DaVinciSketch(small_config)
    right = DaVinciSketch(small_config)
    left.insert(1)
    right.insert(2)
    merged = left.union(right)
    with pytest.raises(SketchModeError, match="read-only"):
        merged.insert(3)
    with pytest.raises(SketchModeError, match="read-only"):
        merged.insert_batch([(3, 1)])


def test_merged_sketch_rejection_does_not_need_the_sanitizer(small_config):
    # the mode guard must hold even with the debug sanitizer off (the
    # production configuration); it is a correctness guard, not a check
    previous = inv.set_enabled(False)
    try:
        left = DaVinciSketch(small_config)
        right = DaVinciSketch(small_config)
        left.insert(1)
        right.insert(2)
        for sealed in (left.union(right), left.difference(right)):
            with pytest.raises(SketchModeError, match="read-only"):
                sealed.insert(3)
            with pytest.raises(SketchModeError, match="read-only"):
                sealed.insert_all([3, 4])
    finally:
        inv.set_enabled(previous)


def test_non_integer_count_is_rejected(small_config, invariants_on):
    sketch = DaVinciSketch(small_config)
    with pytest.raises(InvariantViolation):
        sketch.insert(1, count=2.5)


def test_element_filter_offer_invariants_hold(invariants_on):
    ef = ElementFilter(level_widths=(32, 8), level_bits=(4, 8), threshold=10, seed=3)
    for key in range(1, 100):
        overflow = ef.offer(key % 7 + 1, 3)
        assert 0 <= overflow <= 3


def test_decode_roundtrip_check_passes_on_honest_decode(invariants_on):
    ifp = InfrequentPart(rows=3, width=64, seed=5)
    for key in range(1, 9):
        ifp.insert(key, key * 3)
    result = ifp.decode()
    assert result.complete  # light load: everything peels...
    assert result.counts == {key: key * 3 for key in range(1, 9)}


def test_decode_roundtrip_check_catches_mismatches(invariants_on):
    ifp = InfrequentPart(rows=2, width=16, seed=5)
    ifp.insert(5, 4)
    inv.check_decode_roundtrip(ifp, {5: 4}, "t")  # honest: passes
    with pytest.raises(InvariantViolation, match="re-encode"):
        inv.check_decode_roundtrip(ifp, {5: 3}, "t")  # wrong count
    with pytest.raises(InvariantViolation, match="re-encode"):
        inv.check_decode_roundtrip(ifp, {6: 4}, "t")  # phantom key
