"""SK201 — lock-order cycles and self-deadlocks (fixture pack)."""

from __future__ import annotations

from tests.analysis.conftest import lint_pack

from tools.sketchlint.baseline import Baseline
from tools.sketchlint.engine import LintReport


def test_bad_pack_flags_cycle_and_self_deadlock():
    violations = lint_pack("sk201", "bad.py")
    assert [v.code for v in violations] == ["SK201"] * 3
    assert [v.line for v in violations] == [15, 20, 33]
    by_line = {v.line: v.message for v in violations}
    # the ABBA cycle is reported once per direction, each message naming
    # the opposite acquisition site — the acceptance criterion
    assert "bad.py:20" in by_line[15]
    assert "bad.py:15" in by_line[20]
    assert "Transfer._accounts" in by_line[15]
    assert "Transfer._journal" in by_line[15]
    # non-reentrant re-acquisition through a helper call
    assert "self-deadlock" in by_line[33]
    assert "Recount._unsafe_read" in by_line[33]
    assert "RLock" in by_line[33]


def test_good_pack_is_clean():
    # same-order pairs, RLock re-entry, the name-sorted group pattern,
    # and alias + try/finally release must all pass
    assert lint_pack("sk201", "good.py") == []


def test_pragma_pack_is_suppressed():
    assert lint_pack("sk201", "pragma.py") == []


def test_baseline_suppresses_the_bad_pack(tmp_path):
    report = LintReport(violations=lint_pack("sk201", "bad.py"))
    Baseline.from_report(report, path=tmp_path / "baseline.json").apply(report)
    assert report.violations == []
    assert report.baseline_suppressed == 3
