"""SK003 — exception discipline, against the fixture corpus."""

from __future__ import annotations

from tests.analysis.conftest import lint_fixture
from tools.sketchlint.rules.sk003_exceptions import ExceptionDisciplineRule


def test_bad_fixture_flags_assert_bare_except_and_foreign_raise():
    violations = lint_fixture("sk003_bad.py", ExceptionDisciplineRule())
    assert len(violations) == 3
    messages = "\n".join(v.message for v in violations)
    assert "assert" in messages
    assert "bare 'except:'" in messages
    assert "ValueError" in messages


def test_good_fixture_is_clean():
    assert lint_fixture("sk003_good.py", ExceptionDisciplineRule()) == []


def test_local_subclass_resolution_is_transitive():
    from tools.sketchlint.engine import lint_source

    source = (
        "class A(ReproError):\n    pass\n"
        "class B(A):\n    pass\n"
        "raise B('nested subclass is allowed')\n"
    )
    assert lint_source(source, rules=[ExceptionDisciplineRule()]) == []


def test_raising_caught_variable_is_not_flagged():
    from tools.sketchlint.engine import lint_source

    source = (
        "try:\n    f()\nexcept KeyError as err:\n"
        "    raise err\n"
    )
    assert lint_source(source, rules=[ExceptionDisciplineRule()]) == []


def test_raising_bare_foreign_class_is_flagged():
    from tools.sketchlint.engine import lint_source

    source = "raise NotImplementedError\n"
    violations = lint_source(source, rules=[ExceptionDisciplineRule()])
    assert [v.code for v in violations] == ["SK003"]
