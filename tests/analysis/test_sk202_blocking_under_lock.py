"""SK202 — blocking calls while holding a lock (fixture pack)."""

from __future__ import annotations

from tests.analysis.conftest import lint_pack


def test_bad_pack_flags_every_blocking_family():
    violations = lint_pack("sk202", "bad.py")
    assert [v.code for v in violations] == ["SK202"] * 5
    assert [v.line for v in violations] == [16, 21, 27, 31, 45]
    by_line = {v.line: v.message for v in violations}
    assert "blocks on I/O" in by_line[16]  # socket recv under the lock
    assert "stalls every waiter" in by_line[21]  # time.sleep under the lock
    assert "waits without a timeout" in by_line[27]  # bare thread join
    assert "blocks without a timeout" in by_line[31]  # queue get, no timeout
    # Condition.wait() releases only its own lock, not the outer one
    assert "releases only its own lock" in by_line[45]
    assert "Gate._lock" in by_line[45]


def test_good_pack_is_clean():
    # recv before the lock, sleep after the try/finally release,
    # join/get with timeouts, and a wait holding only its own condition
    assert lint_pack("sk202", "good.py") == []


def test_pragma_pack_is_suppressed():
    assert lint_pack("sk202", "pragma.py") == []
