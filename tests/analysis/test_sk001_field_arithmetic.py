"""SK001 — field-arithmetic hygiene, against the fixture corpus."""

from __future__ import annotations

from tests.analysis.conftest import lint_fixture
from tools.sketchlint.rules.sk001_field_arithmetic import FieldArithmeticRule


def test_bad_fixture_flags_every_unreduced_write():
    violations = lint_fixture("sk001_bad.py", FieldArithmeticRule())
    assert len(violations) == 3
    assert all(v.code == "SK001" for v in violations)
    # One of them is specifically the augmented-assignment form.
    assert any("augmented" in v.message for v in violations)


def test_good_fixture_is_clean():
    assert lint_fixture("sk001_good.py", FieldArithmeticRule()) == []


def test_whole_array_binding_is_exempt():
    from tools.sketchlint.engine import lint_source

    source = "self = object()\nself.ids = [[0] * 4 for _ in range(2)]\n"
    assert lint_source(source, rules=[FieldArithmeticRule()]) == []


def test_non_field_names_are_ignored():
    from tools.sketchlint.engine import lint_source

    source = "counters[j] = counters[j] + 1\n"
    assert lint_source(source, rules=[FieldArithmeticRule()]) == []


def test_modulo_augmented_assignment_is_a_reduction():
    from tools.sketchlint.engine import lint_source

    source = "ids[j] %= p\n"
    assert lint_source(source, rules=[FieldArithmeticRule()]) == []
