"""CLI v2 behavior: exit codes, baseline modes, cache flags."""

from __future__ import annotations

import json

from tools.sketchlint.baseline import Baseline
from tools.sketchlint.cli import main


def _clean_file(tmp_path, name="clean.py"):
    target = tmp_path / name
    target.write_text("x = 1\n", encoding="utf-8")
    return target


def _bad_file(tmp_path, name="bad.py"):
    target = tmp_path / name
    target.write_text("assert True\n", encoding="utf-8")
    return target


def _run(*argv) -> int:
    return main([str(a) for a in argv])


# --------------------------------------------------------------------- #
# exit codes
# --------------------------------------------------------------------- #
def test_exit_zero_on_clean_tree(tmp_path):
    target = _clean_file(tmp_path)
    assert _run(target, "--no-cache", "--no-baseline") == 0


def test_exit_one_on_violations(tmp_path):
    target = _bad_file(tmp_path)
    assert _run(target, "--no-cache", "--no-baseline") == 1


def test_exit_two_on_missing_path(tmp_path, capsys):
    assert _run(tmp_path / "nope", "--no-cache") == 2
    assert "not found" in capsys.readouterr().err


def test_exit_two_when_no_python_files_match(tmp_path, capsys):
    (tmp_path / "README.md").write_text("docs only\n", encoding="utf-8")
    assert _run(tmp_path, "--no-cache") == 2
    assert "refusing to lint nothing" in capsys.readouterr().err


def test_exit_two_on_unknown_select_code(tmp_path, capsys):
    target = _clean_file(tmp_path)
    assert _run(target, "--select", "SK999", "--no-cache") == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_exit_two_on_parse_error(tmp_path):
    target = tmp_path / "broken.py"
    target.write_text("def f(:\n", encoding="utf-8")
    assert _run(target, "--no-cache", "--no-baseline") == 2


def test_list_rules_exits_zero(capsys):
    assert main(["--list-rules", "ignored.py"]) == 0
    out = capsys.readouterr().out
    for code in ("SK001", "SK101", "SK102", "SK103", "SK104", "SK105"):
        assert code in out


# --------------------------------------------------------------------- #
# baseline modes
# --------------------------------------------------------------------- #
def test_update_baseline_records_findings_and_exits_zero(tmp_path):
    target = _bad_file(tmp_path)
    baseline_path = tmp_path / "baseline.json"
    assert (
        _run(
            target,
            "--baseline",
            baseline_path,
            "--update-baseline",
            "--no-cache",
        )
        == 0
    )
    payload = json.loads(baseline_path.read_text(encoding="utf-8"))
    assert payload["findings"], "the finding must be recorded"
    assert payload["findings"][0]["content"] == "assert True"


def test_baseline_suppresses_recorded_findings(tmp_path, capsys):
    target = _bad_file(tmp_path)
    baseline_path = tmp_path / "baseline.json"
    _run(target, "--baseline", baseline_path, "--update-baseline", "--no-cache")
    capsys.readouterr()

    code = _run(target, "--baseline", baseline_path, "--no-cache")
    assert code == 0
    assert "baselined" in capsys.readouterr().out


def test_no_baseline_reports_grandfathered_findings(tmp_path):
    target = _bad_file(tmp_path)
    baseline_path = tmp_path / "baseline.json"
    _run(target, "--baseline", baseline_path, "--update-baseline", "--no-cache")

    assert (
        _run(target, "--baseline", baseline_path, "--no-baseline", "--no-cache")
        == 1
    )


def test_new_findings_past_the_baseline_count_still_fail(tmp_path):
    target = _bad_file(tmp_path)
    baseline_path = tmp_path / "baseline.json"
    _run(target, "--baseline", baseline_path, "--update-baseline", "--no-cache")

    target.write_text("assert True\nassert True\n", encoding="utf-8")
    assert _run(target, "--baseline", baseline_path, "--no-cache") == 1


def test_update_baseline_preserves_existing_justifications(tmp_path):
    target = _bad_file(tmp_path)
    baseline_path = tmp_path / "baseline.json"
    _run(target, "--baseline", baseline_path, "--update-baseline", "--no-cache")

    loaded = Baseline.load(baseline_path)
    (key,) = loaded.entries
    loaded.entries[key]["justification"] = "accepted legacy assert"
    loaded.save()

    _run(target, "--baseline", baseline_path, "--update-baseline", "--no-cache")
    refreshed = Baseline.load(baseline_path)
    assert refreshed.entries[key]["justification"] == "accepted legacy assert"


def test_corrupt_baseline_is_a_usage_error(tmp_path, capsys):
    target = _bad_file(tmp_path)
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text("{broken", encoding="utf-8")
    assert _run(target, "--baseline", baseline_path, "--no-cache") == 2
    assert "invalid baseline JSON" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# cache flag
# --------------------------------------------------------------------- #
def test_cache_path_flag_writes_the_cache_there(tmp_path):
    target = _clean_file(tmp_path)
    cache_path = tmp_path / "cache.json"
    assert _run(target, "--cache-path", cache_path, "--no-baseline") == 0
    assert cache_path.exists()
    # second run loads the cache cleanly and agrees
    assert _run(target, "--cache-path", cache_path, "--no-baseline") == 0


def test_select_restricts_the_run(tmp_path):
    target = _bad_file(tmp_path)
    # SK002 does not flag bare asserts, so the tree is clean under it
    assert (
        _run(target, "--select", "SK002", "--no-cache", "--no-baseline") == 0
    )
    # SK003 (exception discipline) does
    assert (
        _run(target, "--select", "SK003", "--no-cache", "--no-baseline") == 1
    )
