"""Structural tests for the per-function CFG builder."""

from __future__ import annotations

import ast
import textwrap

from tools.sketchlint.cfg import (
    FALSE,
    KIND_BRANCH,
    KIND_STMT,
    TRUE,
    build_cfg,
)


def _cfg_of(source: str):
    tree = ast.parse(textwrap.dedent(source))
    return build_cfg(tree.body[0])


def _stmt_lines(cfg):
    return sorted(
        node.stmt.lineno for node in cfg.statement_nodes() if node.stmt is not None
    )


def test_straight_line_flow_reaches_exit():
    cfg = _cfg_of(
        """
        def f(x):
            a = x + 1
            b = a * 2
            return b
        """
    )
    assert _stmt_lines(cfg) == [3, 4, 5]
    return_node = [n for n in cfg.statement_nodes() if isinstance(n.stmt, ast.Return)]
    assert len(return_node) == 1
    targets = [uid for uid, _label in cfg.edges[return_node[0].uid]]
    assert cfg.exit.uid in targets


def test_if_branch_edges_are_labelled():
    cfg = _cfg_of(
        """
        def f(x):
            if x > 0:
                y = 1
            else:
                y = 2
            return y
        """
    )
    branches = [n for n in cfg.nodes.values() if n.kind == KIND_BRANCH]
    assert len(branches) == 1
    labels = sorted(label for _uid, label in cfg.edges[branches[0].uid])
    assert labels == [FALSE, TRUE]


def test_loop_body_is_on_cycle_but_after_loop_is_not():
    cfg = _cfg_of(
        """
        def f(items):
            total = 0
            for item in items:
                total += item
            return total
        """
    )
    body = [
        n
        for n in cfg.statement_nodes()
        if isinstance(n.stmt, ast.AugAssign)
    ]
    tail = [n for n in cfg.statement_nodes() if isinstance(n.stmt, ast.Return)]
    first = [
        n
        for n in cfg.statement_nodes()
        if isinstance(n.stmt, ast.Assign)
    ]
    assert cfg.on_cycle(body[0])
    assert not cfg.on_cycle(tail[0])
    assert not cfg.on_cycle(first[0])


def test_guard_followed_by_return_inside_loop_is_not_on_cycle():
    # the frequent-part idiom: the branch's every arm leaves the loop
    cfg = _cfg_of(
        """
        def f(items, flag):
            for item in items:
                if item:
                    found = item
                    return found
                return None
            return None
        """
    )
    branches = [n for n in cfg.nodes.values() if n.kind == KIND_BRANCH]
    # branch 0 is the for header (test None), branch 1 the if
    if_branch = [b for b in branches if b.test is not None]
    assert len(if_branch) == 1
    assert not cfg.on_cycle(if_branch[0])


def test_continue_keeps_the_cycle_alive():
    cfg = _cfg_of(
        """
        def f(items):
            for item in items:
                if item < 0:
                    continue
                item = item + 1
            return items
        """
    )
    if_branch = [
        n for n in cfg.nodes.values() if n.kind == KIND_BRANCH and n.test is not None
    ]
    assert cfg.on_cycle(if_branch[0])


def test_break_exits_the_loop():
    cfg = _cfg_of(
        """
        def f(items):
            for item in items:
                if item:
                    break
            return items
        """
    )
    breaks = [n for n in cfg.statement_nodes() if isinstance(n.stmt, ast.Break)]
    assert len(breaks) == 1
    assert not any(
        cfg.nodes[uid].kind == KIND_BRANCH and cfg.nodes[uid].test is None
        for uid, _label in cfg.edges[breaks[0].uid]
    ), "break must not edge back to the loop header"


def test_raise_reaches_raise_exit_outside_try():
    cfg = _cfg_of(
        """
        def f(x):
            if x < 0:
                raise ValueError(x)
            return x
        """
    )
    raises = [n for n in cfg.statement_nodes() if isinstance(n.stmt, ast.Raise)]
    targets = [uid for uid, _label in cfg.edges[raises[0].uid]]
    assert cfg.raise_exit.uid in targets


def test_try_body_statements_edge_to_handlers():
    cfg = _cfg_of(
        """
        def f(x):
            try:
                y = risky(x)
            except ValueError:
                y = 0
            return y
        """
    )
    body = [
        n
        for n in cfg.statement_nodes()
        if isinstance(n.stmt, ast.Assign) and n.stmt.lineno == 4
    ]
    assert body, "try-body statement missing from the CFG"
    successor_kinds = {
        cfg.nodes[uid].kind for uid, _label in cfg.edges[body[0].uid]
    }
    assert len(cfg.edges[body[0].uid]) >= 2  # fallthrough + handler edge
    assert KIND_STMT in successor_kinds or "join" in successor_kinds


def test_while_loop_back_edge():
    cfg = _cfg_of(
        """
        def f(n):
            while n > 0:
                n = n - 1
            return n
        """
    )
    body = [n for n in cfg.statement_nodes() if isinstance(n.stmt, ast.Assign)]
    assert cfg.on_cycle(body[0])
    branches = [n for n in cfg.nodes.values() if n.kind == KIND_BRANCH]
    assert cfg.on_cycle(branches[0])


def test_unreachable_code_after_return_is_dropped():
    cfg = _cfg_of(
        """
        def f(x):
            return x
            y = 1
        """
    )
    assert _stmt_lines(cfg) == [3]
