"""SK102 — observability guard discipline (fixture pack)."""

from __future__ import annotations

from tests.analysis.conftest import lint_pack

from tools.sketchlint.baseline import Baseline
from tools.sketchlint.engine import LintReport


def test_bad_pack_flags_loop_guard_and_unguarded_call():
    violations = lint_pack("sk102", "bad.py")
    assert [v.code for v in violations] == ["SK102", "SK102"]
    assert [v.line for v in violations] == [9, 14]
    by_line = {v.line: v.message for v in violations}
    assert "hoist" in by_line[9]  # ENABLED re-read inside the per-item loop
    assert "guard" in by_line[14]  # recorder call with no guard at all


def test_good_pack_is_clean():
    # hoisted `observing =`, early-return guards, `and`-composed guards,
    # and control-plane calls (snapshot/enabled) must all pass
    assert lint_pack("sk102", "good.py") == []


def test_pragma_pack_is_suppressed():
    assert lint_pack("sk102", "pragma.py") == []


def test_baseline_suppresses_the_bad_pack(tmp_path):
    report = LintReport(violations=lint_pack("sk102", "bad.py"))
    Baseline.from_report(report, path=tmp_path / "baseline.json").apply(report)
    assert report.violations == []
    assert report.baseline_suppressed == 2
