"""SK206 — metrics/trace recording inside a lock region."""

from __future__ import annotations

from tests.analysis.conftest import lint_pack


def test_bad_pack_flags_recorder_calls_under_the_lock():
    violations = lint_pack("sk206", "bad.py")
    assert [v.code for v in violations] == ["SK206"] * 4
    assert [v.line for v in violations] == [16, 21, 26, 31]
    for violation in violations:
        assert "Store._lock" in violation.message
        assert "record after releasing" in violation.message


def test_chained_recorder_reports_once_per_site():
    # `_obs.counter(...).inc()` matches the inner and outer call of the
    # chain; the rule must deduplicate to one finding per source position
    violations = lint_pack("sk206", "bad.py")
    assert len([v for v in violations if v.line == 21]) == 1


def test_helper_only_called_under_lock_is_flagged():
    # _locked_insert records while its callers always hold the lock:
    # the callers_held fixpoint attributes the region interprocedurally
    violations = lint_pack("sk206", "bad.py")
    assert any(v.line == 31 for v in violations)


def test_good_pack_is_clean():
    # snapshot-then-record, control-plane calls under the lock, and the
    # recorder implementation itself must all pass
    assert lint_pack("sk206", "good.py") == []


def test_pragma_pack_is_suppressed():
    assert lint_pack("sk206", "pragma.py") == []
