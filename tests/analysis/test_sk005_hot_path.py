"""SK005 — hot-path purity, against the fixture corpus."""

from __future__ import annotations

from tests.analysis.conftest import lint_fixture
from tools.sketchlint.rules.sk005_hot_path import HotPathPurityRule


def test_bad_fixture_flags_try_comprehension_and_float():
    violations = lint_fixture("sk005_bad.py", HotPathPurityRule())
    assert len(violations) == 3
    messages = "\n".join(v.message for v in violations)
    assert "try/except" in messages
    assert "ListComp" in messages
    assert "float literal" in messages


def test_good_fixture_is_clean():
    assert lint_fixture("sk005_good.py", HotPathPurityRule()) == []


def test_abstract_insert_is_skipped():
    from tools.sketchlint.engine import lint_source

    source = (
        "import abc\n"
        "class Base(abc.ABC):\n"
        "    @abc.abstractmethod\n"
        "    def insert(self, key, count=1):\n"
        "        return [0.5 for _ in range(2)]\n"
    )
    assert lint_source(source, rules=[HotPathPurityRule()]) == []


def test_update_method_is_also_hot():
    from tools.sketchlint.engine import lint_source

    source = (
        "class S:\n"
        "    def update(self, key):\n"
        "        self.weights[key] = 0.25\n"
    )
    violations = lint_source(source, rules=[HotPathPurityRule()])
    assert [v.code for v in violations] == ["SK005"]
