"""The "free while disabled" pin, isolated from workload noise.

``docs/OBSERVABILITY.md`` promises metrics collection costs the
disabled ingest path <= 1%.  An end-to-end A/B cannot isolate that (the
guards cannot be compiled out), so this test measures the two factors
directly and multiplies:

* **how many** guard evaluations a disabled batched ingest performs —
  counted exactly by swapping :data:`repro.observability.metrics.ENABLED`
  for a falsy object whose ``__bool__`` counts calls (every ``if
  _obs.ENABLED:`` site and every hoisted ``if observing:`` local hits
  it); and
* **how much** one disabled guard dispatch costs — a min-of-repeats
  microbench of the ``if module.ENABLED:`` idiom against an empty loop.

``evals x per_guard_cost / ingest_time`` is the disabled-mode overhead
fraction.  On a quiet machine it measures ~0.05%; the assertions allow
a full order of magnitude of CI noise and still sit at the documented
1% bound.  A structural pin rides along: batched ingest must evaluate
*sub-linearly* many guards (the per-batch hoisting discipline), because
that — not dispatch speed — is what keeps the idiom free at scale.
"""

import time

from repro.core import DaVinciConfig, DaVinciSketch
from repro.observability import metrics as obs
from repro.workloads import zipf_trace

NUM_ITEMS = 100_000
NUM_FLOWS = 10_000
MEMORY_KB = 16.0


class _CountingFalsy:
    """Falsy stand-in for the ENABLED flag that counts truth tests."""

    def __init__(self) -> None:
        self.evals = 0

    def __bool__(self) -> bool:
        self.evals += 1
        return False


def _fresh_sketch():
    return DaVinciSketch(DaVinciConfig.from_memory_kb(MEMORY_KB, seed=11))


def _count_disabled_guard_evals(trace):
    flag = _CountingFalsy()
    previous = obs.set_enabled(False)
    obs.ENABLED = flag  # type: ignore[assignment]
    try:
        _fresh_sketch().insert_all(trace)
    finally:
        obs.ENABLED = False
        obs.set_enabled(previous)
    return flag.evals


def _guard_dispatch_seconds(iterations=1_000_000, repeats=5):
    """Min-of-repeats incremental cost of ``if module.ENABLED:``."""

    def guarded() -> float:
        start = time.perf_counter()
        for _ in range(iterations):
            if obs.ENABLED:
                raise RuntimeError("flag must stay disabled here")
        return time.perf_counter() - start

    def empty() -> float:
        start = time.perf_counter()
        for _ in range(iterations):
            pass
        return time.perf_counter() - start

    previous = obs.set_enabled(False)
    try:
        guard = min(guarded() for _ in range(repeats))
        base = min(empty() for _ in range(repeats))
    finally:
        obs.set_enabled(previous)
    return max(guard - base, 0.0) / iterations


def _ingest_seconds(trace, repeats=3):
    previous = obs.set_enabled(False)
    try:
        best = float("inf")
        for _ in range(repeats):
            sketch = _fresh_sketch()
            start = time.perf_counter()
            sketch.insert_all(trace)
            best = min(best, time.perf_counter() - start)
    finally:
        obs.set_enabled(previous)
    return best


def test_batched_ingest_hoists_guards():
    """Guard evaluations must be sub-linear in the item count."""
    trace = zipf_trace(NUM_ITEMS, NUM_FLOWS, 1.1, seed=3)
    evals = _count_disabled_guard_evals(trace)
    # measured ~0.15 evals/item (chunk-level guards + per-promoted-pair
    # hoisted locals); 0.5 leaves room for workload drift while still
    # outlawing a per-item module-attribute guard (>= 1.0 per item)
    assert 0 < evals <= 0.5 * len(trace), evals


def test_disabled_overhead_fraction_below_one_percent():
    trace = zipf_trace(NUM_ITEMS, NUM_FLOWS, 1.1, seed=3)
    evals = _count_disabled_guard_evals(trace)
    per_guard = _guard_dispatch_seconds()
    ingest = _ingest_seconds(trace)

    # sanity on the factors themselves (quiet machine: ~4ns and ~1us)
    assert per_guard <= 1e-6, f"guard dispatch {per_guard * 1e9:.0f}ns"
    assert ingest > 0

    fraction = evals * per_guard / ingest
    assert fraction <= 0.01, (
        f"disabled-mode guard overhead {fraction:.4%} "
        f"({evals} evals x {per_guard * 1e9:.1f}ns over {ingest:.3f}s)"
    )


def test_disabled_flag_is_plain_bool_after_toggling():
    """The counting shim must never leak out of these tests."""
    assert isinstance(obs.ENABLED, bool)
    previous = obs.set_enabled(False)
    obs.set_enabled(previous)
    assert isinstance(obs.ENABLED, bool)
