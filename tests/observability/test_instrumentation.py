"""End-to-end instrumentation consistency on a large Zipf stream.

Arms metric collection, pushes a 1M-item Zipf(1.1) trace through a
DaVinci sketch with a private registry, and asserts the identities the
catalog in ``docs/OBSERVABILITY.md`` promises:

* facade totals match the ground-truth stream mass exactly;
* the Algorithm-1 case counters partition the FP arrivals;
* every layer's inflow equals the layer above's outflow;
* mass conservation — FP resident mass + EF absorbed units + IFP
  encoded units = total stream mass (every unit in exactly one layer);
* decode telemetry matches the decoded result;
* disarmed runs record nothing at all.
"""

import pytest

from repro.core import DaVinciConfig, DaVinciSketch
from repro.observability import metrics as obs
from repro.observability.metrics import MetricsRegistry
from repro.workloads import zipf_trace

SEED = 424242
NUM_ITEMS = 1_000_000
NUM_FLOWS = 50_000
SKEW = 1.1
MEMORY_KB = 64.0


@pytest.fixture(scope="module")
def trace():
    return zipf_trace(NUM_ITEMS, NUM_FLOWS, SKEW, seed=SEED)


@pytest.fixture(scope="module")
def armed_run(trace):
    """One armed 1M-item ingest + a query mix, on a private registry."""
    registry = MetricsRegistry()
    config = DaVinciConfig.from_memory_kb(MEMORY_KB, seed=SEED + 1)
    sketch = DaVinciSketch(config, metrics_registry=registry)
    previous = obs.set_enabled(True)
    try:
        sketch.insert_all(trace)
        sketch.query(trace[0])
        sketch.heavy_hitters(1000)
        sketch.cardinality()
        sketch.distribution()
        sketch.entropy()
    finally:
        obs.set_enabled(previous)
    return sketch, registry, registry.snapshot()


class TestFacadeTotals:
    def test_items_equal_ground_truth_stream_mass(self, armed_run, trace):
        sketch, registry, _ = armed_run
        assert registry.value("davinci_items_total") == len(trace) == NUM_ITEMS
        assert registry.value("davinci_items_total") == sketch.total_count

    def test_inserts_count_aggregated_pairs(self, armed_run):
        _, registry, _ = armed_run
        inserts = registry.value("davinci_inserts_total")
        # batched ingest pre-aggregates each chunk, so pairs <= items
        assert 0 < inserts <= NUM_ITEMS

    def test_task_latency_histograms_observed(self, armed_run):
        _, _, snap = armed_run
        histograms = snap["histograms"]
        for task in (
            "query",
            "heavy_hitters",
            "cardinality",
            "distribution",
            "entropy",
        ):
            key = f'davinci_task_seconds{{task="{task}"}}'
            assert histograms[key]["count"] >= 1, key
            assert histograms[key]["sum"] >= 0.0


class TestLayerIdentities:
    def test_case_counters_partition_fp_arrivals(self, armed_run):
        _, registry, _ = armed_run
        total = sum(
            registry.value("davinci_fp_insert_cases_total", case=case)
            for case in (1, 2, 3, 4)
        )
        assert total == registry.value("davinci_fp_inserts_total") > 0

    def test_evictions_are_case3(self, armed_run):
        _, registry, _ = armed_run
        assert registry.value("davinci_fp_evictions_total") == registry.value(
            "davinci_fp_insert_cases_total", case=3
        )

    def test_ef_offers_equal_fp_demotions(self, armed_run):
        _, registry, _ = armed_run
        offers = registry.value("davinci_ef_offers_total")
        assert offers == registry.value("davinci_fp_demotions_total")
        assert offers > 0  # a 1M Zipf stream must overflow a 64KB FP

    def test_ifp_units_equal_ef_overflow(self, armed_run):
        _, registry, _ = armed_run
        promoted = registry.value("davinci_ifp_inserted_units_total")
        assert promoted == registry.value("davinci_ef_overflow_units_total")
        assert promoted > 0

    def test_mass_conservation_across_layers(self, armed_run):
        sketch, registry, _ = armed_run
        fp_resident = sum(count for _, count in sketch.fp.items())
        absorbed = registry.value("davinci_ef_absorbed_units_total")
        promoted = registry.value("davinci_ifp_inserted_units_total")
        assert fp_resident + absorbed + promoted == NUM_ITEMS

    def test_occupancy_gauges_read_live_structure(self, armed_run):
        sketch, registry, _ = armed_run
        assert registry.value("davinci_fp_occupancy_entries") == len(sketch.fp)
        fraction = registry.value("davinci_fp_occupancy_fraction")
        assert 0.0 < fraction <= 1.0


class TestDecodeTelemetry:
    def test_decode_counters_match_result(self, armed_run):
        sketch, registry, _ = armed_run
        result = sketch.decode_result()
        decodes = registry.value("davinci_ifp_decodes_total")
        assert decodes >= 1
        complete = registry.value("davinci_ifp_decode_complete_total")
        incomplete = registry.value("davinci_ifp_decode_incomplete_total")
        assert complete + incomplete == decodes
        if result.complete:
            assert complete >= 1
        assert registry.value("davinci_ifp_peeled_buckets_total") >= len(
            result.counts
        )
        assert registry.value("davinci_ifp_residual_buckets") == (
            result.residual_buckets
        )

    def test_decode_cache_counters(self, armed_run):
        sketch, registry, _ = armed_run
        with obs.enabled():
            sketch.decode_result()
            sketch.decode_result()
        assert registry.value("davinci_decode_cache_hits_total") >= 1
        assert registry.value("davinci_decode_cache_misses_total") >= 1


class TestDisarmed:
    def test_disarmed_run_records_nothing(self):
        registry = MetricsRegistry()
        config = DaVinciConfig.from_memory_kb(4.0, seed=7)
        sketch = DaVinciSketch(config, metrics_registry=registry)
        previous = obs.set_enabled(False)
        try:
            sketch.insert_all(zipf_trace(20_000, 2_000, SKEW, seed=9))
            sketch.query(1)
            sketch.heavy_hitters(100)
        finally:
            obs.set_enabled(previous)
        snap = registry.snapshot()
        assert all(value == 0 for value in snap["counters"].values())
        assert all(h["count"] == 0 for h in snap["histograms"].values())
