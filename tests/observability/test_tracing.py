"""Unit tests for the bounded trace-event sink + fault-injector emission."""

import pytest

from repro.common.errors import ObservabilityError, ReproError
from repro.observability.tracing import (
    TraceSink,
    get_default_trace_sink,
    set_default_trace_sink,
)
from repro.testing.faults import CrashInjector, flip_bit, truncate


class TestTraceSink:
    def test_emit_returns_ordered_events(self):
        sink = TraceSink(clock=lambda: 12.5)
        first = sink.emit("a", x=1)
        second = sink.emit("b", x=2, y="z")
        assert first.seq == 1
        assert second.seq == 2
        assert first.timestamp == 12.5
        assert second.fields == {"x": 2, "y": "z"}
        assert sink.names() == ["a", "b"]
        assert len(sink) == 2

    def test_ring_buffer_drops_oldest_and_counts(self):
        sink = TraceSink(capacity=3)
        for i in range(5):
            sink.emit("tick", i=i)
        assert len(sink) == 3
        assert sink.dropped == 2
        assert sink.field_sequence("i") == [2, 3, 4]
        # sequence numbers keep increasing across drops
        assert [e.seq for e in sink.events()] == [3, 4, 5]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ObservabilityError):
            TraceSink(capacity=0)

    def test_events_filter_and_field_sequence(self):
        sink = TraceSink()
        sink.emit("step", n=1)
        sink.emit("crash", n=2)
        sink.emit("step", n=3)
        assert [e.fields["n"] for e in sink.events("step")] == [1, 3]
        assert sink.field_sequence("n", name="step") == [1, 3]
        assert sink.field_sequence("missing") == []

    def test_clear_resets_buffer_and_dropped(self):
        sink = TraceSink(capacity=1)
        sink.emit("a")
        sink.emit("b")
        assert sink.dropped == 1
        sink.clear()
        assert len(sink) == 0
        assert sink.dropped == 0

    def test_as_dict_is_json_ready(self):
        import json

        sink = TraceSink(clock=lambda: 1.0)
        event = sink.emit("fault.crash", label="journal:record", op=3)
        payload = json.loads(json.dumps(event.as_dict()))
        assert payload == {
            "name": "fault.crash",
            "fields": {"label": "journal:record", "op": 3},
            "seq": 1,
            "timestamp": 1.0,
        }

    def test_default_sink_swap_restores(self):
        mine = TraceSink()
        previous = set_default_trace_sink(mine)
        try:
            assert get_default_trace_sink() is mine
        finally:
            set_default_trace_sink(previous)
        assert get_default_trace_sink() is previous


class TestFaultInjectorEmission:
    """The injectors trace unconditionally (not gated on the metrics flag)."""

    def test_crash_injector_emits_steps_then_crash(self):
        sink = TraceSink()
        injector = CrashInjector(crash_after=2, trace=sink)
        injector("journal:record")
        with pytest.raises(ReproError):
            injector("apply")
        # the crashing call still records its step before firing
        assert sink.names() == [
            "fault.step",
            "fault.step",
            "fault.crash",
        ]
        assert sink.field_sequence("label", name="fault.step") == [
            "journal:record",
            "apply",
        ]
        crash = sink.events("fault.crash")[0]
        assert crash.fields["label"] == "apply"
        assert crash.fields["op"] == 2
        assert crash.fields["step"] == 2

    def test_flip_bit_and_truncate_emit(self):
        sink = TraceSink()
        blob = b"\x00" * 8
        flipped = flip_bit(blob, 5, trace=sink)
        assert flipped != blob
        kept = truncate(blob, 4, trace=sink)
        assert len(kept) == 4
        assert sink.names() == ["fault.flip_bit", "fault.truncate"]
        assert sink.events("fault.flip_bit")[0].fields["bit"] == 5
        assert sink.events("fault.truncate")[0].fields == {
            "kept": 4,
            "size": 8,
        }

    def test_injectors_fall_back_to_default_sink(self):
        mine = TraceSink()
        previous = set_default_trace_sink(mine)
        try:
            flip_bit(b"\x00", 0)
            assert mine.names() == ["fault.flip_bit"]
        finally:
            set_default_trace_sink(previous)


class TestRenderJsonl:
    def test_empty_sink_renders_empty_string(self):
        assert TraceSink().render_jsonl() == ""

    def test_lines_are_compact_sorted_and_parse_back(self):
        import json

        sink = TraceSink(clock=lambda: 3.0)
        sink.emit("b", z=1, a="x")
        sink.emit("a", n=2)
        text = sink.render_jsonl()
        assert text.endswith("\n")
        lines = text.splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {
            "fields": {"a": "x", "z": 1},
            "name": "b",
            "seq": 1,
            "timestamp": 3.0,
        }
        # compact separators, keys sorted in the raw text
        assert ", " not in lines[0]
        assert lines[0].index('"fields"') < lines[0].index('"name"')

    def test_name_filter_selects_a_single_stream(self):
        import json

        sink = TraceSink()
        sink.emit("keep", i=1)
        sink.emit("drop", i=2)
        sink.emit("keep", i=3)
        lines = sink.render_jsonl("keep").splitlines()
        assert [json.loads(line)["fields"]["i"] for line in lines] == [1, 3]
        assert sink.render_jsonl("absent") == ""
