"""Unit tests for the metrics registry primitives.

Counters, gauges (value and callback), histograms, labeled families,
registry get-or-create semantics, snapshots and the enable/disable
switches.  Everything here runs on private :class:`MetricsRegistry`
instances — the process-global default registry is only touched by the
tests that explicitly exercise it, and those restore it.
"""

import math

import pytest

from repro.common.errors import ObservabilityError
from repro.observability import metrics as obs
from repro.observability.metrics import MetricsRegistry


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        c = registry.counter("events_total", "Events")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self, registry):
        c = registry.counter("events_total", "Events")
        with pytest.raises(ObservabilityError):
            c.inc(-1)
        assert c.value == 0

    def test_zero_increment_allowed(self, registry):
        c = registry.counter("events_total", "Events")
        c.inc(0)
        assert c.value == 0


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("depth", "Depth")
        g.set(3)
        g.inc()
        g.dec(2)
        assert g.read() == 2

    def test_callback_gauge_reads_live_value(self, registry):
        g = registry.gauge("live", "Live value")
        box = {"value": 7}
        g.set_function(lambda: box["value"])
        assert g.read() == 7
        box["value"] = 11
        assert g.read() == 11
        assert registry.snapshot()["gauges"]["live"] == 11

    def test_callback_outlives_set_until_cleared(self, registry):
        g = registry.gauge("live", "Live value")
        g.set_function(lambda: 99)
        g.set(1)
        assert g.read() == 99  # callback wins while bound
        g.set_function(None)
        assert g.read() == 1  # stored value resurfaces
        g.set_function(lambda: 42)
        g.reset()
        assert g.read() == 0  # reset clears both value and callback


class TestHistogram:
    def test_observe_fills_cumulative_buckets(self, registry):
        h = registry.histogram("lat", "Latency", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            h.observe(value)
        cumulative = dict(h.cumulative_buckets())
        assert cumulative["0.01"] == 1
        assert cumulative["0.1"] == 2
        assert cumulative["1.0"] == 3
        assert cumulative["+Inf"] == 4
        assert h.count == 4
        assert math.isclose(h.sum, 5.555)

    def test_bounds_must_increase(self, registry):
        with pytest.raises(ObservabilityError):
            registry.histogram("bad", "Bad", buckets=(1.0, 1.0))
        with pytest.raises(ObservabilityError):
            registry.histogram("bad2", "Bad", buckets=(2.0, 1.0))
        with pytest.raises(ObservabilityError):
            registry.histogram("bad3", "Bad", buckets=())

    def test_boundary_value_lands_in_le_bucket(self, registry):
        h = registry.histogram("lat", "Latency", buckets=(1.0, 2.0))
        h.observe(1.0)  # le="1.0" is inclusive
        cumulative = dict(h.cumulative_buckets())
        assert cumulative["1.0"] == 1


class TestFamilies:
    def test_label_children_are_get_or_create(self, registry):
        fam = registry.counter_family("errs_total", "Errors", ("kind",))
        a = fam.labels(kind="io")
        b = fam.labels("io")
        assert a is b
        a.inc(2)
        assert registry.value("errs_total", kind="io") == 2

    def test_positional_and_keyword_cannot_mix(self, registry):
        fam = registry.counter_family("errs_total", "Errors", ("kind", "op"))
        with pytest.raises(ObservabilityError):
            fam.labels("io", op="read")

    def test_wrong_arity_rejected(self, registry):
        fam = registry.counter_family("errs_total", "Errors", ("kind",))
        with pytest.raises(ObservabilityError):
            fam.labels("io", "extra")
        with pytest.raises(ObservabilityError):
            fam.labels(other="x")

    def test_label_values_are_stringified(self, registry):
        fam = registry.counter_family("cases_total", "Cases", ("case",))
        fam.labels(case=3).inc()
        assert registry.value("cases_total", case="3") == 1
        assert registry.value("cases_total", case=3) == 1

    def test_children_listing(self, registry):
        fam = registry.gauge_family("sat", "Saturation", ("level",))
        fam.labels(level=0).set(0.5)
        fam.labels(level=1).set(0.25)
        assert len(fam.children()) == 2


class TestRegistry:
    def test_get_or_create_returns_same_metric(self, registry):
        a = registry.counter("hits_total", "Hits")
        b = registry.counter("hits_total", "Hits")
        assert a is b

    def test_kind_conflict_raises(self, registry):
        registry.counter("thing", "Thing")
        with pytest.raises(ObservabilityError):
            registry.gauge("thing", "Thing")

    def test_label_conflict_raises(self, registry):
        registry.counter_family("thing_total", "Thing", ("a",))
        with pytest.raises(ObservabilityError):
            registry.counter_family("thing_total", "Thing", ("b",))

    def test_bucket_conflict_raises(self, registry):
        registry.histogram("lat", "Latency", buckets=(1.0, 2.0))
        with pytest.raises(ObservabilityError):
            registry.histogram("lat", "Latency", buckets=(1.0, 3.0))

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ObservabilityError):
            registry.counter("9starts_with_digit", "Bad")
        with pytest.raises(ObservabilityError):
            registry.counter("has-dash", "Bad")
        with pytest.raises(ObservabilityError):
            registry.counter_family("ok_total", "Bad label", ("__reserved",))
        with pytest.raises(ObservabilityError):
            registry.counter_family("ok_total", "Dup labels", ("a", "a"))

    def test_value_unknown_name_is_zero(self, registry):
        assert registry.value("never_registered_total") == 0

    def test_value_on_histogram_raises(self, registry):
        registry.histogram("lat", "Latency", buckets=(1.0,))
        with pytest.raises(ObservabilityError):
            registry.value("lat")

    def test_snapshot_shape(self, registry):
        registry.counter("c_total", "C").inc(3)
        registry.gauge("g", "G").set(2)
        h = registry.histogram("h", "H", buckets=(1.0,))
        h.observe(0.5)
        registry.counter_family("f_total", "F", ("k",)).labels(k="x").inc()
        snap = registry.snapshot()
        assert snap["counters"]["c_total"] == 3
        assert snap["counters"]['f_total{k="x"}'] == 1
        assert snap["gauges"]["g"] == 2
        hist = snap["histograms"]["h"]
        assert hist["count"] == 1
        assert hist["sum"] == 0.5
        assert hist["buckets"]["+Inf"] == 1

    def test_reset_zeroes_but_keeps_registrations(self, registry):
        c = registry.counter("c_total", "C")
        c.inc(5)
        registry.reset()
        assert c.value == 0
        assert registry.counter("c_total", "C") is c

    def test_clear_forgets_registrations(self, registry):
        registry.counter("c_total", "C")
        registry.clear()
        # re-registering with a different kind is now fine
        registry.gauge("c_total", "C as gauge")


class TestEnableSwitches:
    def test_set_enabled_returns_previous(self):
        previous = obs.set_enabled(True)
        try:
            assert obs.ENABLED is True
            assert obs.set_enabled(False) is True
            assert obs.ENABLED is False
        finally:
            obs.set_enabled(previous)

    def test_enabled_context_restores(self):
        before = obs.ENABLED
        with obs.enabled():
            assert obs.ENABLED is True
        assert obs.ENABLED is before
        with obs.enabled(False):
            assert obs.ENABLED is False
        assert obs.ENABLED is before

    def test_refresh_reads_environment(self, monkeypatch):
        before = obs.ENABLED
        try:
            monkeypatch.setenv(obs.ENV_VAR, "1")
            obs.refresh()
            assert obs.ENABLED is True
            monkeypatch.setenv(obs.ENV_VAR, "0")
            obs.refresh()
            assert obs.ENABLED is False
        finally:
            obs.set_enabled(before)


class TestDefaultRegistry:
    def test_module_shortcuts_use_default_registry(self):
        previous = obs.set_default_registry(MetricsRegistry())
        try:
            obs.get_default_registry().counter("smoke_total", "Smoke").inc()
            assert obs.snapshot()["counters"]["smoke_total"] == 1
            assert "smoke_total 1" in obs.render_prometheus()
        finally:
            obs.set_default_registry(previous)
