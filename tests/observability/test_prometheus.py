"""Grammar validation of ``render_prometheus()`` output.

The registry promises text exposition format 0.0.4.  Rather than eyeball
examples, every rendered line is matched against a regex grammar built
from the format spec: comment lines (``# HELP`` / ``# TYPE``) and sample
lines (``name{labels} value``), with histogram series obeying the
``_bucket``/``_sum``/``_count`` naming and cumulative ``le`` buckets.
"""

import re

from repro.observability.metrics import MetricsRegistry

METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
LABEL_NAME = r"[a-zA-Z_][a-zA-Z0-9_]*"
# label values: escaped backslash, escaped quote, escaped newline, or any
# character except the raw versions of those three
LABEL_VALUE = r'(?:\\\\|\\"|\\n|[^"\\\n])*'
LABEL_PAIR = rf'{LABEL_NAME}="{LABEL_VALUE}"'
LABELS = rf"\{{{LABEL_PAIR}(?:,{LABEL_PAIR})*\}}"
VALUE = r"(?:[+-]?Inf|NaN|-?[0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?)"

HELP_LINE = re.compile(rf"^# HELP ({METRIC_NAME}) (.*)$")
TYPE_LINE = re.compile(
    rf"^# TYPE ({METRIC_NAME}) (counter|gauge|histogram|summary|untyped)$"
)
SAMPLE_LINE = re.compile(rf"^({METRIC_NAME})(?:{LABELS})? ({VALUE})$")
LE_LABEL = re.compile(r'le="([^"]*)"')


def _rendered_registry():
    reg = MetricsRegistry()
    reg.counter("plain_total", "A plain counter").inc(7)
    reg.gauge("depth", "Current depth").set(2.5)
    fam = reg.counter_family("errs_total", "Errors by kind", ("kind",))
    fam.labels(kind="io").inc(3)
    fam.labels(kind='quo"te\\back\nnewline').inc()
    hist = reg.histogram("lat_seconds", "Latency", buckets=(0.01, 0.1, 1.0))
    for value in (0.005, 0.005, 0.05, 2.0):
        hist.observe(value)
    hfam = reg.histogram_family(
        "task_seconds", "Per-task latency", ("task",), buckets=(0.5,)
    )
    hfam.histogram_child(task="entropy").observe(0.1)
    return reg, reg.render_prometheus()


def test_every_line_matches_the_grammar():
    _, text = _rendered_registry()
    assert text.endswith("\n")
    for line in text.splitlines():
        assert (
            HELP_LINE.match(line)
            or TYPE_LINE.match(line)
            or SAMPLE_LINE.match(line)
        ), f"line violates exposition grammar: {line!r}"


def test_type_precedes_samples_and_help_is_present():
    _, text = _rendered_registry()
    lines = text.splitlines()
    seen_type = set()
    for line in lines:
        type_match = TYPE_LINE.match(line)
        if type_match:
            seen_type.add(type_match.group(1))
            continue
        sample = SAMPLE_LINE.match(line)
        if sample:
            base = re.sub(r"_(bucket|sum|count)$", "", sample.group(1))
            assert (
                sample.group(1) in seen_type or base in seen_type
            ), f"sample before its TYPE: {line!r}"
    helped = {m.group(1) for m in map(HELP_LINE.match, lines) if m}
    assert {
        "plain_total",
        "depth",
        "errs_total",
        "lat_seconds",
        "task_seconds",
    } <= helped


def test_histogram_series_shape():
    _, text = _rendered_registry()
    lines = text.splitlines()
    buckets = [
        line for line in lines if line.startswith("lat_seconds_bucket")
    ]
    # every bucket line carries an le label; the last is +Inf
    les = [LE_LABEL.search(line).group(1) for line in buckets]
    assert les == ["0.01", "0.1", "1.0", "+Inf"]
    counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
    assert counts == sorted(counts), "le buckets must be cumulative"
    assert counts == [2, 3, 3, 4]
    assert "lat_seconds_sum 2.06" in text
    assert "lat_seconds_count 4" in text
    # +Inf bucket equals _count
    assert counts[-1] == 4


def test_labeled_histogram_merges_le_with_labels():
    _, text = _rendered_registry()
    assert 'task_seconds_bucket{task="entropy",le="0.5"} 1' in text
    assert 'task_seconds_bucket{task="entropy",le="+Inf"} 1' in text
    assert 'task_seconds_count{task="entropy"} 1' in text


def test_label_values_are_escaped():
    _, text = _rendered_registry()
    escaped = [
        line
        for line in text.splitlines()
        if line.startswith("errs_total{") and "quo" in line
    ]
    assert len(escaped) == 1
    line = escaped[0]
    assert '\\"' in line  # quote escaped
    assert "\\\\" in line  # backslash escaped
    assert "\\n" in line and "\n" not in line.strip("\n")  # newline escaped
    assert SAMPLE_LINE.match(line), line


def test_empty_registry_renders_empty_string():
    assert MetricsRegistry().render_prometheus() == ""
