"""Failure-injection tests: how the library degrades, never corrupts.

Sketches are probabilistic; under adversarial load they must degrade
*gracefully* — weaker estimates, partial decodes, explicit "incomplete"
flags — and never return structurally wrong answers (phantom keys,
negative frequencies on positive streams, crashes).
"""

import pytest

from repro.core import DaVinciConfig, DaVinciSketch
from repro.sketches import FermatSketch, FlowRadar, LossRadar


def starved_config(seed: int = 5) -> DaVinciConfig:
    """A pathologically small sketch."""
    return DaVinciConfig(
        fp_buckets=2,
        fp_entries=2,
        ef_level_widths=(16, 8),
        ef_level_bits=(4, 8),
        ifp_rows=3,
        ifp_width=4,
        filter_threshold=10,
        seed=seed,
    )


class TestDaVinciUnderOverload:
    def test_massive_overload_keeps_invariants(self):
        sketch = DaVinciSketch(starved_config())
        for key in range(1, 2001):
            sketch.insert(key, key % 7 + 1)
        # queries stay non-negative and the structure stays functional
        for key in range(1, 2001, 97):
            assert sketch.query(key) >= 0
        assert sketch.cardinality() >= 0
        assert sketch.entropy() >= 0
        histogram = sketch.distribution()
        assert all(count >= 0 for count in histogram.values())

    def test_incomplete_decode_is_reported_not_hidden(self):
        sketch = DaVinciSketch(starved_config())
        # push hundreds of mid-size flows through a 4-bucket-wide IFP
        for key in range(1, 400):
            sketch.insert(key, 40)
        result = sketch.decode_result()
        assert not result.complete
        assert result.residual_buckets > 0

    def test_heavy_hitters_never_report_phantom_keys(self):
        sketch = DaVinciSketch(starved_config())
        inserted = set(range(1, 500))
        for key in inserted:
            sketch.insert(key, 20)
        for key in sketch.heavy_hitters(10):
            assert key in inserted

    def test_adversarial_same_bucket_stream(self):
        """All mass on keys that collide in the 2-bucket FP."""
        sketch = DaVinciSketch(starved_config())
        for key in range(1, 40):
            sketch.insert(key, 100)
        total_estimate = sum(sketch.query(key) for key in range(1, 40))
        # mass cannot be inflated beyond stream + saturation artifacts
        assert total_estimate <= 3 * 39 * 100

    def test_difference_of_overloaded_sketches(self):
        a = DaVinciSketch(starved_config())
        b = DaVinciSketch(starved_config())
        for key in range(1, 300):
            a.insert(key, 5)
            b.insert(key, 5)
        delta = a.difference(b)
        # identical inputs: every per-key delta must be exactly zero (all
        # parts subtract to zero regardless of internal collisions)
        for key in range(1, 300, 13):
            assert delta.query(key) == 0


class TestInvertibleUnderOverload:
    def test_fermat_decode_never_invents_keys(self):
        sketch = FermatSketch(rows=3, width=4, seed=9)
        inserted = set(range(100, 400))
        for key in inserted:
            sketch.insert(key)
        assert set(sketch.decode()) <= inserted

    def test_lossradar_decode_never_invents_keys(self):
        sketch = LossRadar(cells=4, seed=9)
        inserted = set(range(100, 400))
        for key in inserted:
            sketch.insert(key)
        assert set(sketch.decode()) <= inserted

    def test_flowradar_decode_never_invents_keys(self):
        sketch = FlowRadar(cells=8, filter_bits=64, seed=9)
        inserted = set(range(100, 400))
        for key in inserted:
            sketch.insert(key)
        assert set(sketch.decode()) <= inserted

    def test_fermat_decode_budget_terminates(self):
        """A hopeless structure must return, not spin."""
        sketch = FermatSketch(rows=3, width=64, seed=10)
        for key in range(1, 5000):
            sketch.insert(key)
        decoded = sketch.decode()  # must terminate quickly
        assert isinstance(decoded, dict)


class TestDegenerateInputs:
    def test_empty_sketch_tasks(self):
        sketch = DaVinciSketch(starved_config())
        assert sketch.query(123) == 0
        assert sketch.cardinality() == 0
        assert sketch.entropy() == 0
        assert sketch.distribution() == {}
        assert sketch.heavy_hitters(1) == {}
        assert sketch.top_k(3) == []

    def test_single_element_universe(self):
        sketch = DaVinciSketch(starved_config())
        sketch.insert_all([42] * 10_000)
        assert sketch.query(42) == 10_000
        assert sketch.cardinality() <= 2
        assert sketch.entropy() == pytest.approx(0.0, abs=0.01)

    def test_weighted_inserts_equal_repeated_inserts(self):
        a = DaVinciSketch(starved_config())
        b = DaVinciSketch(starved_config())
        a.insert(7, 500)
        for _ in range(500):
            b.insert(7)
        assert a.query(7) == b.query(7) == 500
