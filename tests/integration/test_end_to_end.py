"""End-to-end integration: one DaVinci sketch, all nine tasks, one trace.

This is the library's contract test — the multi-task promise of the paper
exercised through the public API only, on a realistically skewed (scaled)
CAIDA-like trace, with every estimate checked against exact ground truth
at loose-but-meaningful tolerances.
"""

import math

import pytest

from repro import DaVinciConfig, DaVinciSketch
from repro.metrics import f1_score, weighted_mean_relative_error
from repro.workloads import caida_like, halves
from repro.workloads import groundtruth as gt

SCALE = 0.01
MEMORY_KB = 10.0


@pytest.fixture(scope="module")
def trace():
    return caida_like(scale=SCALE, seed=1)


@pytest.fixture(scope="module")
def truth(trace):
    return gt.frequencies(trace)


@pytest.fixture(scope="module")
def config():
    return DaVinciConfig.from_memory_kb(MEMORY_KB, seed=11)


@pytest.fixture(scope="module")
def loaded(config, trace):
    sketch = DaVinciSketch(config)
    sketch.insert_all(trace)
    return sketch


class TestSingleSetTasks:
    def test_frequency_are(self, loaded, truth):
        are = sum(
            abs(loaded.query(key) - count) / count
            for key, count in truth.items()
        ) / len(truth)
        assert are < 0.25

    def test_heavy_hitters(self, loaded, trace, truth):
        threshold = max(1, int(0.001 * len(trace)))
        correct = gt.heavy_hitters(truth, threshold)
        reported = set(loaded.heavy_hitters(threshold))
        assert f1_score(reported, correct) > 0.95

    def test_cardinality(self, loaded, trace):
        true_cardinality = gt.cardinality(trace)
        relative = abs(loaded.cardinality() - true_cardinality) / true_cardinality
        assert relative < 0.05

    def test_distribution(self, loaded, truth):
        wmre = weighted_mean_relative_error(
            gt.size_distribution(truth), loaded.distribution()
        )
        assert wmre < 0.25

    def test_entropy(self, loaded, truth):
        true_entropy = gt.entropy(truth)
        assert abs(loaded.entropy() - true_entropy) / true_entropy < 0.05


class TestMultiSetTasks:
    @pytest.fixture(scope="class")
    def windows(self, config, trace):
        first, second = halves(trace)
        window_a = DaVinciSketch(config)
        window_b = DaVinciSketch(config)
        window_a.insert_all(first)
        window_b.insert_all(second)
        return first, second, window_a, window_b

    def test_heavy_changers(self, windows, trace):
        first, second, window_a, window_b = windows
        threshold = max(1, int(0.0005 * len(trace)))
        correct = gt.heavy_changers(
            gt.frequencies(first), gt.frequencies(second), threshold
        )
        from repro.core.tasks.heavy import heavy_changers

        reported = set(heavy_changers(window_a, window_b, threshold))
        assert f1_score(reported, correct) > 0.8

    def test_union(self, windows):
        first, second, window_a, window_b = windows
        union_truth = gt.multiset_union(
            gt.frequencies(first), gt.frequencies(second)
        )
        merged = window_a.union(window_b)
        are = sum(
            abs(merged.query(key) - count) / count
            for key, count in union_truth.items()
        ) / len(union_truth)
        assert are < 0.4

    def test_difference(self, windows):
        first, second, window_a, window_b = windows
        diff_truth = gt.multiset_difference(
            gt.frequencies(first), gt.frequencies(second)
        )
        delta = window_a.difference(window_b)
        are = sum(
            abs(delta.query(key) - count) / abs(count)
            for key, count in diff_truth.items()
        ) / len(diff_truth)
        assert are < 1.5  # deltas are small; relative errors are harsh

    def test_inner_join(self, windows):
        first, second, window_a, window_b = windows
        true_join = gt.inner_product(
            gt.frequencies(first), gt.frequencies(second)
        )
        estimate = window_a.inner_join(window_b)
        assert abs(estimate - true_join) / true_join < 0.02


class TestStringKeysEndToEnd:
    def test_ip_like_keys(self, config):
        sketch = DaVinciSketch(config)
        flows = {f"10.0.{i // 256}.{i % 256}": i % 7 + 1 for i in range(500)}
        for key, count in flows.items():
            sketch.insert(key, count)
        errors = [
            abs(sketch.query(key) - count)
            for key, count in list(flows.items())[:100]
        ]
        assert sum(errors) / len(errors) < 3.0
