"""Unit tests for the accuracy metrics (paper Metrics paragraph)."""

import pytest

from repro.metrics.accuracy import (
    average_absolute_error,
    average_relative_error,
    f1_score,
    precision_recall,
    relative_error,
    weighted_mean_relative_error,
)


class TestARE:
    def test_perfect_estimator(self):
        truth = {1: 10, 2: 20}
        assert average_relative_error(truth, lambda k: truth[k]) == 0.0

    def test_known_value(self):
        truth = {1: 10, 2: 20}
        estimates = {1: 15, 2: 10}  # rel errors 0.5 and 0.5
        assert average_relative_error(truth, estimates.get) == pytest.approx(0.5)

    def test_zero_truth_excluded(self):
        truth = {1: 0, 2: 10}
        assert average_relative_error(truth, lambda k: 10) == 0.0

    def test_empty(self):
        assert average_relative_error({}, lambda k: 0) == 0.0


class TestAAE:
    def test_known_value(self):
        truth = {1: 10, 2: 20}
        estimates = {1: 12, 2: 16}
        assert average_absolute_error(truth, estimates.get) == pytest.approx(3.0)

    def test_empty(self):
        assert average_absolute_error({}, lambda k: 0) == 0.0


class TestF1:
    def test_perfect(self):
        assert f1_score({1, 2}, {1, 2}) == 1.0

    def test_disjoint(self):
        assert f1_score({1}, {2}) == 0.0

    def test_both_empty(self):
        assert f1_score(set(), set()) == 1.0

    def test_nothing_reported(self):
        assert f1_score(set(), {1, 2}) == 0.0

    def test_half_precision_full_recall(self):
        # reported {1,2,3,4}, correct {1,2}: PR=0.5, RR=1 → F1 = 2/3
        assert f1_score({1, 2, 3, 4}, {1, 2}) == pytest.approx(2 / 3)

    def test_precision_recall_components(self):
        precision, recall = precision_recall({1, 2, 3}, {2, 3, 4, 5})
        assert precision == pytest.approx(2 / 3)
        assert recall == pytest.approx(0.5)


class TestRE:
    def test_known(self):
        assert relative_error(100, 110) == pytest.approx(0.1)

    def test_zero_truth(self):
        assert relative_error(0, 0) == 0.0
        assert relative_error(0, 5) == float("inf")

    def test_symmetric_in_error_sign(self):
        assert relative_error(100, 90) == relative_error(100, 110)


class TestWMRE:
    def test_identical(self):
        hist = {1: 10, 2: 5}
        assert weighted_mean_relative_error(hist, hist) == 0.0

    def test_known_value(self):
        truth = {1: 10}
        estimate = {1: 5}
        # |10−5| / ((10+5)/2) = 5/7.5
        assert weighted_mean_relative_error(truth, estimate) == pytest.approx(
            5 / 7.5
        )

    def test_disjoint_supports(self):
        assert weighted_mean_relative_error({1: 4}, {2: 4}) == pytest.approx(2.0)

    def test_empty_both(self):
        assert weighted_mean_relative_error({}, {}) == 0.0

    def test_sizes_missing_in_one_hist(self):
        truth = {1: 10, 2: 10}
        estimate = {1: 10}
        assert weighted_mean_relative_error(truth, estimate) == pytest.approx(
            10 / 15
        )
