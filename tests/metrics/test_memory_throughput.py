"""Unit tests for memory/AMA accounting and throughput measurement."""

import pytest

from repro.metrics.memory import MemoryComparison, combined_ama, kb, memory_comparison
from repro.metrics.throughput import (
    ThroughputResult,
    measure_insert_throughput,
    speedup,
)
from repro.sketches import CountMinSketch, CUSketch


class TestMemoryComparison:
    def test_percentage_and_savings(self):
        comparison = MemoryComparison(davinci_bytes=100.0, baseline_bytes=400.0)
        assert comparison.percentage == 0.25
        assert comparison.savings_bytes == 300.0

    def test_zero_baseline(self):
        assert MemoryComparison(10, 0).percentage == 0.0

    def test_memory_comparison_builder(self):
        davinci = CountMinSketch(rows=1, width=100)
        parts = [CountMinSketch(rows=1, width=100), CUSketch(rows=1, width=300)]
        comparison = memory_comparison(davinci, parts)
        assert comparison.davinci_bytes == 400.0
        assert comparison.baseline_bytes == 1600.0


class TestCombinedAMA:
    def test_sums_constituents(self):
        a = CountMinSketch(rows=3, width=64)
        b = CountMinSketch(rows=2, width=64)
        for key in range(10):
            a.insert(key)
            b.insert(key)
        assert combined_ama([a, b]) == 5.0

    def test_empty(self):
        assert combined_ama([]) == 0.0


class TestKb:
    def test_conversion(self):
        assert kb(2048) == 2.0


class TestThroughput:
    def test_measures_positive_rate(self):
        sketch = CountMinSketch(rows=2, width=256)
        result = measure_insert_throughput(sketch.insert, list(range(2000)))
        assert result.operations == 2000
        assert result.seconds > 0
        assert result.ops_per_second > 0
        assert result.mops == result.ops_per_second / 1e6

    def test_repeats(self):
        sketch = CountMinSketch(rows=2, width=256)
        result = measure_insert_throughput(
            sketch.insert, list(range(100)), repeats=3
        )
        assert result.operations == 300

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            measure_insert_throughput(lambda k: None, [1], repeats=0)

    def test_speedup(self):
        fast = ThroughputResult(operations=100, seconds=1.0)
        slow = ThroughputResult(operations=100, seconds=4.0)
        assert speedup(fast, slow) == pytest.approx(4.0)

    def test_speedup_zero_denominator(self):
        fast = ThroughputResult(operations=100, seconds=1.0)
        stalled = ThroughputResult(operations=0, seconds=0.0)
        assert speedup(fast, stalled) == float("inf")

    def test_zero_seconds_rate(self):
        assert ThroughputResult(operations=5, seconds=0.0).ops_per_second == 0.0
