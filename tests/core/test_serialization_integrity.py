"""Integrity layer: digests, corruption taxonomy, config hardening.

Acceptance property: any single bit-flip or truncation of a version-2
wire blob raises :class:`StateCorruptionError` — it must never load as a
plausible-but-wrong sketch.  Version-1 blobs (no digest) still load,
with an explicit :class:`UnverifiedStateWarning`.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.common.errors import (
    ConfigurationError,
    StateCorruptionError,
    UnverifiedStateWarning,
)
from repro.core import serialization
from repro.core.davinci import DaVinciSketch
from repro.core.serialization import (
    _CONFIG_FIELDS,
    from_state,
    from_wire,
    sign_state,
    state_digest,
    to_state,
    to_wire,
    verify_state,
)
from repro.testing import flip_bit, truncate


@pytest.fixture
def populated(small_config) -> DaVinciSketch:
    sketch = DaVinciSketch(small_config)
    for key in range(1, 150):
        sketch.insert(key, 1 + key % 30)
    return sketch


class TestBitFlipSweep:
    @pytest.mark.parametrize("algo", ["sha256", "crc32"])
    def test_every_sampled_bitflip_is_caught(self, populated, algo):
        blob = to_wire(populated, digest_algo=algo)
        total_bits = 8 * len(blob)
        step = max(1, total_bits // 97)  # ~97 positions spread over the blob
        positions = list(range(0, total_bits, step))
        positions += [0, 7, total_bits - 1, total_bits // 2]
        for bit in sorted(set(positions)):
            with pytest.raises(StateCorruptionError):
                from_wire(flip_bit(blob, bit))

    def test_intact_blob_loads(self, populated):
        twin = from_wire(to_wire(populated))
        assert twin.to_state() == populated.to_state()

    def test_flip_then_restore_loads(self, populated):
        blob = to_wire(populated)
        assert from_wire(flip_bit(flip_bit(blob, 1234), 1234)).total_count == (
            populated.total_count
        )


class TestTruncationSweep:
    def test_every_sampled_truncation_is_caught(self, populated):
        blob = to_wire(populated)
        lengths = {0, 1, 2, len(blob) // 4, len(blob) // 2, len(blob) - 1}
        for length in sorted(lengths):
            with pytest.raises(StateCorruptionError):
                from_wire(truncate(blob, length))

    def test_non_json_bytes_are_corruption(self):
        with pytest.raises(StateCorruptionError):
            from_wire(b"\xff\xfe not json")
        with pytest.raises(StateCorruptionError):
            from_wire(b"[1, 2, 3]")  # valid JSON, wrong shape


class TestDigestTaxonomy:
    def test_v2_without_digest_is_corruption(self, populated):
        state = to_state(populated)
        del state["digest"]
        with pytest.raises(StateCorruptionError, match="digest"):
            from_state(state)

    def test_tampered_payload_is_corruption(self, populated):
        state = to_state(populated)
        state["total_count"] += 1
        with pytest.raises(StateCorruptionError, match="mismatch"):
            from_state(state)

    def test_malformed_digest_field_is_corruption(self, populated):
        state = to_state(populated)
        state["digest"] = "deadbeef"
        with pytest.raises(StateCorruptionError):
            from_state(state)

    def test_unknown_digest_algo_is_corruption(self, populated):
        state = to_state(populated)
        state["digest"] = {"algo": "md5", "value": "00"}
        with pytest.raises(StateCorruptionError, match="algorithm"):
            from_state(state)

    def test_state_digest_rejects_unknown_algo(self, populated):
        with pytest.raises(ConfigurationError):
            state_digest(to_state(populated), algo="md5")

    def test_crc32_roundtrip(self, populated):
        twin = from_wire(to_wire(populated, digest_algo="crc32"))
        assert twin.to_state() == populated.to_state()

    def test_digest_ignores_transport_formatting(self, populated):
        """Re-encoding with different JSON whitespace stays verifiable."""
        pretty = json.dumps(
            json.loads(to_wire(populated)), indent=2, sort_keys=False
        ).encode()
        assert from_wire(pretty).to_state() == populated.to_state()


class TestLegacyVersion1:
    def _v1_state(self, sketch):
        state = to_state(sketch)
        del state["digest"]
        state["version"] = 1
        return state

    def test_v1_loads_with_unverified_warning(self, populated):
        state = self._v1_state(populated)
        with pytest.warns(UnverifiedStateWarning, match="re-serialize"):
            twin = from_state(state)
        assert twin.total_count == populated.total_count
        for key in (1, 50, 149):
            assert twin.query(key) == populated.query(key)

    def test_v2_roundtrip_is_warning_free(self, populated):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            from_state(to_state(populated))

    def test_v1_reserialized_upgrades_to_v2(self, populated):
        with pytest.warns(UnverifiedStateWarning):
            twin = from_state(self._v1_state(populated))
        upgraded = to_state(twin)
        assert upgraded["version"] == serialization.STATE_VERSION
        assert "digest" in upgraded

    def test_unreadable_version_names_the_version(self, populated):
        state = self._v1_state(populated)
        state["version"] = 99
        with pytest.raises(ConfigurationError, match="99"):
            from_state(state)


class TestConfigHardening:
    """Satellite (a): malformed config payloads name the offending field."""

    @pytest.mark.parametrize(
        "field", [name for name, _types, _desc in _CONFIG_FIELDS]
    )
    def test_missing_field_is_named(self, populated, field):
        state = to_state(populated)
        del state["config"][field]
        with pytest.raises(ConfigurationError, match=field):
            from_state(sign_state(state))

    @pytest.mark.parametrize(
        "field", [name for name, _types, _desc in _CONFIG_FIELDS]
    )
    def test_mistyped_field_is_named(self, populated, field):
        state = to_state(populated)
        state["config"][field] = "not-a-number"
        with pytest.raises(ConfigurationError, match=field):
            from_state(sign_state(state))

    @pytest.mark.parametrize("field", ["ef_level_widths", "ef_level_bits"])
    def test_non_integer_level_entries_are_named(self, populated, field):
        state = to_state(populated)
        state["config"][field] = list(state["config"][field])
        state["config"][field][0] = "wide"
        with pytest.raises(ConfigurationError, match=field):
            from_state(sign_state(state))

    def test_boolean_masquerading_as_int_is_rejected(self, populated):
        state = to_state(populated)
        state["config"]["fp_buckets"] = True
        with pytest.raises(ConfigurationError, match="fp_buckets"):
            from_state(sign_state(state))

    def test_non_mapping_config_is_rejected(self, populated):
        state = to_state(populated)
        state["config"] = [1, 2, 3]
        with pytest.raises(ConfigurationError, match="mapping"):
            from_state(sign_state(state))


class TestDeepValidation:
    """Impossible-but-well-formed values are corruption, not config errors."""

    def _mutated(self, populated, mutate):
        state = to_state(populated)
        mutate(state)
        return sign_state(state)

    def test_fp_key_outside_domain(self, populated):
        def mutate(state):
            for bucket in state["frequent_part"]:
                if bucket["entries"]:
                    bucket["entries"][0][0] = 0
                    return

        with pytest.raises(StateCorruptionError, match="domain"):
            from_state(self._mutated(populated, mutate))

    def test_fp_count_above_stream_total(self, populated):
        def mutate(state):
            for bucket in state["frequent_part"]:
                if bucket["entries"]:
                    bucket["entries"][0][1] = state["total_count"] + 1
                    return

        with pytest.raises(StateCorruptionError, match="impossible"):
            from_state(self._mutated(populated, mutate))

    def test_negative_bucket_ecnt(self, populated):
        def mutate(state):
            state["frequent_part"][0]["ecnt"] = -1

        with pytest.raises(StateCorruptionError, match="negative"):
            from_state(self._mutated(populated, mutate))

    def test_ef_counter_above_bit_cap(self, populated, small_config):
        cap = (1 << small_config.ef_level_bits[0]) - 1

        def mutate(state):
            state["element_filter"][0][0] = cap + 1

        with pytest.raises(StateCorruptionError, match="range"):
            from_state(self._mutated(populated, mutate))

    def test_negative_ef_counter_outside_signed_mode(self, populated):
        def mutate(state):
            state["element_filter"][0][0] = -1

        with pytest.raises(StateCorruptionError, match="range"):
            from_state(self._mutated(populated, mutate))

    def test_ifp_residue_outside_field(self, populated, small_config):
        def mutate(state):
            state["infrequent_part"]["ids"][0][0] = small_config.prime

        with pytest.raises(StateCorruptionError, match="field"):
            from_state(self._mutated(populated, mutate))

    def test_ifp_count_above_stream_total(self, populated):
        def mutate(state):
            state["infrequent_part"]["counts"][0][0] = (
                state["total_count"] + 1
            )

        with pytest.raises(StateCorruptionError, match="exceeds"):
            from_state(self._mutated(populated, mutate))

    def test_verify_state_skips_digest(self, populated):
        """verify_state audits structure only; from_state owns the digest."""
        state = to_state(populated)
        state["digest"]["value"] = "0" * 64
        config = verify_state(state)  # does not raise
        assert config == populated.config
        with pytest.raises(StateCorruptionError):
            from_state(state)

    def test_corruption_is_still_a_configuration_error(self, populated):
        """Catch-contract: StateCorruptionError extends ConfigurationError."""
        state = to_state(populated)
        state["total_count"] += 1
        with pytest.raises(ConfigurationError):
            from_state(state)
