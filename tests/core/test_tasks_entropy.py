"""Unit tests for entropy estimation."""

import math

import pytest

from repro.core.tasks.entropy import entropy, entropy_of_distribution


class TestEntropyOfDistribution:
    def test_empty(self):
        assert entropy_of_distribution({}, 0) == 0.0
        assert entropy_of_distribution({1: 5}, 0) == 0.0

    def test_single_flow_owning_stream(self):
        # One flow of size S: H = −1·(S/S)·ln(1) = 0.
        assert entropy_of_distribution({100: 1}, 100) == pytest.approx(0.0)

    def test_uniform_flows(self):
        # n flows of size 1 over a stream of n: H = ln(n).
        n = 64
        assert entropy_of_distribution({1: n}, n) == pytest.approx(math.log(n))

    def test_two_point_distribution(self):
        # sizes 3 and 1 over S=4: H = −(3/4)ln(3/4) − (1/4)ln(1/4)
        expected = -(3 / 4) * math.log(3 / 4) - (1 / 4) * math.log(1 / 4)
        assert entropy_of_distribution({3: 1, 1: 1}, 4) == pytest.approx(expected)

    def test_ignores_nonpositive_entries(self):
        clean = entropy_of_distribution({1: 10}, 10)
        noisy = entropy_of_distribution({1: 10, 0: 5, -2: 3, 4: 0}, 10)
        assert noisy == clean


class TestSketchEntropy:
    def test_uniform_stream(self, sketch):
        stream = list(range(100))
        sketch.insert_all(stream)
        assert entropy(sketch) == pytest.approx(math.log(100), rel=0.1)

    def test_single_key_stream(self, sketch):
        sketch.insert_all([7] * 500)
        assert entropy(sketch) == pytest.approx(0.0, abs=0.05)

    def test_skewed_stream(self, loaded_sketch, zipf_stream, zipf_truth):
        total = len(zipf_stream)
        true_entropy = -sum(
            (v / total) * math.log(v / total) for v in zipf_truth.values()
        )
        assert entropy(loaded_sketch) == pytest.approx(true_entropy, rel=0.25)

    def test_empty_sketch(self, sketch):
        assert entropy(sketch) == 0.0
