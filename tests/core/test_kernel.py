"""Kernel selection, fallback and cross-kernel reconstruction.

The array kernel is a pure execution strategy: it must never leak into
serialized state, it must be selectable per-constructor and per-process
(``REPRO_KERNEL``), and a sketch serialized under one kernel must
reconstruct into either — the regression scenario here is the
object → array → object round trip through ``from_state``/``from_wire``.
"""

import warnings

import pytest

from repro.common.errors import ConfigurationError, KernelFallbackWarning
from repro.core import DaVinciConfig, DaVinciSketch
from repro.core import kernel as kernel_mod
from repro.core import serialization
from repro.core.kernel import (
    HAVE_NUMPY,
    KERNEL_ARRAY,
    KERNEL_ENV_VAR,
    KERNEL_OBJECT,
    resolve_kernel,
)


def make_config(seed: int = 11) -> DaVinciConfig:
    return DaVinciConfig(
        fp_buckets=8,
        fp_entries=4,
        ef_level_widths=(128, 32),
        ef_level_bits=(4, 8),
        ifp_rows=3,
        ifp_width=32,
        filter_threshold=10,
        seed=seed,
    )


def stream(n: int = 600):
    return [(key % 37 + 1, key % 5 + 1) for key in range(n)]


class TestResolveKernel:
    def test_default_is_object(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        assert resolve_kernel(None) == KERNEL_OBJECT

    def test_explicit_choices(self):
        assert resolve_kernel(KERNEL_OBJECT) == KERNEL_OBJECT
        expected = KERNEL_ARRAY if HAVE_NUMPY else KERNEL_OBJECT
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", KernelFallbackWarning)
            assert resolve_kernel(KERNEL_ARRAY) == expected

    def test_env_var_applies_when_unspecified(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, KERNEL_ARRAY)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", KernelFallbackWarning)
            resolved = resolve_kernel(None)
            sketch = DaVinciSketch(make_config())
        assert resolved in (KERNEL_ARRAY, KERNEL_OBJECT)
        assert sketch.kernel == resolved

    def test_explicit_argument_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, KERNEL_ARRAY)
        assert resolve_kernel(KERNEL_OBJECT) == KERNEL_OBJECT

    def test_invalid_kernel_rejected(self, monkeypatch):
        with pytest.raises(ConfigurationError, match="unknown kernel"):
            resolve_kernel("simd")
        monkeypatch.setenv(KERNEL_ENV_VAR, "bogus")
        with pytest.raises(ConfigurationError, match=KERNEL_ENV_VAR):
            resolve_kernel(None)

    def test_empty_env_var_means_default(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "")
        assert resolve_kernel(None) == KERNEL_OBJECT

    def test_fallback_warns_without_numpy(self, monkeypatch):
        monkeypatch.setattr(kernel_mod, "HAVE_NUMPY", False)
        with pytest.warns(KernelFallbackWarning):
            assert resolve_kernel(KERNEL_ARRAY) == KERNEL_OBJECT

    def test_sketch_degrades_without_numpy(self, monkeypatch):
        monkeypatch.setattr(kernel_mod, "HAVE_NUMPY", False)
        with pytest.warns(KernelFallbackWarning):
            sketch = DaVinciSketch(make_config(), kernel=KERNEL_ARRAY)
        assert sketch.kernel == KERNEL_OBJECT
        sketch.insert_batch(stream(), chunk_size=64)
        reference = DaVinciSketch(make_config(), kernel=KERNEL_OBJECT)
        reference.insert_batch(stream(), chunk_size=64)
        assert serialization.to_state(sketch) == serialization.to_state(
            reference
        )


@pytest.mark.skipif(not HAVE_NUMPY, reason="array kernel needs numpy")
class TestCrossKernelReconstruction:
    """States carry no kernel marker; any kernel can load any state."""

    def test_state_has_no_kernel_marker(self):
        sketch = DaVinciSketch(make_config(), kernel=KERNEL_ARRAY)
        sketch.insert_batch(stream(), chunk_size=64)
        assert "kernel" not in serialization.to_state(sketch)

    def test_object_to_array_to_object_round_trip(self):
        # regression: from_state/from_wire used to inherit only the
        # ambient default, so a state could not be re-executed under a
        # different kernel than the one that serialized it
        first = DaVinciSketch(make_config(), kernel=KERNEL_OBJECT)
        first.insert_batch(stream(), chunk_size=64)

        second = serialization.from_state(
            first.to_state(), kernel=KERNEL_ARRAY
        )
        assert second.kernel == KERNEL_ARRAY
        second.insert_batch(stream(1_200), chunk_size=64)

        third = serialization.from_wire(
            serialization.to_wire(second), kernel=KERNEL_OBJECT
        )
        assert third.kernel == KERNEL_OBJECT
        third.insert_batch(stream(300), chunk_size=64)

        reference = DaVinciSketch(make_config(), kernel=KERNEL_OBJECT)
        for extra in (600, 1_200, 300):
            reference.insert_batch(stream(extra), chunk_size=64)
        assert serialization.to_state(third) == serialization.to_state(
            reference
        )

    def test_davinci_from_state_accepts_kernel(self):
        sketch = DaVinciSketch(make_config(), kernel=KERNEL_OBJECT)
        sketch.insert_batch(stream(), chunk_size=64)
        rebuilt = DaVinciSketch.from_state(
            sketch.to_state(), kernel=KERNEL_ARRAY
        )
        assert rebuilt.kernel == KERNEL_ARRAY
        assert serialization.to_state(rebuilt) == serialization.to_state(
            sketch
        )

    def test_empty_like_preserves_kernel(self):
        sketch = DaVinciSketch(make_config(), kernel=KERNEL_ARRAY)
        assert sketch.empty_like().kernel == KERNEL_ARRAY

    def test_wire_bytes_identical_across_kernels(self):
        obj = DaVinciSketch(make_config(), kernel=KERNEL_OBJECT)
        arr = DaVinciSketch(make_config(), kernel=KERNEL_ARRAY)
        obj.insert_batch(stream(2_000), chunk_size=128)
        arr.insert_batch(stream(2_000), chunk_size=128)
        assert serialization.to_wire(obj) == serialization.to_wire(arr)
