"""Unit tests for heavy-hitter and heavy-changer detection."""

import pytest

from repro.core import DaVinciSketch
from repro.core.tasks.heavy import heavy_changers, heavy_hitters


class TestHeavyHitters:
    def test_simple_detection(self, sketch):
        sketch.insert_all([1] * 100 + [2] * 50 + list(range(100, 150)))
        reported = heavy_hitters(sketch, 40)
        assert reported.get(1, 0) >= 100
        assert reported.get(2, 0) >= 50
        assert all(estimate >= 40 for estimate in reported.values())

    def test_no_false_heavies_among_mice(self, sketch):
        sketch.insert_all([1] * 100 + list(range(100, 200)))
        reported = heavy_hitters(sketch, 50)
        assert set(reported) == {1}

    def test_threshold_must_be_positive(self, sketch):
        with pytest.raises(ValueError):
            heavy_hitters(sketch, 0)

    def test_f1_on_skewed_stream(self, loaded_sketch, zipf_truth):
        threshold = 80
        correct = {k for k, v in zipf_truth.items() if v >= threshold}
        reported = set(heavy_hitters(loaded_sketch, threshold))
        hits = len(reported & correct)
        precision = hits / len(reported) if reported else 0
        recall = hits / len(correct) if correct else 1
        f1 = 2 * precision * recall / (precision + recall)
        assert f1 > 0.9

    def test_facade(self, loaded_sketch):
        assert loaded_sketch.heavy_hitters(50) == heavy_hitters(loaded_sketch, 50)


class TestHeavyChangers:
    def test_detects_grown_and_crashed_flows(self, small_config):
        window_a = DaVinciSketch(small_config)
        window_b = DaVinciSketch(small_config)
        window_a.insert_all([1] * 100 + [2] * 5 + [3] * 50)
        window_b.insert_all([1] * 5 + [2] * 100 + [3] * 52)
        changes = heavy_changers(window_a, window_b, 50)
        assert changes.get(1, 0) > 0  # crashed: positive delta in A−B
        assert changes.get(2, 0) < 0  # grew
        assert 3 not in changes  # stable flow

    def test_flow_absent_in_one_window(self, small_config):
        window_a = DaVinciSketch(small_config)
        window_b = DaVinciSketch(small_config)
        window_a.insert_all([9] * 80)
        window_b.insert_all([10] * 80)
        changes = heavy_changers(window_a, window_b, 40)
        assert changes.get(9, 0) == pytest.approx(80, abs=10)
        assert changes.get(10, 0) == pytest.approx(-80, abs=10)

    def test_identical_windows_report_nothing(self, small_config):
        window_a = DaVinciSketch(small_config)
        window_b = DaVinciSketch(small_config)
        stream = [k for k in range(50) for _ in range(4)]
        window_a.insert_all(stream)
        window_b.insert_all(stream)
        assert heavy_changers(window_a, window_b, 5) == {}

    def test_threshold_validation(self, small_config):
        a, b = DaVinciSketch(small_config), DaVinciSketch(small_config)
        with pytest.raises(ValueError):
            heavy_changers(a, b, 0)
