"""Unit tests for DaVinciConfig and its memory budgeting."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.config import (
    FP_BUCKET_OVERHEAD_BYTES,
    FP_ENTRY_BYTES,
    IFP_BUCKET_BYTES,
    DaVinciConfig,
)


class TestDirectConstruction:
    def test_defaults_are_valid(self):
        config = DaVinciConfig(fp_buckets=8)
        assert config.fp_entries == 7
        assert config.ifp_rows == 3

    def test_memory_model_adds_up(self):
        config = DaVinciConfig(
            fp_buckets=10,
            fp_entries=4,
            ef_level_widths=(100, 50),
            ef_level_bits=(4, 8),
            ifp_rows=2,
            ifp_width=20,
        )
        expected_fp = 10 * (4 * FP_ENTRY_BYTES + FP_BUCKET_OVERHEAD_BYTES)
        expected_ef = 100 * 0.5 + 50 * 1.0
        expected_ifp = 2 * 20 * IFP_BUCKET_BYTES
        assert config.fp_bytes() == pytest.approx(expected_fp)
        assert config.ef_bytes() == pytest.approx(expected_ef)
        assert config.ifp_bytes() == pytest.approx(expected_ifp)
        assert config.total_bytes() == pytest.approx(
            expected_fp + expected_ef + expected_ifp
        )

    def test_mismatched_levels_rejected(self):
        with pytest.raises(ConfigurationError):
            DaVinciConfig(
                fp_buckets=8, ef_level_widths=(10, 20), ef_level_bits=(4,)
            )

    def test_bad_counter_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            DaVinciConfig(
                fp_buckets=8, ef_level_widths=(10,), ef_level_bits=(3,)
            )

    def test_threshold_must_fit_top_counter(self):
        with pytest.raises(ConfigurationError):
            DaVinciConfig(
                fp_buckets=8,
                ef_level_widths=(10, 10),
                ef_level_bits=(4, 8),
                filter_threshold=255,
            )

    def test_non_prime_rejected(self):
        with pytest.raises(ConfigurationError):
            DaVinciConfig(fp_buckets=8, prime=100)

    def test_non_positive_lambda_rejected(self):
        with pytest.raises(ConfigurationError):
            DaVinciConfig(fp_buckets=8, lambda_evict=0)

    def test_frozen(self):
        config = DaVinciConfig(fp_buckets=8)
        with pytest.raises(Exception):
            config.fp_buckets = 9


class TestFromMemory:
    def test_total_close_to_budget(self):
        budget = 64 * 1024
        config = DaVinciConfig.from_memory(budget)
        assert 0.9 * budget <= config.total_bytes() <= 1.05 * budget

    def test_kb_wrapper(self):
        assert (
            DaVinciConfig.from_memory_kb(10).total_bytes()
            == DaVinciConfig.from_memory(10 * 1024).total_bytes()
        )

    def test_fractions_respected(self):
        budget = 100 * 1024
        config = DaVinciConfig.from_memory(
            budget, fp_fraction=0.5, ef_fraction=0.3
        )
        assert config.fp_bytes() == pytest.approx(budget * 0.5, rel=0.05)
        assert config.ef_bytes() == pytest.approx(budget * 0.3, rel=0.05)

    def test_zero_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            DaVinciConfig.from_memory(0)

    def test_overfull_fractions_rejected(self):
        with pytest.raises(ConfigurationError):
            DaVinciConfig.from_memory(1024, fp_fraction=0.7, ef_fraction=0.5)

    def test_level_ratio_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            DaVinciConfig.from_memory(1024, ef_level_ratio=(0.5, 0.2))

    def test_level_ratio_length_must_match(self):
        with pytest.raises(ConfigurationError):
            DaVinciConfig.from_memory(
                1024, ef_level_bits=(4, 8), ef_level_ratio=(1.0,)
            )

    def test_tiny_budget_still_builds(self):
        config = DaVinciConfig.from_memory(512)
        assert config.fp_buckets >= 1
        assert config.ifp_width >= 4

    def test_seed_propagates(self):
        assert DaVinciConfig.from_memory(1024, seed=9).seed == 9

    def test_equality_includes_seed(self):
        a = DaVinciConfig.from_memory(1024, seed=1)
        b = DaVinciConfig.from_memory(1024, seed=2)
        assert a != b
        assert a == DaVinciConfig.from_memory(1024, seed=1)
