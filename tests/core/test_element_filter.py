"""Unit tests for the element filter (TowerSketch + promotion threshold)."""

import pytest

from repro.common.errors import ConfigurationError, IncompatibleSketchError
from repro.core.element_filter import ElementFilter


@pytest.fixture
def filter_() -> ElementFilter:
    return ElementFilter(
        level_widths=(128, 32), level_bits=(4, 8), threshold=10, seed=3
    )


class TestConstruction:
    def test_caps_derived_from_bits(self, filter_):
        assert filter_.level_caps == (15, 255)

    def test_threshold_must_fit(self):
        with pytest.raises(ConfigurationError):
            ElementFilter((8,), (4,), threshold=15)

    def test_mismatched_levels_rejected(self):
        with pytest.raises(ConfigurationError):
            ElementFilter((8, 8), (4,), threshold=3)


class TestAddAndQuery:
    def test_single_element_exact_below_cap(self, filter_):
        filter_.add(5, 7)
        assert filter_.query(5) == 7

    def test_query_of_absent_key_without_collision(self, filter_):
        filter_.add(5, 7)
        # Most other keys map elsewhere; find one reading zero.
        zeros = [k for k in range(100, 200) if filter_.query(k) == 0]
        assert zeros

    def test_min_combining_ignores_saturated_levels(self, filter_):
        filter_.add(5, 100)  # level 0 saturates at 15; level 1 holds 100
        assert filter_.query(5) == 100

    def test_all_levels_saturated_returns_max_cap(self):
        ef = ElementFilter((4,), (4,), threshold=10, seed=1)
        ef.add(1, 500)
        assert ef.query(1) == 15

    def test_saturated_counters_stay_saturated(self, filter_):
        filter_.add(5, 300)
        filter_.add(5, 10)
        assert filter_.query(5) == 255  # level-1 saturated too


class TestOffer:
    def test_below_threshold_fully_absorbed(self, filter_):
        assert filter_.offer(1, 4) == 0
        assert filter_.query(1) == 4

    def test_crossing_threshold_overflows_excess(self, filter_):
        assert filter_.offer(1, 25) == 15  # keeps T=10, overflows 15
        assert filter_.query(1) == 10

    def test_already_promoted_overflows_everything(self, filter_):
        filter_.offer(1, 25)
        assert filter_.offer(1, 7) == 7
        assert filter_.query(1) == 10

    def test_incremental_promotion(self, filter_):
        total_overflow = 0
        for _ in range(30):
            total_overflow += filter_.offer(2, 1)
        assert filter_.query(2) == 10
        assert total_overflow == 20

    def test_is_promoted(self, filter_):
        assert not filter_.is_promoted(3)
        filter_.offer(3, 50)
        assert filter_.is_promoted(3)


class TestLinearity:
    def test_merged_adds_counters(self, filter_):
        other = filter_.empty_like()
        filter_.add(1, 3)
        other.add(1, 4)
        merged = filter_.merged(other)
        assert merged.query(1) == 7

    def test_merged_saturates(self):
        a = ElementFilter((16,), (4,), threshold=10, seed=1)
        b = a.empty_like()
        a.add(1, 12)
        b.add(1, 12)
        assert a.merged(b).query(1) == 15

    def test_subtracted_gives_signed_deltas(self, filter_):
        other = filter_.empty_like()
        filter_.add(1, 3)
        other.add(1, 8)
        delta = filter_.subtracted(other)
        assert delta.query_signed(1) == -5

    def test_incompatible_merge_rejected(self, filter_):
        other = ElementFilter((128, 32), (4, 8), threshold=10, seed=99)
        with pytest.raises(IncompatibleSketchError):
            filter_.merged(other)
        with pytest.raises(IncompatibleSketchError):
            filter_.subtracted(other)

    def test_merge_leaves_inputs_untouched(self, filter_):
        other = filter_.empty_like()
        filter_.add(1, 3)
        other.add(1, 4)
        filter_.merged(other)
        assert filter_.query(1) == 3
        assert other.query(1) == 4


class TestIntrospection:
    def test_zero_fraction(self, filter_):
        assert filter_.zero_fraction() == 1.0
        filter_.add(1, 1)
        assert filter_.zero_fraction() < 1.0

    def test_base_index_stable(self, filter_):
        assert filter_.base_index(42) == filter_.base_index(42)
        assert 0 <= filter_.base_index(42) < 128

    def test_memory_bytes(self, filter_):
        assert filter_.memory_bytes() == 128 * 0.5 + 32 * 1.0

    def test_empty_like_same_hashing(self, filter_):
        clone = filter_.empty_like()
        for key in range(50):
            assert clone.base_index(key) == filter_.base_index(key)
