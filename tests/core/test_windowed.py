"""Unit tests for the windowed-measurement utility."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.windowed import WindowedDaVinci


@pytest.fixture
def windows(small_config):
    return WindowedDaVinci(small_config, window_size=100, retain=3)


class TestLifecycle:
    def test_auto_rotation(self, windows):
        windows.insert_all(range(1, 251))
        assert windows.windows_closed == 2
        assert len(windows.closed) == 2
        assert windows.current.total_count == 50

    def test_retention_cap(self, small_config):
        ring = WindowedDaVinci(small_config, window_size=10, retain=2)
        ring.insert_all(range(1, 51))  # 5 windows closed, keep newest 2
        assert ring.windows_closed == 5
        assert len(ring.closed) == 2

    def test_manual_rotate(self, windows):
        windows.insert(1)
        closed = windows.rotate()
        assert closed.total_count == 1
        assert windows.current.total_count == 0

    def test_rotate_empty_is_noop(self, windows):
        windows.insert(1)
        first = windows.rotate()
        assert windows.rotate() is first
        assert windows.windows_closed == 1

    def test_validation(self, small_config):
        with pytest.raises(ConfigurationError):
            WindowedDaVinci(small_config, window_size=0)
        with pytest.raises(ConfigurationError):
            WindowedDaVinci(small_config, window_size=10, retain=0)


class TestAccessors:
    def test_latest_previous_before_rotation(self, windows):
        assert windows.latest() is None
        assert windows.previous() is None
        assert windows.heavy_changers(1) == {}

    def test_latest_and_previous_order(self, windows):
        windows.insert_all([1] * 100)  # closes window 1
        windows.insert_all([2] * 100)  # closes window 2
        assert windows.latest().query(2) == 100
        assert windows.previous().query(1) == 100


class TestTasks:
    def test_heavy_changers_across_windows(self, small_config):
        ring = WindowedDaVinci(small_config, window_size=200, retain=2)
        ring.insert_all([1] * 150 + [2] * 50)  # window 1
        ring.insert_all([1] * 20 + [2] * 50 + [3] * 130)  # window 2
        changes = ring.heavy_changers(100)
        assert changes.get(1, 0) < 0  # crashed (newest − older)
        assert changes.get(3, 0) > 0  # appeared
        assert 2 not in changes  # stable

    def test_merged_view_spans_windows(self, small_config):
        ring = WindowedDaVinci(small_config, window_size=100, retain=3)
        ring.insert_all([7] * 100)
        ring.insert_all([7] * 100)
        ring.insert_all([7] * 30)  # stays in the live window
        view = ring.merged_view()
        assert view.query(7) == 230

    def test_merged_view_empty(self, windows):
        view = windows.merged_view()
        assert view.total_count == 0

    def test_window_sketches_support_all_tasks(self, small_config):
        ring = WindowedDaVinci(small_config, window_size=300, retain=2)
        ring.insert_all([k % 40 + 1 for k in range(300)])
        window = ring.latest()
        assert window.cardinality() > 0
        assert window.entropy() > 0
        assert window.heavy_hitters(5)
