"""Unit tests for the windowed-measurement utility."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core import MODE_ADDITIVE, DaVinciSketch
from repro.core.serialization import to_state
from repro.core.windowed import WindowedDaVinci


@pytest.fixture
def windows(small_config):
    return WindowedDaVinci(small_config, window_size=100, retain=3)


class TestLifecycle:
    def test_auto_rotation(self, windows):
        windows.insert_all(range(1, 251))
        assert windows.windows_closed == 2
        assert len(windows.closed) == 2
        assert windows.current.total_count == 50

    def test_retention_cap(self, small_config):
        ring = WindowedDaVinci(small_config, window_size=10, retain=2)
        ring.insert_all(range(1, 51))  # 5 windows closed, keep newest 2
        assert ring.windows_closed == 5
        assert len(ring.closed) == 2

    def test_manual_rotate(self, windows):
        windows.insert(1)
        closed = windows.rotate()
        assert closed.total_count == 1
        assert windows.current.total_count == 0

    def test_rotate_empty_is_noop(self, windows):
        windows.insert(1)
        first = windows.rotate()
        assert windows.rotate() is first
        assert windows.windows_closed == 1

    def test_validation(self, small_config):
        with pytest.raises(ConfigurationError):
            WindowedDaVinci(small_config, window_size=0)
        with pytest.raises(ConfigurationError):
            WindowedDaVinci(small_config, window_size=10, retain=0)

    def test_rejects_nonpositive_counts(self, windows):
        with pytest.raises(ConfigurationError):
            windows.insert(1, count=0)
        with pytest.raises(ConfigurationError):
            windows.insert(1, count=-3)
        with pytest.raises(ConfigurationError):
            windows.insert_batch([(1, 0)])


class TestCountWeightedOccupancy:
    def test_weighted_insert_advances_by_its_weight(self, small_config):
        ring = WindowedDaVinci(small_config, window_size=100, retain=3)
        ring.insert(1, count=60)
        assert ring.windows_closed == 0
        ring.insert(2, count=40)  # exactly fills the window
        assert ring.windows_closed == 1
        assert ring.latest().total_count == 100
        assert ring.current.total_count == 0

    def test_insert_larger_than_window_is_split(self, small_config):
        ring = WindowedDaVinci(small_config, window_size=100, retain=5)
        ring.insert(9, count=1000)  # ten full windows of a single key
        assert ring.windows_closed == 10
        assert ring.current.total_count == 0
        for window in ring.closed:
            assert window.total_count == 100
            assert window.query(9) == 100

    def test_split_insert_spills_the_remainder(self, small_config):
        ring = WindowedDaVinci(small_config, window_size=100, retain=3)
        ring.insert(1, count=70)
        ring.insert(2, count=50)  # 30 closes window 1, 20 spills
        assert ring.windows_closed == 1
        assert ring.latest().query(1) == 70
        assert ring.latest().query(2) == 30
        assert ring.current.query(2) == 20

    def test_batch_respects_window_boundaries(self, small_config):
        # the batched path must give each window exactly the mass the
        # per-item loop would — compare the closed windows' full state
        per_item = WindowedDaVinci(small_config, window_size=97, retain=5)
        batched = WindowedDaVinci(small_config, window_size=97, retain=5)
        pairs = [((index % 23) + 1, (index % 5) + 1) for index in range(200)]
        for key, count in pairs:
            per_item.insert(key, count)
        batched.insert_batch(pairs, chunk_size=32)
        assert batched.windows_closed == per_item.windows_closed
        assert batched._in_current == per_item._in_current
        for mine, theirs in zip(batched.closed, per_item.closed):
            assert to_state(mine) == to_state(theirs)

    def test_insert_all_matches_per_item_loop(self, small_config):
        per_item = WindowedDaVinci(small_config, window_size=64, retain=4)
        batched = WindowedDaVinci(small_config, window_size=64, retain=4)
        stream = [(index % 31) + 1 for index in range(500)]
        for key in stream:
            per_item.insert(key)
        batched.insert_all(stream, chunk_size=50)
        assert batched.windows_closed == per_item.windows_closed
        for mine, theirs in zip(batched.closed, per_item.closed):
            assert to_state(mine) == to_state(theirs)


class TestAccessors:
    def test_latest_previous_before_rotation(self, windows):
        assert windows.latest() is None
        assert windows.previous() is None
        assert windows.heavy_changers(1) == {}

    def test_latest_and_previous_order(self, windows):
        windows.insert_all([1] * 100)  # closes window 1
        windows.insert_all([2] * 100)  # closes window 2
        assert windows.latest().query(2) == 100
        assert windows.previous().query(1) == 100


class TestTasks:
    def test_heavy_changers_across_windows(self, small_config):
        ring = WindowedDaVinci(small_config, window_size=200, retain=2)
        ring.insert_all([1] * 150 + [2] * 50)  # window 1
        ring.insert_all([1] * 20 + [2] * 50 + [3] * 130)  # window 2
        changes = ring.heavy_changers(100)
        assert changes.get(1, 0) < 0  # crashed (newest − older)
        assert changes.get(3, 0) > 0  # appeared
        assert 2 not in changes  # stable

    def test_merged_view_spans_windows(self, small_config):
        ring = WindowedDaVinci(small_config, window_size=100, retain=3)
        ring.insert_all([7] * 100)
        ring.insert_all([7] * 100)
        ring.insert_all([7] * 30)  # stays in the live window
        view = ring.merged_view()
        assert view.query(7) == 230

    def test_merged_view_empty(self, windows):
        view = windows.merged_view()
        assert view.total_count == 0
        # an empty union is still a union: the mode must be consistent
        # with the non-empty case so downstream dispatch doesn't flip
        assert view.mode == MODE_ADDITIVE

    def test_merged_view_mode_is_always_additive(self, small_config):
        ring = WindowedDaVinci(small_config, window_size=100, retain=3)
        assert ring.merged_view().mode == MODE_ADDITIVE
        ring.insert_all([5] * 30)  # live window only
        assert ring.merged_view().mode == MODE_ADDITIVE
        ring.insert_all([5] * 170)  # at least one closed window
        assert ring.merged_view().mode == MODE_ADDITIVE

    def test_merged_view_never_aliases_live_windows(self, small_config):
        ring = WindowedDaVinci(small_config, window_size=100, retain=3)
        ring.insert_all([4] * 30)
        view = ring.merged_view()
        assert view is not ring.current
        before = view.query(4)
        ring.insert_all([4] * 10)
        assert view.query(4) == before

    def test_window_sketches_support_all_tasks(self, small_config):
        ring = WindowedDaVinci(small_config, window_size=300, retain=2)
        ring.insert_all([k % 40 + 1 for k in range(300)])
        window = ring.latest()
        assert window.cardinality() > 0
        assert window.entropy() > 0
        assert window.heavy_hitters(5)


class TestMergedViewCache:
    """The closed-window fold is memoized, keyed on ``windows_closed``."""

    @staticmethod
    def _from_scratch(ring) -> DaVinciSketch:
        view = DaVinciSketch(ring.config)
        view.mode = MODE_ADDITIVE
        for window in list(ring.closed) + [ring.current]:
            if window.total_count == 0:
                continue
            view = view.union(window)
        return view

    def test_cached_view_identical_to_from_scratch_across_rotations(
        self, small_config
    ):
        ring = WindowedDaVinci(small_config, window_size=200, retain=3)
        stream = [k % 60 + 1 for k in range(1700)]
        for step, key in enumerate(stream):
            ring.insert(key)
            if step % 111 == 0:
                cached = ring.merged_view()
                assert cached.to_state() == self._from_scratch(ring).to_state()
        # repeated calls between rotations reuse the memoized fold
        again = ring.merged_view()
        assert again.to_state() == self._from_scratch(ring).to_state()

    def test_cache_reused_between_rotations_and_invalidated_on_rotate(
        self, small_config
    ):
        ring = WindowedDaVinci(small_config, window_size=100, retain=2)
        ring.insert_all([3] * 250)  # two closed windows + live content
        ring.merged_view()
        first = ring._merged_closed_cache
        assert first is not None and first[0] == ring.windows_closed
        ring.merged_view()
        assert ring._merged_closed_cache is first  # reused, not rebuilt
        ring.insert_all([4] * 100)  # forces a rotation
        ring.merged_view()
        assert ring._merged_closed_cache is not first
        assert ring._merged_closed_cache[0] == ring.windows_closed

    def test_view_with_empty_live_window_is_not_the_cache(self, small_config):
        ring = WindowedDaVinci(small_config, window_size=100, retain=2)
        ring.insert_all([9] * 200)  # exactly two rotations, live empty
        view = ring.merged_view()
        assert view is not ring._merged_closed_cache[1]
        before = view.query(9)
        ring.insert_all([9] * 100)
        assert view.query(9) == before
