"""Unit tests for the inner-join (join-size) estimator."""

import random

import pytest

from repro.common.errors import IncompatibleSketchError
from repro.core import DaVinciConfig, DaVinciSketch
from repro.core.tasks.innerjoin import inner_join


def exact_join(freq_a, freq_b):
    return sum(count * freq_b.get(key, 0) for key, count in freq_a.items())


class TestInnerJoin:
    def test_disjoint_sets_give_near_zero(self, small_config):
        a, b = DaVinciSketch(small_config), DaVinciSketch(small_config)
        a.insert_all(range(0, 50))
        b.insert_all(range(1000, 1050))
        estimate = inner_join(a, b)
        assert abs(estimate) < 100  # collision noise only

    def test_identical_heavy_keys(self, small_config):
        a, b = DaVinciSketch(small_config), DaVinciSketch(small_config)
        a.insert_all([1] * 100 + [2] * 10)
        b.insert_all([1] * 50 + [2] * 20)
        true = 100 * 50 + 10 * 20
        assert inner_join(a, b) == pytest.approx(true, rel=0.05)

    def test_self_join_second_moment(self, small_config):
        a, b = DaVinciSketch(small_config), DaVinciSketch(small_config)
        stream = [1] * 30 + [2] * 20 + [3] * 10
        a.insert_all(stream)
        b.insert_all(stream)
        true = 30**2 + 20**2 + 10**2
        assert inner_join(a, b) == pytest.approx(true, rel=0.1)

    def test_skewed_streams(self, small_config):
        rng = random.Random(5)
        keys = list(range(1, 301))
        weights = [1 / (k**1.2) for k in keys]
        stream_a = rng.choices(keys, weights=weights, k=4000)
        stream_b = rng.choices(keys, weights=weights, k=4000)
        freq_a, freq_b = {}, {}
        for key in stream_a:
            freq_a[key] = freq_a.get(key, 0) + 1
        for key in stream_b:
            freq_b[key] = freq_b.get(key, 0) + 1
        a, b = DaVinciSketch(small_config), DaVinciSketch(small_config)
        a.insert_all(stream_a)
        b.insert_all(stream_b)
        true = exact_join(freq_a, freq_b)
        assert inner_join(a, b) == pytest.approx(true, rel=0.1)

    def test_symmetry(self, small_config):
        a, b = DaVinciSketch(small_config), DaVinciSketch(small_config)
        a.insert_all([1] * 20 + [5] * 3)
        b.insert_all([1] * 7 + [9] * 4)
        assert inner_join(a, b) == pytest.approx(inner_join(b, a), rel=1e-9)

    def test_incompatible_configs_rejected(self, small_config):
        import dataclasses

        a = DaVinciSketch(small_config)
        b = DaVinciSketch(dataclasses.replace(small_config, seed=99))
        with pytest.raises(IncompatibleSketchError):
            inner_join(a, b)

    def test_empty_operand(self, small_config):
        a, b = DaVinciSketch(small_config), DaVinciSketch(small_config)
        a.insert_all([1] * 10)
        assert inner_join(a, b) == pytest.approx(0.0, abs=1.0)

    def test_facade(self, small_config):
        a, b = DaVinciSketch(small_config), DaVinciSketch(small_config)
        a.insert_all([1] * 10)
        b.insert_all([1] * 3)
        assert a.inner_join(b) == inner_join(a, b)
