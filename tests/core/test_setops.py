"""Unit tests for union and difference of DaVinci sketches."""

import pytest

from repro.common.errors import IncompatibleSketchError
from repro.core import DaVinciConfig, DaVinciSketch
from repro.core.davinci import MODE_ADDITIVE, MODE_SIGNED
from repro.core.setops import difference, union


def build_pair(small_config):
    return DaVinciSketch(small_config), DaVinciSketch(small_config)


class TestUnion:
    def test_mode_and_total(self, small_config):
        a, b = build_pair(small_config)
        a.insert_all([1, 2, 3])
        b.insert_all([3, 4])
        merged = union(a, b)
        assert merged.mode == MODE_ADDITIVE
        assert merged.total_count == 5

    def test_counts_add(self, small_config):
        a, b = build_pair(small_config)
        a.insert_all([1] * 5 + [2] * 2)
        b.insert_all([1] * 3 + [4] * 7)
        merged = union(a, b)
        assert merged.query(1) == 8
        assert merged.query(2) == 2
        assert merged.query(4) == 7

    def test_inputs_untouched(self, small_config):
        a, b = build_pair(small_config)
        a.insert_all([1] * 5)
        b.insert_all([1] * 3)
        union(a, b)
        assert a.query(1) == 5
        assert b.query(1) == 3

    def test_union_is_commutative_on_queries(self, small_config):
        a, b = build_pair(small_config)
        a.insert_all(range(50))
        b.insert_all(range(25, 75))
        ab, ba = union(a, b), union(b, a)
        for key in range(75):
            assert ab.query(key) == ba.query(key)

    def test_union_under_eviction_pressure(self, small_config):
        """Merged bucket overflow routes leftovers into the lower parts."""
        a, b = build_pair(small_config)
        # Different key ranges so merged buckets exceed capacity c=4.
        a.insert_all([k for k in range(300) for _ in range(3)])
        b.insert_all([k for k in range(300, 600) for _ in range(3)])
        merged = union(a, b)
        estimates = [merged.query(k) for k in range(0, 600, 7)]
        # 600 flows through a 64-entry FP: heavy collision noise is
        # expected at this starved size, but the additive union query must
        # stay non-negative and in the right ballpark on average.
        assert all(estimate >= 0 for estimate in estimates)
        errors = [abs(estimate - 3) for estimate in estimates]
        assert sum(errors) / len(errors) < 12.0

    def test_incompatible_rejected(self, small_config):
        import dataclasses

        other = DaVinciSketch(dataclasses.replace(small_config, seed=99))
        with pytest.raises(IncompatibleSketchError):
            union(DaVinciSketch(small_config), other)


class TestDifference:
    def test_mode_and_total(self, small_config):
        a, b = build_pair(small_config)
        a.insert_all([1, 2, 3])
        b.insert_all([3])
        delta = difference(a, b)
        assert delta.mode == MODE_SIGNED
        assert delta.total_count == 2

    def test_paper_example(self, small_config):
        """A = {a,a,b,d}, B = {a,b,b,c} → A−B = {a, −b, d, −c}."""
        a, b = build_pair(small_config)
        key_a, key_b, key_c, key_d = 11, 22, 33, 44
        a.insert_all([key_a, key_a, key_b, key_d])
        b.insert_all([key_a, key_b, key_b, key_c])
        delta = difference(a, b)
        assert delta.query(key_a) == 1
        assert delta.query(key_b) == -1
        assert delta.query(key_c) == -1
        assert delta.query(key_d) == 1

    def test_identical_sets_cancel(self, small_config):
        a, b = build_pair(small_config)
        stream = [k for k in range(100) for _ in range(2)]
        a.insert_all(stream)
        b.insert_all(stream)
        delta = difference(a, b)
        for key in range(0, 100, 9):
            assert delta.query(key) == 0

    def test_antisymmetry(self, small_config):
        a, b = build_pair(small_config)
        a.insert_all([1] * 9 + [2] * 4)
        b.insert_all([1] * 2 + [3] * 6)
        ab, ba = difference(a, b), difference(b, a)
        for key in (1, 2, 3):
            assert ab.query(key) == -ba.query(key)

    def test_inclusion_difference(self, small_config):
        """B ⊂ A: the delta is exactly A's extra occurrences."""
        a, b = build_pair(small_config)
        whole = [k for k in range(80) for _ in range(3)]
        half = whole[: len(whole) // 2]
        a.insert_all(whole)
        b.insert_all(half)
        delta = difference(a, b)
        from collections import Counter

        truth = Counter(whole)
        truth.subtract(Counter(half))
        errors = [abs(delta.query(k) - truth[k]) for k in range(80)]
        assert sum(errors) / len(errors) < 2.0

    def test_incompatible_rejected(self, small_config):
        import dataclasses

        other = DaVinciSketch(dataclasses.replace(small_config, seed=99))
        with pytest.raises(IncompatibleSketchError):
            difference(DaVinciSketch(small_config), other)


class TestChaining:
    def test_union_then_query_tasks_still_work(self, small_config):
        a, b = build_pair(small_config)
        a.insert_all([k for k in range(50) for _ in range(k % 4 + 1)])
        b.insert_all([k for k in range(25, 75) for _ in range(2)])
        merged = union(a, b)
        assert merged.cardinality() > 0
        assert merged.heavy_hitters(3)

    def test_heavy_changer_via_difference(self, small_config):
        a, b = build_pair(small_config)
        a.insert_all([7] * 50 + [8] * 5)
        b.insert_all([7] * 5 + [8] * 5)
        delta = difference(a, b)
        changes = delta.heavy_hitters(30)
        assert 7 in changes
        assert 8 not in changes
