"""Unit tests for cardinality estimation."""

import math

import pytest

from repro.core import DaVinciSketch
from repro.core.tasks.cardinality import (
    cardinality,
    linear_counting_estimate,
    linear_counting_over,
)


class TestLinearCounting:
    def test_empty_array(self):
        assert linear_counting_estimate(100, 100) == 0.0

    def test_formula(self):
        # 100 counters, 50 empty → n̂ = −100·ln(0.5)
        assert linear_counting_estimate(100, 50) == pytest.approx(
            -100 * math.log(0.5)
        )

    def test_saturated_array_uses_half_counter_convention(self):
        estimate = linear_counting_estimate(100, 0)
        assert estimate == pytest.approx(-100 * math.log(0.5 / 100))

    def test_zero_counters(self):
        assert linear_counting_estimate(0, 0) == 0.0

    def test_over_counter_array(self):
        counters = [0] * 60 + [3] * 40
        assert linear_counting_over(counters) == pytest.approx(
            -100 * math.log(0.6)
        )

    def test_accuracy_on_random_assignment(self):
        import random

        rng = random.Random(3)
        width = 1024
        counters = [0] * width
        distinct = 400
        for key in range(distinct):
            counters[rng.randrange(width)] += 1
        estimate = linear_counting_over(counters)
        assert abs(estimate - distinct) / distinct < 0.1


class TestSketchCardinality:
    def test_exact_on_small_streams(self, sketch):
        sketch.insert_all(range(30))
        assert cardinality(sketch) == pytest.approx(30, abs=6)

    def test_duplicates_do_not_inflate(self, sketch):
        sketch.insert_all([5] * 500)
        assert cardinality(sketch) <= 3

    def test_empty_sketch(self, sketch):
        assert cardinality(sketch) == 0.0

    def test_under_pressure(self, loaded_sketch, zipf_truth):
        estimate = cardinality(loaded_sketch)
        assert abs(estimate - len(zipf_truth)) / len(zipf_truth) < 0.15

    def test_signed_mode_counts_nonzero_deltas(self, small_config):
        a, b = DaVinciSketch(small_config), DaVinciSketch(small_config)
        a.insert_all([1, 1, 2, 3])
        b.insert_all([1, 1, 2, 4])
        delta = a.difference(b)
        # keys 3 (+1) and 4 (−1) differ
        assert cardinality(delta) == pytest.approx(2, abs=1)

    def test_method_facade_matches_function(self, loaded_sketch):
        assert loaded_sketch.cardinality() == cardinality(loaded_sketch)
