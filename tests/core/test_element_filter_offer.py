"""Equivalence tests for the optimized filter hot path.

``ElementFilter.offer`` inlines the query+add pair with shared hash
positions; these tests pin its behaviour to the reference semantics
("estimate via :meth:`query`, absorb via :meth:`add`") across saturation
and threshold corners.
"""

import random

from repro.core.element_filter import ElementFilter


def reference_offer(ef: ElementFilter, key: int, count: int) -> int:
    """The unoptimized offer semantics, built from the public primitives."""
    current = ef.query(key)
    if current >= ef.threshold:
        return count
    absorbed = min(count, ef.threshold - current)
    ef.add(key, absorbed)
    return count - absorbed


class TestOfferEquivalence:
    def test_random_streams_agree_with_reference(self):
        rng = random.Random(3)
        fast = ElementFilter((64, 16), (4, 8), threshold=12, seed=5)
        slow = ElementFilter((64, 16), (4, 8), threshold=12, seed=5)
        for _ in range(3000):
            key = rng.randrange(1, 120)
            count = rng.randrange(1, 5)
            assert fast.offer(key, count) == reference_offer(slow, key, count)
        assert fast.levels == slow.levels

    def test_saturated_base_level_still_promotes(self):
        ef = ElementFilter((4, 64), (4, 8), threshold=12, seed=1)
        # level 0 has only 4 counters: saturate them all
        for key in range(1, 40):
            ef.offer(key, 1)
        # a key whose level-0 counter is saturated must still be readable
        # (and promotable) through level 1
        overflow = ef.offer(200, 20)
        assert overflow >= 0
        assert ef.query(200) <= ef.threshold + 0  # held mass capped at T

    def test_offer_on_single_level_filter(self):
        ef = ElementFilter((32,), (8,), threshold=20, seed=2)
        assert ef.offer(1, 5) == 0
        assert ef.offer(1, 30) == 15
        assert ef.query(1) == 20

    def test_exact_threshold_boundary(self):
        ef = ElementFilter((64, 16), (4, 8), threshold=10, seed=3)
        assert ef.offer(7, 10) == 0  # lands exactly on T
        assert ef.query(7) == 10
        assert ef.offer(7, 1) == 1  # everything after T overflows

    def test_zero_headroom_after_collisions(self):
        ef = ElementFilter((1, 1), (4, 8), threshold=10, seed=4)
        ef.add(999, 10)  # the single shared counter reads >= T already
        assert ef.offer(1, 3) == 3  # nothing absorbed
