"""Branch-level tests for the frequency query (paper Algorithm 4).

Each test engineers the sketch state so one specific branch of the query
must fire, then checks both the answer and that the expected branch is the
one that produced it.
"""

import pytest

from repro.common.errors import DecodeError
from repro.core import DaVinciConfig, DaVinciSketch


@pytest.fixture
def config():
    return DaVinciConfig(
        fp_buckets=4,
        fp_entries=2,
        ef_level_widths=(128, 64),
        ef_level_bits=(4, 8),
        ifp_rows=3,
        ifp_width=64,
        lambda_evict=2.0,
        filter_threshold=10,
        seed=13,
    )


class TestLines2to4_ExactFrequentPart:
    def test_unflagged_resident_is_exact_and_skips_lower_parts(self, config):
        sketch = DaVinciSketch(config)
        sketch.insert(1, 500)
        count, present, flag = sketch.fp.lookup(1)
        assert present and not flag
        # pollute the filter heavily at other keys; the exact branch must
        # not pick any of it up
        for key in range(100, 400):
            sketch.insert(key)
        if not sketch.fp.lookup(1)[2]:  # still unflagged
            assert sketch.query(1) == 500


class TestLines9to11_DecodedInfrequentPart:
    def test_promoted_and_decoded_gets_plus_t(self, config):
        sketch = DaVinciSketch(config)
        # Two heavy residents per bucket slot, then a mid flow that gets
        # evicted and promoted: insert it in bursts so the FP keeps
        # rejecting it (case 4) into the filter.
        sketch.insert(1, 1000)
        sketch.insert(2, 1000)
        target = 777
        for _ in range(60):
            sketch.insert(target)
        count, present, _ = sketch.fp.lookup(target)
        if not present:
            decoded = sketch.decode_counts()
            assert target in decoded
            # query = decoded + T exactly (plus any FP share, which is 0)
            assert sketch.query(target) == decoded[target] + config.filter_threshold
            assert sketch.query(target) == 60


class TestLines13to22_FilterEstimate:
    def test_small_flow_served_by_filter(self, config):
        sketch = DaVinciSketch(config)
        sketch.insert(1, 100)
        sketch.insert(2, 100)
        mouse = 555
        for _ in range(3):
            sketch.insert(mouse)
        count, present, _ = sketch.fp.lookup(mouse)
        if not present:
            assert sketch.decode_counts().get(mouse) is None
            estimate = sketch.query(mouse)
            assert 3 <= estimate < config.filter_threshold

    def test_absent_key_reads_bounded_noise(self, config):
        sketch = DaVinciSketch(config)
        sketch.insert_all(range(1, 50))
        estimate = sketch.query(999_983)
        assert 0 <= estimate <= config.filter_threshold


class TestLines16to20_FastQueryFallback:
    def test_undecodable_promoted_flow_uses_fast_query_plus_t(self):
        config = DaVinciConfig(
            fp_buckets=2,
            fp_entries=2,
            ef_level_widths=(64, 32),
            ef_level_bits=(4, 8),
            ifp_rows=3,
            ifp_width=4,  # tiny: promotion storm defeats peeling
            lambda_evict=2.0,
            filter_threshold=10,
            seed=13,
        )
        sketch = DaVinciSketch(config)
        for key in range(1, 120):
            sketch.insert(key, 40)  # everything promotes, IFP overloads
        result = sketch.decode_result()
        assert not result.complete
        # pick a promoted key that did not decode
        undecoded = [
            key
            for key in range(1, 120)
            if key not in result.counts
            and not sketch.fp.lookup(key)[1]
            and sketch.ef.query(key) >= sketch.ef.threshold
        ]
        assert undecoded
        for key in undecoded[:5]:
            estimate = sketch.query(key)
            # fast-query fallback: T + max(0, median) — at least the filter
            # share, never negative
            assert estimate >= sketch.ef.threshold


class TestStrictDecode:
    def test_strict_raises_with_partial(self):
        from repro.core.infrequent_part import InfrequentPart

        ifp = InfrequentPart(rows=3, width=4, seed=3)
        for key in range(100, 200):
            ifp.insert(key, 1)
        with pytest.raises(DecodeError) as exc_info:
            ifp.decode(strict=True)
        assert isinstance(exc_info.value.partial, dict)

    def test_strict_passes_when_complete(self):
        from repro.core.infrequent_part import InfrequentPart

        ifp = InfrequentPart(rows=3, width=64, seed=3)
        ifp.insert(42, 7)
        assert ifp.decode(strict=True).counts == {42: 7}
