"""Unit tests for the DaVinciSketch facade."""

import pytest

from repro.common.errors import IncompatibleSketchError
from repro.core import DaVinciConfig, DaVinciSketch
from repro.core.davinci import MODE_STANDARD


class TestInsertAndQuery:
    def test_small_exact(self, sketch):
        for key in range(10):
            for _ in range(key + 1):
                sketch.insert(key)
        for key in range(10):
            assert sketch.query(key) == key + 1

    def test_absent_key_is_small(self, loaded_sketch):
        # A key never inserted reads only collision noise.
        assert loaded_sketch.query(10**9) <= loaded_sketch.ef.threshold

    def test_total_count_tracks_stream(self, sketch):
        sketch.insert(1)
        sketch.insert(2, count=5)
        assert sketch.total_count == 6

    def test_insert_all(self, sketch):
        sketch.insert_all([1, 1, 2])
        assert sketch.query(1) == 2
        assert sketch.query(2) == 1

    def test_heavy_flow_estimated_well_under_pressure(
        self, loaded_sketch, zipf_truth
    ):
        heaviest = max(zipf_truth, key=zipf_truth.get)
        estimate = loaded_sketch.query(heaviest)
        true = zipf_truth[heaviest]
        assert abs(estimate - true) / true < 0.05

    def test_overall_are_is_reasonable(self, loaded_sketch, zipf_truth):
        are = sum(
            abs(loaded_sketch.query(k) - v) / v for k, v in zipf_truth.items()
        ) / len(zipf_truth)
        # the fixture config is deliberately starved (~0.5 B/key), so this
        # is a sanity bound, not an accuracy benchmark
        assert are < 2.0


class TestPromotionPath:
    def test_mid_flows_reach_infrequent_part(self, small_config):
        """Force evictions so the EF promotes into the IFP."""
        sketch = DaVinciSketch(small_config)
        # 200 distinct mid-size flows overwhelm the 64-entry FP.
        for key in range(1, 201):
            for _ in range(30):
                sketch.insert(key)
        assert sketch.ifp.nonzero_buckets() > 0
        decoded = sketch.decode_counts()
        assert decoded  # at least some promoted flows decode
        # every decoded flow's full query lands near its true count of 30
        for key in decoded:
            if key <= 200:
                assert abs(sketch.query(key) - 30) <= 10

    def test_decode_cache_invalidated_on_insert(self, sketch):
        sketch.insert(1)
        first = sketch.decode_result()
        assert sketch.decode_result() is first  # cached
        sketch.insert(2)
        assert sketch.decode_result() is not first


class TestAccounting:
    def test_memory_matches_config(self, small_config):
        sketch = DaVinciSketch(small_config)
        assert sketch.memory_bytes() == small_config.total_bytes()

    def test_ama_counts_only_insertions(self, sketch):
        for key in range(100):
            sketch.insert(key)
        assert sketch.insertions == 100
        assert sketch.memory_accesses >= 100
        ama = sketch.average_memory_access()
        # at most FP full scan + filter levels + IFP rows per insert
        upper = (
            sketch.fp.entries_per_bucket + 2 + sketch.ef.num_levels + sketch.ifp.rows
        )
        assert 1 <= ama <= upper

    def test_reset_access_counters(self, loaded_sketch):
        loaded_sketch.reset_access_counters()
        assert loaded_sketch.average_memory_access() == 0.0


class TestCompatibility:
    def test_same_config_compatible(self, small_config):
        DaVinciSketch(small_config).check_compatible(DaVinciSketch(small_config))

    def test_different_seed_incompatible(self, small_config):
        import dataclasses

        other_config = dataclasses.replace(small_config, seed=small_config.seed + 1)
        with pytest.raises(IncompatibleSketchError):
            DaVinciSketch(small_config).check_compatible(
                DaVinciSketch(other_config)
            )

    def test_empty_like(self, loaded_sketch):
        empty = loaded_sketch.empty_like()
        assert empty.total_count == 0
        assert empty.mode == MODE_STANDARD
        assert empty.config == loaded_sketch.config


class TestKnownKeys:
    def test_known_keys_cover_frequent_part(self, loaded_sketch):
        known = loaded_sketch.known_keys()
        for key, _count in loaded_sketch.fp.items():
            assert key in known

    def test_known_keys_values_match_query(self, loaded_sketch):
        for key, value in loaded_sketch.known_keys().items():
            assert value == loaded_sketch.query(key)


class TestTaskFacade:
    def test_heavy_hitters_threshold_filtering(self, loaded_sketch, zipf_truth):
        threshold = 100
        reported = loaded_sketch.heavy_hitters(threshold)
        for key, estimate in reported.items():
            assert estimate >= threshold

    def test_cardinality_close(self, loaded_sketch, zipf_truth):
        estimate = loaded_sketch.cardinality()
        assert abs(estimate - len(zipf_truth)) / len(zipf_truth) < 0.15

    def test_entropy_close(self, loaded_sketch, zipf_stream, zipf_truth):
        import math

        total = len(zipf_stream)
        true_entropy = -sum(
            (v / total) * math.log(v / total) for v in zipf_truth.values()
        )
        assert abs(loaded_sketch.entropy() - true_entropy) / true_entropy < 0.25

    def test_distribution_masses_are_positive(self, loaded_sketch):
        histogram = loaded_sketch.distribution()
        assert histogram
        assert all(size >= 1 and count > 0 for size, count in histogram.items())

    def test_distribution_max_size_filter(self, loaded_sketch):
        histogram = loaded_sketch.distribution(max_size=5)
        assert all(size <= 5 for size in histogram)

    def test_union_and_difference_shortcuts(self, small_config):
        a = DaVinciSketch(small_config)
        b = DaVinciSketch(small_config)
        a.insert_all([1, 1, 2])
        b.insert_all([2, 3])
        union = a.union(b)
        assert union.query(1) == 2
        delta = a.difference(b)
        assert delta.query(3) == -1

    def test_inner_join_shortcut(self, small_config):
        a = DaVinciSketch(small_config)
        b = DaVinciSketch(small_config)
        a.insert_all([1] * 10 + [2] * 5)
        b.insert_all([1] * 4 + [3] * 2)
        estimate = a.inner_join(b)
        assert estimate == pytest.approx(40, rel=0.25)

    def test_repr_mentions_mode(self, sketch):
        assert "standard" in repr(sketch)
