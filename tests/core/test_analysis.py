"""Unit tests for the Section-IV analysis helpers."""

import pytest

from repro.core import DaVinciConfig, DaVinciSketch
from repro.core.analysis import (
    davinci_error_bound,
    empirical_bias,
    empirical_variance,
    exceed_fraction,
    partition_truth_by_part,
)


@pytest.fixture
def loaded(small_config):
    sketch = DaVinciSketch(small_config)
    truth = {}
    for key in range(1, 40):
        count = key  # sizes 1..39 straddle the T=10 threshold
        sketch.insert(key, count)
        truth[key] = count
    return sketch, truth


class TestPartition:
    def test_masses_sum_to_truth(self, loaded):
        sketch, truth = loaded
        fp_mass, ef_mass, ifp_mass = partition_truth_by_part(sketch, truth)
        for key, total in truth.items():
            assert fp_mass[key] + ef_mass[key] + ifp_mass[key] == total

    def test_fp_resident_key_fully_in_fp(self, loaded):
        sketch, truth = loaded
        fp_mass, ef_mass, ifp_mass = partition_truth_by_part(sketch, truth)
        for key, count in sketch.fp.items():
            if key in truth and count == truth[key]:
                assert ef_mass[key] == 0
                assert ifp_mass[key] == 0

    def test_ef_mass_capped_at_threshold(self, loaded):
        sketch, truth = loaded
        _fp, ef_mass, _ifp = partition_truth_by_part(sketch, truth)
        threshold = sketch.ef.threshold
        assert all(mass <= threshold for mass in ef_mass.values())

    def test_ifp_mass_nonnegative(self, loaded):
        sketch, truth = loaded
        _fp, _ef, ifp_mass = partition_truth_by_part(sketch, truth)
        assert all(mass >= 0 for mass in ifp_mass.values())


class TestEmpiricalHelpers:
    def test_bias_of_perfect_estimator(self):
        truth = {1: 5, 2: 9}
        assert empirical_bias(dict(truth), truth) == 0.0

    def test_bias_sign(self):
        truth = {1: 5}
        assert empirical_bias({1: 8}, truth) == 3.0
        assert empirical_bias({1: 2}, truth) == -3.0

    def test_variance(self):
        truth = {1: 5, 2: 5}
        estimates = {1: 7, 2: 3}
        assert empirical_variance(estimates, truth) == 4.0

    def test_exceed_fraction(self):
        truth = {1: 5, 2: 5, 3: 5, 4: 5}
        estimates = {1: 5, 2: 6, 3: 9, 4: 20}
        assert exceed_fraction(estimates, truth, threshold=2.0) == 0.5

    def test_empty_inputs(self):
        assert empirical_bias({}, {}) == 0.0
        assert empirical_variance({}, {}) == 0.0
        assert exceed_fraction({}, {}, 1.0) == 0.0


class TestBoundAssembly:
    def test_bound_grows_with_k(self, loaded):
        sketch, truth = loaded
        low_k = davinci_error_bound(sketch, truth, k=4.0)
        high_k = davinci_error_bound(sketch, truth, k=16.0)
        assert high_k[0] >= low_k[0]
        assert high_k[1] >= low_k[1]

    def test_upper_includes_lower(self, loaded):
        sketch, truth = loaded
        lower, upper = davinci_error_bound(sketch, truth, k=9.0)
        assert upper >= lower >= 0.0
