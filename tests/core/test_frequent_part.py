"""Unit tests for the frequent part (Algorithm 1)."""

import pytest

from repro.common.errors import IncompatibleSketchError
from repro.core.frequent_part import FrequentPart


@pytest.fixture
def single_bucket() -> FrequentPart:
    """One bucket of two entries — forces every Algorithm-1 case."""
    return FrequentPart(buckets=1, entries_per_bucket=2, lambda_evict=2.0, seed=1)


class TestInsertCases:
    def test_case2_fills_empty_entries(self, single_bucket):
        outcome = single_bucket.insert(10)
        assert outcome.case == 2
        assert outcome.demoted is None
        assert single_bucket.lookup(10) == (1, True, False)

    def test_case1_increments_resident(self, single_bucket):
        single_bucket.insert(10)
        outcome = single_bucket.insert(10, count=5)
        assert outcome.case == 1
        assert single_bucket.lookup(10)[0] == 6

    def test_case4_demotes_newcomer(self, single_bucket):
        single_bucket.insert(10, count=100)
        single_bucket.insert(11, count=100)
        outcome = single_bucket.insert(12)  # bucket full, ecnt=1 <= λ·100
        assert outcome.case == 4
        assert outcome.demoted == (12, 1)
        assert single_bucket.lookup(12) == (0, False, True)

    def test_case3_evicts_minimum(self, single_bucket):
        single_bucket.insert(10, count=100)
        single_bucket.insert(11, count=1)  # the eviction victim
        # λ=2 and min count 1: the 3rd failed probe crosses 2·1.
        assert single_bucket.insert(12).case == 4
        assert single_bucket.insert(12).case == 4
        outcome = single_bucket.insert(12)
        assert outcome.case == 3
        assert outcome.demoted == (11, 1)
        count, present, flag = single_bucket.lookup(12)
        assert (count, present, flag) == (1, True, True)
        # the survivor keeps its exact count and exactness flag
        assert single_bucket.lookup(10) == (100, True, False)

    def test_case3_resets_evict_counter(self, single_bucket):
        single_bucket.insert(10, count=100)
        single_bucket.insert(11, count=1)
        for _ in range(3):
            single_bucket.insert(12)
        assert single_bucket.buckets[0].ecnt == 0

    def test_accesses_reported(self, single_bucket):
        assert single_bucket.insert(10).accesses == 1  # case 2, empty scan
        assert single_bucket.insert(10).accesses == 1  # case 1, position 0
        assert single_bucket.insert(11).accesses == 2  # case 2 after 1 entry
        assert single_bucket.insert(11).accesses == 2  # case 1, position 1
        # full bucket: entries + ecnt + flag
        assert single_bucket.insert(12).accesses == 2 + 2


class TestLookupAndIteration:
    def test_absent_key(self, single_bucket):
        assert single_bucket.lookup(99) == (0, False, True)

    def test_items_and_as_dict(self):
        fp = FrequentPart(buckets=8, entries_per_bucket=4, lambda_evict=8, seed=2)
        for key in range(20):
            fp.insert(key, count=key + 1)
        resident = fp.as_dict()
        assert resident  # something landed
        for key, count in fp.items():
            assert resident[key] == count

    def test_len_and_capacity(self):
        fp = FrequentPart(buckets=4, entries_per_bucket=3, lambda_evict=8, seed=2)
        assert fp.capacity == 12
        assert len(fp) == 0
        fp.insert(1)
        assert len(fp) == 1

    def test_flagged_items_only_reports_replacements(self, single_bucket):
        single_bucket.insert(10, count=100)
        single_bucket.insert(11, count=1)
        for _ in range(3):
            single_bucket.insert(12)
        flagged = dict(single_bucket.flagged_items())
        assert set(flagged) == {12}


class TestExactness:
    def test_counts_exact_without_eviction(self):
        fp = FrequentPart(buckets=64, entries_per_bucket=8, lambda_evict=8, seed=3)
        truth = {}
        for key in range(100):
            for _ in range(key % 7 + 1):
                fp.insert(key)
                truth[key] = truth.get(key, 0) + 1
        # 100 keys into 512 slots: no bucket overflows w.h.p. at this seed
        for key, count in truth.items():
            stored, present, flag = fp.lookup(key)
            if present:
                assert stored <= count  # never overestimates
            if present and not flag:
                assert stored == count


class TestStructureOps:
    def test_empty_like_preserves_shape_and_seed(self):
        fp = FrequentPart(buckets=4, entries_per_bucket=3, lambda_evict=5, seed=9)
        clone = fp.empty_like()
        assert clone.num_buckets == 4
        assert clone.entries_per_bucket == 3
        assert len(clone) == 0
        for key in range(50):
            assert fp.bucket_index(key) == clone.bucket_index(key)

    def test_check_compatible_rejects_different_seed(self):
        a = FrequentPart(buckets=4, entries_per_bucket=3, lambda_evict=5, seed=1)
        b = FrequentPart(buckets=4, entries_per_bucket=3, lambda_evict=5, seed=2)
        with pytest.raises(IncompatibleSketchError):
            a.check_compatible(b)

    def test_check_compatible_rejects_different_shape(self):
        a = FrequentPart(buckets=4, entries_per_bucket=3, lambda_evict=5, seed=1)
        b = FrequentPart(buckets=8, entries_per_bucket=3, lambda_evict=5, seed=1)
        with pytest.raises(IncompatibleSketchError):
            a.check_compatible(b)

    def test_accepts_identical(self):
        a = FrequentPart(buckets=4, entries_per_bucket=3, lambda_evict=5, seed=1)
        b = FrequentPart(buckets=4, entries_per_bucket=3, lambda_evict=5, seed=1)
        a.check_compatible(b)
