"""Degradation policies across every decode consumer.

The contract under a forced peel stall (ISSUE acceptance):

* ``STRICT``      — every task raises :class:`DecodeError`;
* ``DEGRADE``     — every task returns a finite, flagged
  :class:`DegradedResult` with a human-readable reason;
* ``BEST_EFFORT`` — every task returns, never raises, and never emits
  NaN/inf (or negative mass where mass is meant).

``policy=None`` keeps the historical plain-value behavior.
"""

from __future__ import annotations

import math

import pytest

from repro.common.errors import DecodeError
from repro.core.config import DaVinciConfig
from repro.core.davinci import DaVinciSketch
from repro.core.degrade import (
    DegradationPolicy,
    DegradedResult,
    execute,
    finite_or,
)
from repro.core.tasks.heavy import heavy_changers
from repro.core.windowed import WindowedDaVinci
from repro.testing import forced_peel_stall

ALL_POLICIES = list(DegradationPolicy)


@pytest.fixture
def populated(small_config) -> DaVinciSketch:
    """A sketch whose IFP holds decodable keys — and stays light enough
    that unions/differences with :func:`companion` also peel cleanly."""
    sketch = DaVinciSketch(small_config)
    for key in range(1, 100):
        sketch.insert(key, 25)
    assert sketch.decode_result().complete
    assert len(sketch.decode_counts()) > 10
    return sketch


@pytest.fixture
def companion(small_config) -> DaVinciSketch:
    """A second, clean sketch for binary tasks (overlapping key range)."""
    sketch = DaVinciSketch(small_config)
    for key in range(50, 150):
        sketch.insert(key, 15)
    assert sketch.decode_result().complete
    return sketch


# Tasks driven by the decode state of their *input* sketches.  Each entry
# is (name, runner(stalled_sketch, companion, policy)).
INPUT_TASKS = [
    ("query", lambda a, b, p: a.query(5, policy=p)),
    ("heavy_hitters", lambda a, b, p: a.heavy_hitters(20, policy=p)),
    ("cardinality", lambda a, b, p: a.cardinality(policy=p)),
    ("distribution", lambda a, b, p: a.distribution(policy=p)),
    ("entropy", lambda a, b, p: a.entropy(policy=p)),
    ("inner_join", lambda a, b, p: a.inner_join(b, policy=p)),
    ("heavy_changers", lambda a, b, p: heavy_changers(a, b, 20, policy=p)),
]


def _assert_finite(name, value):
    if isinstance(value, float):
        assert math.isfinite(value), f"{name} produced a non-finite float"
    elif isinstance(value, dict):
        for key, entry in value.items():
            assert isinstance(key, int)
            if isinstance(entry, float):
                assert math.isfinite(entry), f"{name}[{key}] is non-finite"
    elif isinstance(value, DaVinciSketch):
        pass  # sketches are checked by their own invariants
    else:
        assert isinstance(value, int)


class TestInputTaskMatrix:
    @pytest.mark.parametrize("name,runner", INPUT_TASKS)
    def test_clean_sketch_is_not_degraded(
        self, populated, companion, name, runner
    ):
        for policy in ALL_POLICIES:
            result = runner(populated, companion, policy)
            assert isinstance(result, DegradedResult)
            assert result.degraded is False
            assert result.reason is None
            _assert_finite(name, result.value)

    @pytest.mark.parametrize("name,runner", INPUT_TASKS)
    def test_strict_raises_on_stall(self, populated, companion, name, runner):
        with forced_peel_stall(populated, keep_partial=3):
            with pytest.raises(DecodeError) as excinfo:
                runner(populated, companion, DegradationPolicy.STRICT)
            assert "STRICT" in str(excinfo.value)
            assert isinstance(excinfo.value.partial, dict)

    @pytest.mark.parametrize("name,runner", INPUT_TASKS)
    @pytest.mark.parametrize(
        "policy", [DegradationPolicy.DEGRADE, DegradationPolicy.BEST_EFFORT]
    )
    @pytest.mark.parametrize("keep_partial", [0, 3])
    def test_lenient_policies_flag_and_stay_finite(
        self, populated, companion, name, runner, policy, keep_partial
    ):
        """Satellite (c): empty-partial and partial-only stalls both yield
        finite, non-negative, explicitly-flagged answers."""
        with forced_peel_stall(populated, keep_partial=keep_partial):
            result = runner(populated, companion, policy)
        assert isinstance(result, DegradedResult)
        assert result.degraded is True
        assert result.reason and "residual" in result.reason
        _assert_finite(name, result.value)
        if name == "cardinality":
            assert result.value >= 0.0
        if name == "entropy":
            assert result.value >= 0.0
        if name == "inner_join":
            assert result.value >= 0.0
        if name == "distribution":
            assert all(mass >= 0.0 for mass in result.value.values())
            assert all(size >= 1 for size in result.value)

    @pytest.mark.parametrize("name,runner", INPUT_TASKS)
    def test_policy_none_preserves_plain_returns(
        self, populated, companion, name, runner
    ):
        plain = runner(populated, companion, None)
        assert not isinstance(plain, DegradedResult)
        wrapped = runner(populated, companion, DegradationPolicy.DEGRADE)
        assert wrapped.unwrap() == plain


def _overloaded_pair():
    """Two compatible sketches whose union/difference genuinely stall."""
    config = DaVinciConfig(
        fp_buckets=2,
        fp_entries=2,
        ef_level_widths=(16, 8),
        ef_level_bits=(4, 8),
        ifp_rows=2,
        ifp_width=2,
        lambda_evict=8.0,
        filter_threshold=4,
        seed=9,
    )
    a = DaVinciSketch(config)
    key = 1
    while a.decode_result().complete:
        a.insert(key, 9)
        key += 1
        assert key < 500, "could not overload the tiny IFP"
    b = DaVinciSketch(config)
    for other in range(300, 340):
        b.insert(other, 9)
    return a, b


class TestSetOperationPolicies:
    """Union/difference probe the *result* sketch's decodability."""

    @pytest.mark.parametrize("op", ["union", "difference"])
    def test_strict_raises_when_result_stalls(self, op):
        a, b = _overloaded_pair()
        merged = getattr(a, op)(b)
        assert not merged.decode_result().complete  # precondition
        with pytest.raises(DecodeError):
            getattr(a, op)(b, policy=DegradationPolicy.STRICT)

    @pytest.mark.parametrize("op", ["union", "difference"])
    @pytest.mark.parametrize(
        "policy", [DegradationPolicy.DEGRADE, DegradationPolicy.BEST_EFFORT]
    )
    def test_lenient_policies_flag_the_result(self, op, policy):
        a, b = _overloaded_pair()
        result = getattr(a, op)(b, policy=policy)
        assert isinstance(result, DegradedResult)
        assert result.degraded is True
        assert result.reason and "residual" in result.reason
        assert isinstance(result.value, DaVinciSketch)
        # the degraded result still answers point queries
        assert isinstance(result.value.query(1), int)

    @pytest.mark.parametrize("op", ["union", "difference"])
    def test_clean_inputs_are_not_degraded(
        self, populated, companion, op
    ):
        result = getattr(populated, op)(
            companion, policy=DegradationPolicy.STRICT
        )
        assert result.degraded is False
        plain = getattr(populated, op)(companion)
        assert result.value.to_state() == plain.to_state()


class TestWindowedPolicies:
    def test_too_few_windows_is_clean_empty(self, small_config):
        windowed = WindowedDaVinci(small_config, window_size=100)
        result = windowed.heavy_changers(
            10, policy=DegradationPolicy.STRICT
        )
        assert result == DegradedResult({}, degraded=False, reason=None)
        assert windowed.heavy_changers(10) == {}

    def test_stalled_window_degrades(self, small_config):
        windowed = WindowedDaVinci(small_config, window_size=1000)
        for key in range(1, 60):
            windowed.insert(key, 25)  # closes window 1 + spills
        windowed.rotate()
        for key in range(30, 90):
            windowed.insert(key, 25)
        windowed.rotate()
        assert windowed.previous() is not None
        newest = windowed.latest()
        with forced_peel_stall(newest):
            with pytest.raises(DecodeError):
                windowed.heavy_changers(10, policy=DegradationPolicy.STRICT)
            result = windowed.heavy_changers(
                10, policy=DegradationPolicy.DEGRADE
            )
        assert result.degraded is True
        assert result.reason


class TestExecutePrimitive:
    def test_best_effort_converts_decode_error_to_fallback(self, populated):
        def explode():
            raise DecodeError("peel stalled", partial={1: 2})

        result = execute(
            (populated,),
            explode,
            DegradationPolicy.BEST_EFFORT,
            fallback=lambda: 42,
        )
        assert result.value == 42
        assert result.degraded is True
        assert "decode error" in result.reason

    def test_degrade_reraises_compute_decode_errors(self, populated):
        def explode():
            raise DecodeError("peel stalled")

        with pytest.raises(DecodeError):
            execute(
                (populated,),
                explode,
                DegradationPolicy.DEGRADE,
                fallback=lambda: 0,
            )

    def test_best_effort_sanitizes_non_finite_values(self, populated):
        result = execute(
            (populated,),
            lambda: float("nan"),
            DegradationPolicy.BEST_EFFORT,
            fallback=lambda: 0.0,
            sanitize=finite_or(0.0),
        )
        assert result.value == 0.0
        assert result.degraded is True
        assert "non-finite" in result.reason

    def test_degrade_does_not_sanitize(self, populated):
        result = execute(
            (populated,),
            lambda: float("inf"),
            DegradationPolicy.DEGRADE,
            fallback=lambda: 0.0,
            sanitize=finite_or(0.0),
        )
        assert math.isinf(result.value)
        assert result.degraded is False

    def test_unwrap_returns_raw_value(self):
        assert DegradedResult(value={"a": 1}).unwrap() == {"a": 1}

    def test_result_is_frozen(self):
        result = DegradedResult(value=1.0)
        with pytest.raises(AttributeError):
            result.degraded = True
