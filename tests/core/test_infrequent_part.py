"""Unit tests for the infrequent part (counting Fermat sketch)."""

import pytest

from repro.common.errors import IncompatibleSketchError
from repro.common.primes import SMALL_PRIME
from repro.core.infrequent_part import InfrequentPart


@pytest.fixture
def ifp() -> InfrequentPart:
    return InfrequentPart(rows=3, width=64, seed=5)


class TestInsertAndDecode:
    def test_single_element_roundtrip(self, ifp):
        ifp.insert(12345, 7)
        result = ifp.decode()
        assert result.counts == {12345: 7}
        assert result.complete

    def test_many_elements_roundtrip_under_low_load(self, ifp):
        truth = {key: key % 5 + 1 for key in range(1000, 1040)}
        for key, count in truth.items():
            ifp.insert(key, count)
        result = ifp.decode()
        assert result.complete
        assert result.counts == truth

    def test_repeated_inserts_accumulate(self, ifp):
        ifp.insert(99, 3)
        ifp.insert(99, 4)
        assert ifp.decode().counts == {99: 7}

    def test_decode_is_non_destructive(self, ifp):
        ifp.insert(7, 2)
        first = ifp.decode().counts
        second = ifp.decode().counts
        assert first == second == {7: 2}
        assert ifp.nonzero_buckets() > 0

    def test_overloaded_structure_reports_incomplete(self):
        tiny = InfrequentPart(rows=3, width=8, seed=5)
        for key in range(2000, 2100):
            tiny.insert(key, 1)
        result = tiny.decode()
        assert not result.complete
        assert result.residual_buckets > 0

    def test_decode_empty(self, ifp):
        result = ifp.decode()
        assert result.counts == {}
        assert result.complete
        assert result.residual_buckets == 0

    def test_out_of_domain_keys_rejected(self, ifp):
        # Keys outside [1, max_key) would be undecodable; the structure
        # refuses them eagerly (DaVinciSketch fingerprints such keys first).
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ifp.insert(0, 3)
        with pytest.raises(ConfigurationError):
            ifp.insert(ifp.max_key, 3)


class TestValidator:
    def test_validator_can_reject_everything(self, ifp):
        ifp.insert(42, 5)
        result = ifp.decode(validator=lambda key: False)
        assert result.counts == {}
        assert not result.complete

    def test_validator_passes_known_keys(self, ifp):
        ifp.insert(42, 5)
        result = ifp.decode(validator=lambda key: key == 42)
        assert result.counts == {42: 5}


class TestFastQuery:
    def test_isolated_key_exact(self, ifp):
        ifp.insert(77, 9)
        assert ifp.fast_query(77) == 9

    def test_absent_key_near_zero(self, ifp):
        ifp.insert(77, 9)
        # an absent key reads 0 from at least two of three rows w.h.p.
        assert abs(ifp.fast_query(123456)) <= 9

    def test_median_is_robust_to_one_collision(self):
        ifp = InfrequentPart(rows=3, width=128, seed=11)
        for key in range(500, 520):
            ifp.insert(key, 2)
        for key in range(500, 520):
            assert abs(ifp.fast_query(key) - 2) <= 2


class TestSigns:
    def test_negative_counts_decode(self, ifp):
        ifp.insert(31, -4)
        assert ifp.decode().counts == {31: -4}

    def test_cancellation_removes_key(self, ifp):
        ifp.insert(31, 4)
        ifp.insert(31, -4)
        result = ifp.decode()
        assert result.counts == {}
        assert result.complete


class TestLinearity:
    def test_merged_is_multiset_sum(self, ifp):
        other = ifp.empty_like()
        ifp.insert(1, 2)
        other.insert(1, 3)
        other.insert(2, 5)
        merged = ifp.merged(other)
        assert merged.decode().counts == {1: 5, 2: 5}

    def test_subtracted_gives_signed_difference(self, ifp):
        other = ifp.empty_like()
        ifp.insert(1, 2)
        ifp.insert(3, 9)
        other.insert(1, 6)
        other.insert(3, 9)  # cancels entirely
        delta = ifp.subtracted(other)
        assert delta.decode().counts == {1: -4}

    def test_merge_rejects_different_seeds(self, ifp):
        other = InfrequentPart(rows=3, width=64, seed=6)
        with pytest.raises(IncompatibleSketchError):
            ifp.merged(other)

    def test_merge_rejects_different_prime(self, ifp):
        other = InfrequentPart(
            rows=3, width=64, prime=SMALL_PRIME, seed=5, max_key=1 << 30
        )
        with pytest.raises(IncompatibleSketchError):
            ifp.subtracted(other)

    def test_max_key_must_fit_field(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            InfrequentPart(rows=3, width=64, prime=SMALL_PRIME, seed=5)

    def test_merge_preserves_inputs(self, ifp):
        other = ifp.empty_like()
        ifp.insert(1, 2)
        other.insert(2, 3)
        ifp.merged(other)
        assert ifp.decode().counts == {1: 2}
        assert other.decode().counts == {2: 3}


class TestIntrospection:
    def test_nonzero_buckets_counts(self, ifp):
        assert ifp.nonzero_buckets() == 0
        ifp.insert(9, 1)
        assert ifp.nonzero_buckets() == 3  # one bucket per row

    def test_row_zero_fraction(self, ifp):
        assert ifp.row_zero_fraction(0) == 1.0
        ifp.insert(9, 1)
        assert ifp.row_zero_fraction(0) == pytest.approx(63 / 64)

    def test_memory_bytes(self, ifp):
        assert ifp.memory_bytes() == 3 * 64 * 8.0

    def test_small_prime_field_works(self):
        small = InfrequentPart(
            rows=3, width=32, prime=SMALL_PRIME, seed=2, max_key=1 << 30
        )
        truth = {key: 3 for key in range(10, 20)}
        for key, count in truth.items():
            small.insert(key, count)
        assert small.decode().counts == truth
