"""The batched ingestion fast path (``DaVinciSketch.insert_batch``).

The contract under test is *sequential equivalence*: for every chunk, the
batch path must leave the sketch in a state byte-identical (``to_state``)
to the sequential ``insert`` loop over that chunk's first-seen-order
aggregated ``(key, count)`` pairs — eviction decisions, element-filter
absorption and infrequent-part encodes included.
"""

from collections import Counter, OrderedDict

import pytest

from repro.common import invariants as inv
from repro.common.errors import ConfigurationError, SketchModeError
from repro.core import DaVinciSketch
from repro.core.serialization import to_state
from tests.conftest import make_zipf_stream


def sequential_reference(config, pairs, chunk_size):
    """The ground-truth loop: aggregate each chunk, insert sequentially."""
    sketch = DaVinciSketch(config)
    pairs = list(pairs)
    for start in range(0, len(pairs), chunk_size):
        aggregated = OrderedDict()
        for key, count in pairs[start : start + chunk_size]:
            aggregated[key] = aggregated.get(key, 0) + count
        for key, count in aggregated.items():
            sketch.insert(key, count)
    return sketch


class TestSequentialEquivalence:
    def test_unit_stream_matches_per_item_loop(self, small_config, zipf_stream):
        batched = DaVinciSketch(small_config)
        batched.insert_all(zipf_stream, chunk_size=512)
        reference = sequential_reference(
            small_config, [(key, 1) for key in zipf_stream], 512
        )
        assert to_state(batched) == to_state(reference)

    def test_weighted_pairs_match(self, small_config):
        stream = make_zipf_stream(num_keys=120, num_items=1500, seed=9)
        pairs = [(key, (key % 7) + 1) for key in stream]
        batched = DaVinciSketch(small_config)
        batched.insert_batch(pairs, chunk_size=256)
        reference = sequential_reference(small_config, pairs, 256)
        assert to_state(batched) == to_state(reference)

    @pytest.mark.parametrize("chunk_size", [1, 7, 100, 10_000])
    def test_every_chunking_is_equivalent(self, small_config, chunk_size):
        stream = make_zipf_stream(num_keys=80, num_items=800, seed=5)
        pairs = [(key, 1) for key in stream]
        batched = DaVinciSketch(small_config)
        batched.insert_batch(pairs, chunk_size=chunk_size)
        reference = sequential_reference(small_config, pairs, chunk_size)
        assert to_state(batched) == to_state(reference)

    def test_chunk_size_one_is_the_per_item_loop(self, small_config, zipf_stream):
        # with chunk_size=1 no aggregation can happen, so the batch path
        # must equal the plain sequential insert loop exactly
        batched = DaVinciSketch(small_config)
        batched.insert_all(zipf_stream[:600], chunk_size=1)
        reference = DaVinciSketch(small_config)
        for key in zipf_stream[:600]:
            reference.insert(key)
        assert to_state(batched) == to_state(reference)

    def test_string_and_bytes_keys(self, small_config):
        pairs = []
        for index in range(400):
            pairs.append((f"flow-{index % 37}", 1))
            pairs.append((b"blob-%d" % (index % 11), 2))
        batched = DaVinciSketch(small_config)
        batched.insert_batch(pairs, chunk_size=64)
        reference = sequential_reference(small_config, pairs, 64)
        assert to_state(batched) == to_state(reference)

    def test_queries_agree_with_truth_shape(self, small_config, zipf_stream):
        truth = Counter(zipf_stream)
        batched = DaVinciSketch(small_config)
        batched.insert_all(zipf_stream)
        assert batched.total_count == len(zipf_stream)
        heavy = truth.most_common(3)
        for key, count in heavy:
            assert batched.query(key) == pytest.approx(count, rel=0.25)


class TestAccounting:
    def test_insertions_count_offered_pairs(self, small_config, zipf_stream):
        batched = DaVinciSketch(small_config)
        batched.insert_all(zipf_stream)
        assert batched.insertions == len(zipf_stream)
        assert batched.total_count == len(zipf_stream)

    def test_batched_path_does_fewer_accesses(self, small_config, zipf_stream):
        per_item = DaVinciSketch(small_config)
        for key in zipf_stream:
            per_item.insert(key)
        batched = DaVinciSketch(small_config)
        batched.insert_all(zipf_stream)
        assert batched.memory_accesses < per_item.memory_accesses

    def test_decode_cache_invalidated(self, small_config):
        sketch = DaVinciSketch(small_config)
        sketch.insert_batch([(key, 1) for key in range(1, 40)])
        first = sketch.decode_counts()
        sketch.insert_batch([(key, 25) for key in range(100, 140)])
        second = sketch.decode_counts()
        assert first is not second


class TestValidation:
    def test_rejects_nonpositive_chunk_size(self, small_config):
        sketch = DaVinciSketch(small_config)
        with pytest.raises(ConfigurationError):
            sketch.insert_batch([(1, 1)], chunk_size=0)

    def test_rejects_bool_keys_like_insert(self, small_config):
        sketch = DaVinciSketch(small_config)
        with pytest.raises(ConfigurationError):
            sketch.insert_batch([(True, 1)])

    def test_mode_guard_without_sanitizer(self, small_config):
        # the guard is a correctness gate, not a debug check: it must fire
        # with the invariant sanitizer forced off (the production default)
        previous = inv.set_enabled(False)
        try:
            left = DaVinciSketch(small_config)
            right = DaVinciSketch(small_config)
            left.insert(1)
            right.insert(2)
            merged = left.union(right)
            signed = left.difference(right)
            for sealed in (merged, signed):
                with pytest.raises(SketchModeError):
                    sealed.insert(3)
                with pytest.raises(SketchModeError):
                    sealed.insert_batch([(3, 1)])
                with pytest.raises(SketchModeError):
                    sealed.insert_all([3])
        finally:
            inv.set_enabled(previous)

    def test_mode_error_is_catchable_as_repro_error(self, small_config):
        from repro.common.errors import ReproError

        left, right = DaVinciSketch(small_config), DaVinciSketch(small_config)
        left.insert(1)
        right.insert(2)
        with pytest.raises(ReproError):
            left.union(right).insert(3)
