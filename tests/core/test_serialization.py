"""Unit tests for DaVinci sketch serialization."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.core import DaVinciSketch
from repro.core.serialization import (
    STATE_VERSION,
    from_state,
    sign_state,
    to_state,
)


class TestRoundtrip:
    def test_empty_sketch(self, small_config):
        sketch = DaVinciSketch(small_config)
        twin = from_state(to_state(sketch))
        assert twin.config == small_config
        assert twin.total_count == 0
        assert twin.mode == "standard"

    def test_loaded_sketch_queries_identically(self, loaded_sketch, zipf_truth):
        twin = DaVinciSketch.from_state(loaded_sketch.to_state())
        for key in list(zipf_truth)[:100]:
            assert twin.query(key) == loaded_sketch.query(key)

    def test_json_wire_format(self, loaded_sketch):
        wire = json.dumps(loaded_sketch.to_state())
        twin = from_state(json.loads(wire))
        assert twin.total_count == loaded_sketch.total_count

    def test_all_tasks_survive_roundtrip(self, loaded_sketch):
        twin = from_state(to_state(loaded_sketch))
        assert twin.cardinality() == loaded_sketch.cardinality()
        assert twin.entropy() == pytest.approx(loaded_sketch.entropy())
        assert twin.heavy_hitters(50) == loaded_sketch.heavy_hitters(50)

    def test_deserialized_sketch_is_merge_compatible(
        self, small_config, loaded_sketch
    ):
        other = DaVinciSketch(small_config)
        other.insert_all([1, 2, 3])
        twin = from_state(to_state(loaded_sketch))
        merged = twin.union(other)
        assert merged.total_count == loaded_sketch.total_count + 3

    def test_signed_mode_roundtrip(self, small_config):
        a, b = DaVinciSketch(small_config), DaVinciSketch(small_config)
        a.insert_all([1] * 5)
        b.insert_all([1] * 2 + [2] * 3)
        delta = a.difference(b)
        twin = from_state(to_state(delta))
        assert twin.mode == "signed"
        assert twin.query(1) == 3
        assert twin.query(2) == -3

    def test_deserialized_can_keep_inserting(self, loaded_sketch):
        twin = from_state(to_state(loaded_sketch))
        before = twin.query(1)
        twin.insert(1)
        assert twin.query(1) == before + 1

    def test_additive_mode_roundtrip(self, small_config):
        a, b = DaVinciSketch(small_config), DaVinciSketch(small_config)
        a.insert_all([1] * 20 + [3] * 4)
        b.insert_all([2] * 15 + [3] * 6)
        merged = a.union(b)
        twin = from_state(to_state(merged))
        assert twin.mode == "additive"
        assert twin.total_count == merged.total_count
        for key in (1, 2, 3):
            assert twin.query(key) == merged.query(key)
        # the union of unions still works after the round-trip
        assert twin.union(a).query(1) == merged.union(a).query(1)

    def test_signed_roundtrip_preserves_negative_ef_counters(
        self, small_config
    ):
        # drive enough mass through b that the EF difference goes negative
        a, b = DaVinciSketch(small_config), DaVinciSketch(small_config)
        a.insert_all(list(range(1, 40)))
        b.insert_batch([(key, 5) for key in range(1, 40)])
        delta = a.difference(b)
        assert any(
            value < 0 for level in delta.ef.levels for value in level
        ), "fixture failed to produce negative filter counters"
        twin = from_state(to_state(delta))
        assert twin.ef.levels == delta.ef.levels
        assert twin.mode == "signed"
        assert twin.total_count == delta.total_count < 0
        for key in (1, 5, 17):
            assert twin.query(key) == delta.query(key)

    def test_batch_built_sketch_roundtrips(self, small_config, zipf_stream):
        sketch = DaVinciSketch(small_config)
        sketch.insert_all(zipf_stream, chunk_size=512)
        twin = from_state(to_state(sketch))
        assert to_state(twin) == to_state(sketch)


class TestValidation:
    def test_rejects_non_state(self):
        with pytest.raises(ConfigurationError):
            from_state({"not": "a sketch"})
        with pytest.raises(ConfigurationError):
            from_state("garbage")

    def test_rejects_wrong_version(self, sketch):
        state = to_state(sketch)
        state["version"] = STATE_VERSION + 1
        with pytest.raises(ConfigurationError, match="version"):
            from_state(sign_state(state))

    def test_rejects_mismatched_fp(self, sketch):
        state = to_state(sketch)
        state["frequent_part"] = state["frequent_part"][:-1]
        with pytest.raises(ConfigurationError):
            from_state(sign_state(state))

    def test_rejects_mismatched_ef(self, sketch):
        state = to_state(sketch)
        state["element_filter"][0] = state["element_filter"][0][:-1]
        with pytest.raises(ConfigurationError):
            from_state(sign_state(state))

    def test_rejects_mismatched_ifp(self, sketch):
        state = to_state(sketch)
        state["infrequent_part"]["ids"][0].append(0)
        with pytest.raises(ConfigurationError):
            from_state(sign_state(state))

    def test_rejects_overfull_bucket(self, sketch):
        state = to_state(sketch)
        state["frequent_part"][0]["entries"] = [
            [k, 1, False] for k in range(1, 100)
        ]
        with pytest.raises(ConfigurationError):
            from_state(sign_state(state))

    def test_rejects_malformed_entries(self, sketch):
        state = to_state(sketch)
        state["frequent_part"][0]["entries"] = [[1, 2]]  # missing flag
        with pytest.raises(ConfigurationError):
            from_state(sign_state(state))

    @pytest.mark.parametrize(
        "mode", ["", "merged", "ADDITIVE", "standard ", None, 3]
    )
    def test_rejects_unknown_modes(self, sketch, mode):
        # an unvalidated mode would silently fall through query dispatch
        # to the standard path — reject it at the wire boundary instead
        state = to_state(sketch)
        state["mode"] = mode
        with pytest.raises(ConfigurationError, match="mode"):
            from_state(sign_state(state))

    def test_missing_mode_is_rejected(self, sketch):
        state = to_state(sketch)
        del state["mode"]
        with pytest.raises(ConfigurationError, match="mode"):
            from_state(sign_state(state))

    @pytest.mark.parametrize("total", ["12", 3.0, None, True])
    def test_rejects_non_integer_total_count(self, sketch, total):
        state = to_state(sketch)
        state["total_count"] = total
        with pytest.raises(ConfigurationError, match="total_count"):
            from_state(sign_state(state))

    @pytest.mark.parametrize("mode", ["standard", "additive"])
    def test_rejects_negative_total_count_outside_signed_mode(
        self, sketch, mode
    ):
        state = to_state(sketch)
        state["mode"] = mode
        state["total_count"] = -5
        with pytest.raises(ConfigurationError, match="negative"):
            from_state(sign_state(state))

    def test_accepts_negative_total_count_in_signed_mode(self, small_config):
        a, b = DaVinciSketch(small_config), DaVinciSketch(small_config)
        a.insert_all([1] * 2)
        b.insert_all([1] * 9)
        delta = a.difference(b)
        assert delta.total_count == -7
        twin = from_state(to_state(delta))
        assert twin.total_count == -7


class TestTopK:
    def test_top_k_orders_by_magnitude(self, sketch):
        sketch.insert_all([1] * 30 + [2] * 20 + [3] * 10 + [4])
        top = sketch.top_k(2)
        assert [key for key, _ in top] == [1, 2]
        assert top[0][1] == 30

    def test_top_k_validates(self, sketch):
        with pytest.raises(ValueError):
            sketch.top_k(0)

    def test_top_k_truncates_to_population(self, sketch):
        sketch.insert_all([7, 8])
        assert len(sketch.top_k(10)) == 2
