"""Unit tests for the distribution estimator and its EM core."""

import random

import pytest

from repro.core.tasks.distribution import CounterArrayEM, distribution
from repro.metrics import weighted_mean_relative_error


class TestCounterArrayEM:
    def test_empty_input(self):
        assert CounterArrayEM().estimate([]) == {}

    def test_all_zero(self):
        assert CounterArrayEM().estimate([0] * 64) == {}

    def test_collision_free_is_identity(self):
        counters = [0] * 100
        counters[3] = 5
        counters[10] = 5
        counters[42] = 2
        result = CounterArrayEM().estimate(counters)
        assert result[5] == pytest.approx(2, abs=0.3)
        assert result[2] == pytest.approx(1, abs=0.3)

    def test_max_value_excludes_saturated(self):
        counters = [0] * 50 + [15] * 10
        result = CounterArrayEM(max_value=14).estimate(counters)
        assert result == {}

    def test_total_flows_accounts_for_collisions(self):
        """At load ~0.7, EM should find more flows than non-zero counters."""
        rng = random.Random(7)
        width = 512
        counters = [0] * width
        flows = 360
        for _ in range(flows):
            counters[rng.randrange(width)] += 1  # all size-1 flows
        result = CounterArrayEM().estimate(counters)
        total = sum(result.values())
        nonzero = sum(1 for value in counters if value)
        assert total > nonzero  # EM recovered hidden collided flows
        assert total == pytest.approx(flows, rel=0.15)

    def test_pair_splitting_discovers_components(self):
        """Counters of value 2 at high load are mostly 1+1 pairs."""
        rng = random.Random(11)
        width = 128
        counters = [0] * width
        for _ in range(110):
            counters[rng.randrange(width)] += 1
        result = CounterArrayEM().estimate(counters)
        # True distribution is all size-1; EM should put most mass there.
        assert result.get(1, 0) > 0.7 * sum(result.values())

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            CounterArrayEM(iterations=0)

    def test_deterministic(self):
        counters = [0, 3, 1, 0, 2, 1, 0, 0, 4, 1]
        a = CounterArrayEM().estimate(counters)
        b = CounterArrayEM().estimate(counters)
        assert a == b


class TestSketchDistribution:
    def test_uniform_small_stream(self, sketch):
        stream = [key for key in range(50) for _ in range(3)]
        sketch.insert_all(stream)
        histogram = sketch.distribution()
        # all 50 flows have size 3
        assert histogram.get(3, 0) == pytest.approx(50, rel=0.25)

    def test_mixed_sizes(self, sketch):
        stream = [1] * 40 + [2] * 40 + list(range(100, 120))
        sketch.insert_all(stream)
        histogram = sketch.distribution()
        assert histogram.get(40, 0) == pytest.approx(2, abs=1)
        assert histogram.get(1, 0) == pytest.approx(20, rel=0.4)

    def test_wmre_under_pressure(self, loaded_sketch, zipf_truth):
        true_hist = {}
        for value in zipf_truth.values():
            true_hist[value] = true_hist.get(value, 0) + 1
        wmre = weighted_mean_relative_error(
            true_hist, loaded_sketch.distribution()
        )
        assert wmre < 0.8  # starved config sanity bound

    def test_em_level_selection(self, loaded_sketch):
        level0 = loaded_sketch.distribution(em_level=0)
        top = loaded_sketch.distribution(em_level=-1)
        assert level0 and top
        # both estimates should carry roughly the total flow count
        total_true = len(set(loaded_sketch.fp.as_dict())) + 1
        assert sum(level0.values()) > total_true
        assert sum(top.values()) > total_true

    def test_empty_sketch(self, sketch):
        assert sketch.distribution() == {}
