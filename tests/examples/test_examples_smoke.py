"""Every file in examples/ runs end to end (tiny workload).

The examples double as executable documentation; this smoke suite keeps
them honest.  Each module exposes ``main(scale=1.0)`` — the tests run it
with a small ``scale`` so the whole directory executes in seconds while
still touching every code path (sharded ingestion, wire round-trips,
window rotation, CSV/JSON export).

New example files are picked up automatically: the parametrization
globs ``examples/*.py``, so forgetting to add a test here is impossible
(a new example without a ``main`` fails loudly).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))

#: per-example workload scale: small enough to be quick, large enough
#: that each example's derived quantities (windows, thresholds, joins)
#: stay non-degenerate
SCALES = {
    "distributed_aggregation": 0.05,
    "join_estimation": 0.25,
    "network_monitoring": 0.25,
    "quickstart": 0.05,
    "streaming_dashboard": 0.25,
}


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


def test_every_example_is_covered():
    assert EXAMPLE_FILES, "examples/ directory is missing or empty"
    assert {p.stem for p in EXAMPLE_FILES} == set(SCALES), (
        "examples/ and the SCALES map disagree; add the new example's "
        "scale (or prune a removed one)"
    )


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    module = _load(path)
    assert hasattr(module, "main"), f"{path.name} must define main()"
    module.main(scale=SCALES.get(path.stem, 0.1))
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} printed nothing"
