#!/usr/bin/env python3
"""Quickstart: one DaVinci Sketch, nine set measurements.

Builds a 64 KB sketch, feeds it a skewed synthetic stream, and runs every
measurement task the paper describes — frequency, heavy hitters,
cardinality, distribution, entropy — plus the two-sketch operations
(union, difference, heavy changers, inner join), comparing each estimate
against exact ground truth.

Run:  python examples/quickstart.py
"""

from collections import Counter

from repro import DaVinciConfig, DaVinciSketch
from repro.workloads import zipf_trace


def main(scale: float = 1.0) -> None:
    # --- build a sketch from a memory budget --------------------------- #
    config = DaVinciConfig.from_memory_kb(64, seed=42)
    sketch = DaVinciSketch(config)
    print(f"sketch: {sketch.memory_bytes() / 1024:.1f} KB "
          f"(FP {config.fp_bytes() / 1024:.1f} / EF {config.ef_bytes() / 1024:.1f} "
          f"/ IFP {config.ifp_bytes() / 1024:.1f})")

    # --- feed a skewed multiset ----------------------------------------- #
    # insert_all routes through the batched ingestion fast path
    # (insert_batch): each chunk is aggregated to {key: count} before
    # touching the structure, producing a sketch state identical to the
    # per-item loop while doing far fewer memory accesses.  Weighted
    # streams can call sketch.insert_batch([(key, count), ...]) directly.
    stream = zipf_trace(num_packets=int(200_000 * scale),
                        num_flows=max(100, int(20_000 * scale)),
                        skew=1.05, seed=7)
    truth = Counter(stream)
    sketch.insert_all(stream)
    print(f"inserted {len(stream):,} items over {len(truth):,} distinct keys")

    # --- task 1: element frequency -------------------------------------- #
    heaviest = truth.most_common(3)
    for key, count in heaviest:
        print(f"frequency  key={key}: true={count}, estimated={sketch.query(key)}")

    # --- task 2: heavy hitters ------------------------------------------ #
    threshold = 200
    reported = sketch.heavy_hitters(threshold)
    correct = {key for key, count in truth.items() if count >= threshold}
    print(f"heavy hitters (>= {threshold}): reported {len(reported)}, "
          f"true {len(correct)}, overlap {len(set(reported) & correct)}")

    # --- tasks 3-5: cardinality, distribution, entropy ------------------ #
    print(f"cardinality  true={len(truth):,}, estimated={sketch.cardinality():,.0f}")
    histogram = sketch.distribution()
    print(f"distribution  size-1 flows: true={sum(1 for v in truth.values() if v == 1):,}, "
          f"estimated={histogram.get(1, 0):,.0f}")
    import math

    total = len(stream)
    true_entropy = -sum((v / total) * math.log(v / total) for v in truth.values())
    print(f"entropy  true={true_entropy:.4f}, estimated={sketch.entropy():.4f}")

    # --- tasks 6-9: two-sketch operations ------------------------------- #
    half = len(stream) // 2
    window_a, window_b = DaVinciSketch(config), DaVinciSketch(config)
    window_a.insert_all(stream[:half])
    window_b.insert_all(stream[half:])

    union = window_a.union(window_b)
    key = heaviest[0][0]
    print(f"union  query({key}) = {union.query(key)} (true {truth[key]})")

    delta = window_a.difference(window_b)
    true_delta = Counter(stream[:half])
    true_delta.subtract(Counter(stream[half:]))
    print(f"difference  query({key}) = {delta.query(key)} (true {true_delta[key]})")

    changers = window_a.heavy_hitters  # heavy changers live on the task API:
    from repro.core.tasks.heavy import heavy_changers

    changed = heavy_changers(window_a, window_b, threshold=100)
    print(f"heavy changers (|Δ| >= 100): {len(changed)} keys")

    join = window_a.inner_join(window_b)
    freq_a, freq_b = Counter(stream[:half]), Counter(stream[half:])
    true_join = sum(count * freq_b[key] for key, count in freq_a.items())
    print(f"inner join  true={true_join:,}, estimated={join:,.0f} "
          f"(RE {abs(join - true_join) / true_join:.4f})")


if __name__ == "__main__":
    main()
