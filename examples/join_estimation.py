#!/usr/bin/env python3
"""Join-size estimation for query optimization (the TPC-DS-style use).

A query optimizer choosing between join orders needs the *cardinality of
the inner join* |R ⋈ S| = Σ_k f_R(k)·f_S(k) without scanning either
table.  The paper's Section III-B2 decomposes the estimate across the
sketch's three parts (nine components); this example compares DaVinci
against exact ground truth and the classical Fast-AGMS baseline on two
skewed join columns sharing a small key domain — the TPC-DS regime of
Table II (1,834 distinct keys, millions of rows).

Run:  python examples/join_estimation.py
"""

from collections import Counter

from repro import DaVinciConfig, DaVinciSketch
from repro.sketches import FastAGMS, JoinSketch
from repro.workloads import correlated_pair


def exact_join(left, right) -> int:
    freq_left, freq_right = Counter(left), Counter(right)
    return sum(count * freq_right[key] for key, count in freq_left.items())


def main(scale: float = 1.0) -> None:
    # two fact-table join columns over the same (small) dimension keys
    fact_rows, dim_rows = correlated_pair("tpcds", scale=0.02 * scale, seed=11)
    true_join = exact_join(fact_rows, dim_rows)
    print(f"R: {len(fact_rows):,} rows, S: {len(dim_rows):,} rows, "
          f"|keys| = {len(set(fact_rows)):,}")
    print(f"exact |R ⋈ S| = {true_join:,}\n")

    print(f"{'memory':>8s} {'DaVinci RE':>12s} {'JoinSketch RE':>14s} "
          f"{'F-AGMS RE':>12s}")
    for memory_kb in (4, 8, 16, 32):
        config = DaVinciConfig.from_memory_kb(memory_kb, seed=2)
        davinci_r = DaVinciSketch(config)
        davinci_s = DaVinciSketch(config)
        davinci_r.insert_all(fact_rows)
        davinci_s.insert_all(dim_rows)
        davinci_estimate = davinci_r.inner_join(davinci_s)

        join_r = JoinSketch.from_memory(memory_kb * 1024, seed=3)
        join_s = JoinSketch.from_memory(memory_kb * 1024, seed=3)
        join_r.insert_all(fact_rows)
        join_s.insert_all(dim_rows)
        join_estimate = join_r.inner_product(join_s)

        agms_r = FastAGMS.from_memory(memory_kb * 1024, seed=4)
        agms_s = FastAGMS.from_memory(memory_kb * 1024, seed=4)
        agms_r.insert_all(fact_rows)
        agms_s.insert_all(dim_rows)
        agms_estimate = agms_r.inner_product(agms_s)

        def re(estimate: float) -> float:
            return abs(estimate - true_join) / true_join

        print(f"{memory_kb:>6d}KB {re(davinci_estimate):>12.5f} "
              f"{re(join_estimate):>14.5f} {re(agms_estimate):>12.5f}")

    print("\nNote: DaVinci matches the specialist JoinSketch while ALSO "
          "answering the other eight tasks from the same structure.")


if __name__ == "__main__":
    main()
