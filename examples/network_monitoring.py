#!/usr/bin/env python3
"""Network traffic monitoring with a single DaVinci Sketch per window.

The scenario the paper's introduction motivates: a monitor must
simultaneously (1) track per-flow sizes, (2) detect elephants,
(3) watch for sudden traffic shifts between windows (heavy changers —
e.g. a flow going dark or a new DDoS source ramping up), and
(4) flag entropy anomalies (port-scan-like dispersion).

Traditionally this needs three or four different sketches per window;
here one DaVinci Sketch per window answers everything.

Run:  python examples/network_monitoring.py
"""

import math
from collections import Counter

from repro import DaVinciConfig, DaVinciSketch
from repro.core.tasks.heavy import heavy_changers
from repro.workloads import caida_like


def build_window(config: DaVinciConfig, packets) -> DaVinciSketch:
    sketch = DaVinciSketch(config)
    sketch.insert_all(packets)
    return sketch


def inject_anomaly(packets, attacker: int = 0xBAD, volume: int = 3000):
    """Splice a sudden high-volume flow into a window (a DDoS source)."""
    spaced = list(packets)
    step = max(1, len(spaced) // volume)
    for index in range(0, len(spaced), step):
        spaced.insert(index, attacker)
    return spaced


def main(scale: float = 1.0) -> None:
    config = DaVinciConfig.from_memory_kb(48, seed=3)

    # two measurement windows from a CAIDA-like packet trace
    trace = caida_like(scale=0.04 * scale, seed=5)
    half = len(trace) // 2
    window1_packets = trace[:half]
    window2_packets = inject_anomaly(trace[half:])

    window1 = build_window(config, window1_packets)
    window2 = build_window(config, window2_packets)

    # --- per-window elephants ------------------------------------------- #
    threshold = max(1, int(0.001 * half))
    elephants1 = window1.heavy_hitters(threshold)
    elephants2 = window2.heavy_hitters(threshold)
    print(f"window 1: {window1.total_count:,} packets, "
          f"{window1.cardinality():,.0f} flows, {len(elephants1)} elephants")
    print(f"window 2: {window2.total_count:,} packets, "
          f"{window2.cardinality():,.0f} flows, {len(elephants2)} elephants")

    # --- heavy changers between windows ---------------------------------- #
    changes = heavy_changers(window2, window1, threshold)
    biggest = sorted(changes.items(), key=lambda kv: -abs(kv[1]))[:5]
    print("\ntop heavy changers (window2 − window1):")
    for key, delta in biggest:
        tag = "  <-- injected attacker" if key == 0xBAD else ""
        print(f"  flow {key:#012x}: Δ = {delta:+,d}{tag}")
    assert 0xBAD in changes, "the injected attacker must be detected"

    # --- entropy shift ---------------------------------------------------- #
    entropy1 = window1.entropy()
    entropy2 = window2.entropy()
    print(f"\nentropy: window1 = {entropy1:.4f}, window2 = {entropy2:.4f}")
    truth2 = Counter(window2_packets)
    total2 = len(window2_packets)
    true_entropy2 = -sum(
        (v / total2) * math.log(v / total2) for v in truth2.values()
    )
    print(f"window2 true entropy = {true_entropy2:.4f} "
          f"(estimate error {abs(entropy2 - true_entropy2):.4f})")
    # a single source grabbing a traffic share lowers the entropy
    print("anomaly verdict:",
          "ENTROPY DROP (concentration anomaly)" if entropy2 < entropy1 else "normal")

    # --- network-wide aggregation (union of vantage points) -------------- #
    merged = window1.union(window2)
    print(f"\nmerged view: {merged.total_count:,} packets; "
          f"attacker total = {merged.query(0xBAD):,} packets")


if __name__ == "__main__":
    main()
