#!/usr/bin/env python3
"""A streaming measurement dashboard with rotating windows.

Puts the operational pieces together: packets stream into a
:class:`~repro.core.windowed.WindowedDaVinci` that rotates every epoch;
after each rotation the "dashboard" reports the window's key statistics,
flags heavy changers against the previous window, and keeps a merged
long-horizon view.  Results are also exported to CSV for plotting and the
final sketch state is serialized to JSON — the full produce/ship/consume
cycle of a real deployment.

Run:  python examples/streaming_dashboard.py
"""

import json
import tempfile
from pathlib import Path

from repro import DaVinciConfig, DaVinciSketch
from repro.core.windowed import WindowedDaVinci
from repro.workloads import caida_like, write_trace


def main(scale: float = 1.0) -> None:
    config = DaVinciConfig.from_memory_kb(32, seed=21)
    epoch = max(500, int(12_000 * scale))  # packets per window
    ring = WindowedDaVinci(config, window_size=epoch, retain=4)

    trace = caida_like(scale=0.02 * scale, seed=13)
    print(f"streaming {len(trace):,} packets in epochs of {epoch:,}\n")
    print(f"{'epoch':>5s} {'packets':>9s} {'flows':>8s} {'entropy':>8s} "
          f"{'elephants':>9s} {'changers':>8s}")

    threshold = max(1, epoch // 1000)
    for index, key in enumerate(trace):
        ring.insert(key)
        if ring.windows_closed and (index + 1) % epoch == 0:
            window = ring.latest()
            changers = ring.heavy_changers(threshold)
            print(
                f"{ring.windows_closed:>5d} {window.total_count:>9,d} "
                f"{window.cardinality():>8,.0f} {window.entropy():>8.3f} "
                f"{len(window.heavy_hitters(threshold)):>9d} "
                f"{len(changers):>8d}"
            )

    # long-horizon view across the retained windows
    view = ring.merged_view()
    print(f"\nmerged view over the last {len(ring.closed)} closed windows "
          f"(+ live): {view.total_count:,} packets, "
          f"{view.cardinality():,.0f} flows")
    top = view.top_k(3)
    for key, estimate in top:
        print(f"  top flow {key}: ~{estimate:,} packets")

    # ship the newest window somewhere else: serialize → wire → restore
    workdir = Path(tempfile.mkdtemp(prefix="davinci-dashboard-"))
    state_path = workdir / "window.json"
    state_path.write_text(json.dumps(ring.latest().to_state()))
    restored = DaVinciSketch.from_state(json.loads(state_path.read_text()))
    key = top[0][0]
    print(f"\nserialized newest window to {state_path} "
          f"({state_path.stat().st_size / 1024:.0f} KB JSON)")
    print(f"restored sketch agrees: query({key}) = {restored.query(key)} "
          f"== {ring.latest().query(key)}")

    # export a replayable trace sample for offline analysis
    sample_path = workdir / "sample.trace"
    write_trace(sample_path, trace[:1000])
    print(f"wrote a replayable 1,000-packet sample to {sample_path}")


if __name__ == "__main__":
    main()
