#!/usr/bin/env python3
"""Distributed measurement: merge sketches from many vantage points.

The paper's union operation (Algorithm 3) exists precisely for this:
several measurement points each summarize their local traffic into a
DaVinci Sketch, ship the fixed-size sketch (not the traffic!) to a
collector, and the collector folds them into one network-wide view on
which every task still works.  The difference operation then localizes
*where* traffic was lost between two points on a path.

Run:  python examples/distributed_aggregation.py
"""

import random
from collections import Counter

from repro import DaVinciConfig, DaVinciSketch
from repro.workloads import zipf_trace


def main() -> None:
    config = DaVinciConfig.from_memory_kb(32, seed=9)
    rng = random.Random(4)

    # --- four vantage points see disjoint slices of the traffic --------- #
    traffic = zipf_trace(num_packets=120_000, num_flows=9_000, skew=1.05, seed=1)
    rng.shuffle(traffic)
    quarter = len(traffic) // 4
    slices = [traffic[i * quarter : (i + 1) * quarter] for i in range(4)]

    monitors = []
    for index, packets in enumerate(slices):
        sketch = DaVinciSketch(config)
        sketch.insert_all(packets)
        monitors.append(sketch)
        print(f"monitor {index}: {sketch.total_count:,} packets, "
              f"sketch = {sketch.memory_bytes() / 1024:.0f} KB")

    # --- collector folds them pairwise ---------------------------------- #
    network_view = monitors[0]
    for sketch in monitors[1:]:
        network_view = network_view.union(sketch)

    truth = Counter(traffic)
    print(f"\nnetwork-wide view: {network_view.total_count:,} packets")
    print(f"cardinality  true={len(truth):,}, "
          f"estimated={network_view.cardinality():,.0f}")

    top = truth.most_common(5)
    print("top flows (true vs merged estimate):")
    for key, count in top:
        print(f"  flow {key}: {count:,} vs {network_view.query(key):,}")

    heavy = network_view.heavy_hitters(max(1, len(traffic) // 1000))
    print(f"network-wide heavy hitters: {len(heavy)}")

    # --- packet-loss localization via difference ------------------------- #
    # Upstream sees everything; downstream drops 1% of packets.
    upstream, downstream = DaVinciSketch(config), DaVinciSketch(config)
    upstream.insert_all(traffic)
    kept = [packet for packet in traffic if rng.random() > 0.01]
    downstream.insert_all(kept)
    lost_truth = Counter(traffic)
    lost_truth.subtract(Counter(kept))
    lost_truth = +lost_truth  # drop zero entries

    delta = upstream.difference(downstream)
    candidates = delta.heavy_hitters(1)
    detected = {key: value for key, value in candidates.items() if value > 0}
    true_lost_packets = sum(lost_truth.values())
    detected_packets = sum(detected.values())
    print(f"\npacket loss: {true_lost_packets:,} packets across "
          f"{len(lost_truth):,} flows")
    print(f"difference sketch attributes {detected_packets:,} lost packets "
          f"to {len(detected):,} flows")


if __name__ == "__main__":
    main()
