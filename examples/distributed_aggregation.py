#!/usr/bin/env python3
"""Distributed measurement: sharded ingestion plus cross-site merging.

The paper's union operation (Algorithm 3) exists precisely for this:
several measurement points each summarize their local traffic into a
DaVinci Sketch, ship the fixed-size sketch (not the traffic!) to a
collector, and the collector folds them into one network-wide view on
which every task still works.  The difference operation then localizes
*where* traffic was lost between two points on a path.

This example runs the real pipeline end to end:

1. a :class:`~repro.runtime.sharded.ShardedIngestor` spreads one site's
   stream across worker processes and merge-trees the shards back
   together (see ``docs/SCALING.md``);
2. each vantage point ships its sketch as a digest-checked wire-format
   v2 blob, the collector verifies and unions them.

Run:  python examples/distributed_aggregation.py
"""

import random
from collections import Counter

from repro import DaVinciConfig, DaVinciSketch
from repro.core.serialization import from_wire, to_wire
from repro.runtime import ShardedIngestor
from repro.workloads import zipf_trace


def main(scale: float = 1.0) -> None:
    config = DaVinciConfig.from_memory_kb(32, seed=9)
    rng = random.Random(4)

    # --- one busy vantage point ingests with the sharded runtime -------- #
    packets = int(120_000 * scale)
    flows = max(100, int(9_000 * scale))
    traffic = zipf_trace(num_packets=packets, num_flows=flows, skew=1.05, seed=1)
    rng.shuffle(traffic)

    with ShardedIngestor(config, num_shards=4) as ingestor:
        ingestor.ingest_keys(traffic)
        busy_site_view = ingestor.finalize()
    print(f"sharded site: {busy_site_view.total_count:,} packets across "
          f"{ingestor.num_shards} worker processes "
          f"(mode={busy_site_view.mode})")

    # --- other vantage points see disjoint slices of more traffic ------- #
    extra = zipf_trace(num_packets=packets, num_flows=flows, skew=1.05, seed=2)
    rng.shuffle(extra)
    half = len(extra) // 2
    slices = [extra[:half], extra[half:]]

    wire_blobs = []
    for index, site_packets in enumerate(slices):
        sketch = DaVinciSketch(config)
        sketch.insert_all(site_packets)
        # Ship over the network as a checksummed wire-v2 blob: the
        # collector's from_wire() verifies the embedded digest before
        # trusting a single counter.
        blob = to_wire(sketch, "sha256")
        wire_blobs.append(blob)
        print(f"monitor {index}: {sketch.total_count:,} packets, "
              f"wire blob = {len(blob) / 1024:.0f} KB")

    # --- collector verifies and folds everything ------------------------ #
    network_view = busy_site_view
    for blob in wire_blobs:
        network_view = network_view.union(from_wire(blob))

    truth = Counter(traffic) + Counter(extra)
    print(f"\nnetwork-wide view: {network_view.total_count:,} packets")
    print(f"cardinality  true={len(truth):,}, "
          f"estimated={network_view.cardinality():,.0f}")

    top = truth.most_common(5)
    print("top flows (true vs merged estimate):")
    for key, count in top:
        print(f"  flow {key}: {count:,} vs {network_view.query(key):,}")

    heavy = network_view.heavy_hitters(max(1, len(traffic) // 1000))
    print(f"network-wide heavy hitters: {len(heavy)}")

    # --- packet-loss localization via difference ------------------------- #
    # Upstream sees everything; downstream drops 1% of packets.
    upstream, downstream = DaVinciSketch(config), DaVinciSketch(config)
    upstream.insert_all(traffic)
    kept = [packet for packet in traffic if rng.random() > 0.01]
    downstream.insert_all(kept)
    lost_truth = Counter(traffic)
    lost_truth.subtract(Counter(kept))
    lost_truth = +lost_truth  # drop zero entries

    delta = upstream.difference(downstream)
    candidates = delta.heavy_hitters(1)
    detected = {key: value for key, value in candidates.items() if value > 0}
    true_lost_packets = sum(lost_truth.values())
    detected_packets = sum(detected.values())
    print(f"\npacket loss: {true_lost_packets:,} packets across "
          f"{len(lost_truth):,} flows")
    print(f"difference sketch attributes {detected_packets:,} lost packets "
          f"to {len(detected):,} flows")


if __name__ == "__main__":
    main()
