"""The frequent part (FP): an exact hash table for the heaviest elements.

Implements the paper's Algorithm 1.  The FP is ``k`` buckets of ``c``
entries; each entry holds ``(eID, fcnt)`` exactly.  A per-bucket evict
counter ``ecnt`` implements the Elastic-Sketch-style probabilistic
replacement: once ``ecnt`` exceeds ``λ ×`` the bucket's smallest ``fcnt``,
that smallest entry is deemed infrequent and evicted downwards, making room
for the (presumed growing) newcomer.

The FP never talks to the other parts directly; :meth:`FrequentPart.insert`
returns an :class:`FPOutcome` describing what, if anything, must be pushed
down into the element filter.  This keeps the part unit-testable in
isolation and lets the set operations reuse the same bucket mechanics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.common import invariants as _inv
from repro.common.errors import IncompatibleSketchError
from repro.common.hashing import hash64
from repro.common.validation import require_positive
from repro.observability import instruments as _obs_instruments
from repro.observability import metrics as _obs
from repro.observability.instruments import FrequentPartMetrics
from repro.observability.metrics import MetricsRegistry


@dataclass
class FPOutcome:
    """Result of one FP insertion.

    ``demoted`` is the ``(key, count)`` pair the caller must insert into the
    element filter: in case 3 it is the evicted resident, in case 4 the
    incoming element itself.  ``None`` means the FP absorbed the insertion
    (cases 1 and 2).  ``case`` records which Algorithm-1 branch ran, which
    the tests assert on directly.  ``accesses`` is the number of logical
    memory words the insertion touched (entry slots scanned, plus the evict
    counter and flag when the bucket was full) — the AMA numerator.
    """

    case: int
    demoted: Optional[Tuple[int, int]] = None
    accesses: int = 0


def _entry_count(entry: List[Any]) -> int:
    """Sort key for eviction candidates (same tie-break as ``min_entry``)."""
    count: int = entry[1]
    return count


def _demotion_position(demotion: Tuple[int, int, int]) -> int:
    """Sort key restoring arrival order of batched demotions."""
    return demotion[0]


class Bucket:
    """One FP bucket: up to ``c`` exact entries plus eviction bookkeeping.

    Each entry is ``[key, count, flag]``.  The flag marks entries installed
    by a case-3 replacement: the newcomer may have earlier mass in the
    lower parts, so its queries must consult them (the paper defines one
    flag per bucket; we keep it per entry — the granularity Elastic Sketch
    uses — because an entry that has lived in the bucket since a case-2
    insertion is provably exact, and charging it the filter's collision
    noise would scatter the distribution/entropy estimates).  ``flag`` on
    the bucket remains as "any entry was ever evicted", which the set
    operations and Algorithm 3 use.
    """

    __slots__ = ("entries", "ecnt", "flag")

    def __init__(self) -> None:
        #: list of ``[key, count, flag]`` triples, at most ``c`` of them
        self.entries: List[List[Any]] = []
        #: evictions attempted against this bucket since the last eviction
        self.ecnt: int = 0
        #: True once any entry was evicted from this bucket
        self.flag: bool = False

    def find(self, key: int) -> Optional[List[Any]]:
        """The entry holding ``key``, or None."""
        for entry in self.entries:
            if entry[0] == key:
                return entry
        return None

    def min_entry(self) -> List[Any]:
        """The entry with the smallest count (eviction candidate)."""
        return min(self.entries, key=lambda entry: entry[1])


class FrequentPart:
    """The FP hash table (Algorithm 1)."""

    #: lazily-created metrics bundle (class-level default so structures
    #: built via ``__new__`` in :meth:`empty_like` stay valid)
    _obs_metrics: Optional[FrequentPartMetrics] = None
    #: injectable registry override (None → the process-global default)
    _obs_registry: Optional[MetricsRegistry] = None

    def __init__(
        self,
        buckets: int,
        entries_per_bucket: int,
        lambda_evict: float,
        seed: int = 1,
    ) -> None:
        require_positive("buckets", buckets)
        require_positive("entries_per_bucket", entries_per_bucket)
        self.num_buckets = buckets
        self.entries_per_bucket = entries_per_bucket
        self.lambda_evict = float(lambda_evict)
        self._seed = hash64(0xF9, seed)
        self.buckets: List[Bucket] = [Bucket() for _ in range(buckets)]

    # ------------------------------------------------------------------ #
    # hashing
    # ------------------------------------------------------------------ #
    def bucket_index(self, key: int) -> int:
        """H(e): the bucket a key maps to."""
        return hash64(key, self._seed) % self.num_buckets

    # ------------------------------------------------------------------ #
    # observability (see repro.observability; free while disabled)
    # ------------------------------------------------------------------ #
    def _observe(self) -> FrequentPartMetrics:
        """The lazily-bound metrics bundle (armed paths only)."""
        bundle = self._obs_metrics
        if bundle is None:
            bundle = _obs_instruments.frequent_part_metrics(
                self._obs_registry, self
            )
            self._obs_metrics = bundle
        return bundle

    def _record_case(self, case: int) -> None:
        """Count one Algorithm-1 outcome (called only when armed)."""
        bundle = self._observe()
        bundle.inserts.inc()
        bundle.cases.counter_child(str(case)).inc()
        if case == 3:
            bundle.evictions.inc()
            bundle.demotions.inc()
        elif case == 4:
            bundle.demotions.inc()

    def _record_batch(
        self, total: int, case2: int, case3: int, demoted: int
    ) -> None:
        """Count one batch's outcome tallies (called only when armed)."""
        bundle = self._observe()
        bundle.inserts.inc(total)
        case4 = demoted - case3
        case1 = total - case2 - demoted
        cases = bundle.cases
        if case1:
            cases.counter_child("1").inc(case1)
        if case2:
            cases.counter_child("2").inc(case2)
        if case3:
            cases.counter_child("3").inc(case3)
            bundle.evictions.inc(case3)
        if case4:
            cases.counter_child("4").inc(case4)
        if demoted:
            bundle.demotions.inc(demoted)

    # ------------------------------------------------------------------ #
    # insertion (Algorithm 1)
    # ------------------------------------------------------------------ #
    def insert(self, key: int, count: int = 1) -> FPOutcome:
        """Insert ``count`` occurrences of ``key``; maybe demote something.

        Returns which of the four Algorithm-1 cases ran and the pair to push
        into the element filter, if any.  The caller is responsible for the
        AMA accounting and for actually routing the demoted pair.
        """
        if _inv.ENABLED:
            _inv.check_counter_int(count, "FrequentPart.insert count")
            _inv.check(count >= 1, "FrequentPart.insert: count must be >= 1")
        bucket = self.buckets[self.bucket_index(key)]

        for position, entry in enumerate(bucket.entries):
            if entry[0] == key:  # case 1: already resident
                entry[1] += count
                if _inv.ENABLED:
                    _inv.check_non_negative(
                        entry[1], "FrequentPart entry count after case 1"
                    )
                if _obs.ENABLED:
                    self._record_case(1)
                return FPOutcome(case=1, accesses=position + 1)

        if len(bucket.entries) < self.entries_per_bucket:  # case 2: room
            scanned = len(bucket.entries) + 1
            bucket.entries.append([key, count, False])
            if _obs.ENABLED:
                self._record_case(2)
            return FPOutcome(case=2, accesses=scanned)

        full_scan = self.entries_per_bucket + 2  # entries + ecnt + flag
        bucket.ecnt += 1
        victim = bucket.min_entry()
        if bucket.ecnt > self.lambda_evict * victim[1]:  # case 3: evict
            demoted = (victim[0], victim[1])
            if _inv.ENABLED:
                _inv.check(
                    demoted[1] >= 1,
                    "FrequentPart case 3: demoted count must be >= 1",
                )
            victim[0] = key
            victim[1] = count
            victim[2] = True  # the newcomer may have prior mass below
            bucket.flag = True
            bucket.ecnt = 0
            if _obs.ENABLED:
                self._record_case(3)
            return FPOutcome(case=3, demoted=demoted, accesses=full_scan)

        # case 4: the newcomer itself is deemed infrequent
        if _obs.ENABLED:
            self._record_case(4)
        return FPOutcome(case=4, demoted=(key, count), accesses=full_scan)

    # ------------------------------------------------------------------ #
    # batched insertion (the ingestion fast path)
    # ------------------------------------------------------------------ #
    def insert_batch(
        self, items: Sequence[Tuple[int, int]]
    ) -> Tuple[List[Tuple[int, int, int]], int]:
        """Insert many ``(key, count)`` pairs; return demotions + accesses.

        Sequential-equivalent to calling :meth:`insert` once per pair in
        order — the resulting bucket state is byte-identical — but the
        pairs are grouped by destination bucket first, so each bucket's
        entry list, capacity and eviction bookkeeping are bound to locals
        exactly once per touched bucket instead of once per pair, and no
        per-pair :class:`FPOutcome` is allocated.

        Buckets are independent, so cross-bucket processing order cannot
        change FP state; demotion order *does* matter downstream (the
        element filter's absorb arithmetic is order-sensitive under
        counter collisions), so each demotion is tagged with its pair's
        arrival position and the returned list is sorted back into arrival
        order.

        Returns ``(demoted, accesses)`` where ``demoted`` is a list of
        ``(position, key, count)`` triples in arrival order and
        ``accesses`` is the summed logical memory-word count, both exactly
        as the sequential loop would have produced.
        """
        grouped: Dict[int, List[Tuple[int, int, int]]] = {}
        bucket_of = self.bucket_index
        for position, (key, count) in enumerate(items):
            if _inv.ENABLED:
                _inv.check_counter_int(count, "FrequentPart.insert_batch count")
                _inv.check(
                    count >= 1, "FrequentPart.insert_batch: count must be >= 1"
                )
            grouped.setdefault(bucket_of(key), []).append((position, key, count))

        demoted: List[Tuple[int, int, int]] = []
        accesses = 0
        capacity = self.entries_per_bucket
        full_scan = capacity + 2  # entries + ecnt + flag
        lambda_evict = self.lambda_evict
        buckets = self.buckets
        # Metrics: only case-3 needs an in-loop tally; the other branch
        # counts are derived after the loop (case 2 from the occupancy
        # delta, case 4 from the demotion count), so the disabled path
        # adds nothing to the per-pair work.
        observing = _obs.ENABLED
        evictions = 0
        entries_before = len(self) if observing else 0
        for bucket_index, ops in grouped.items():
            bucket = buckets[bucket_index]
            entries = bucket.entries
            for position, key, count in ops:
                resident = None
                for scanned, entry in enumerate(entries):
                    if entry[0] == key:  # case 1: already resident
                        entry[1] += count
                        accesses += scanned + 1
                        resident = entry
                        break
                if resident is not None:
                    continue
                if len(entries) < capacity:  # case 2: room
                    accesses += len(entries) + 1
                    entries.append([key, count, False])
                    continue
                accesses += full_scan
                bucket.ecnt += 1
                victim = min(entries, key=_entry_count)
                if bucket.ecnt > lambda_evict * victim[1]:  # case 3: evict
                    demoted.append((position, victim[0], victim[1]))
                    victim[0] = key
                    victim[1] = count
                    victim[2] = True  # the newcomer may have prior mass below
                    bucket.flag = True
                    bucket.ecnt = 0
                    if observing:
                        evictions += 1
                else:  # case 4: the newcomer itself is deemed infrequent
                    demoted.append((position, key, count))
        demoted.sort(key=_demotion_position)
        if observing:
            self._record_batch(
                len(items),
                len(self) - entries_before,
                evictions,
                len(demoted),
            )
        return demoted, accesses

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def lookup(self, key: int) -> Tuple[int, bool, bool]:
        """Return ``(count, present, flag)`` for ``key``.

        ``count`` is 0 when absent.  The flag tells the caller whether
        Algorithm 4 must also consult the lower parts: for a resident it is
        the entry's own flag, for an absent key trivially True (the lower
        parts are the only place it can live).
        """
        bucket = self.buckets[self.bucket_index(key)]
        entry = bucket.find(key)
        if entry is None:
            return 0, False, True
        return entry[1], True, entry[2]

    def items(self) -> Iterator[Tuple[int, int]]:
        """All resident ``(key, count)`` pairs."""
        for bucket in self.buckets:
            for key, count, _flag in bucket.entries:
                yield key, count

    def flagged_items(self) -> Iterator[Tuple[int, int]]:
        """Resident ``(key, count)`` pairs that may have mass below."""
        for bucket in self.buckets:
            for key, count, flag in bucket.entries:
                if flag:
                    yield key, count

    def as_dict(self) -> Dict[int, int]:
        """Resident entries as ``{key: count}``."""
        return dict(self.items())

    def __len__(self) -> int:
        return sum(len(bucket.entries) for bucket in self.buckets)

    @property
    def capacity(self) -> int:
        """Maximum number of resident entries."""
        return self.num_buckets * self.entries_per_bucket

    # ------------------------------------------------------------------ #
    # structure checks / construction helpers for set operations
    # ------------------------------------------------------------------ #
    def check_compatible(self, other: "FrequentPart") -> None:
        """Raise unless ``other`` has identical geometry and hash seed."""
        same = (
            self.num_buckets == other.num_buckets
            and self.entries_per_bucket == other.entries_per_bucket
            and self._seed == other._seed
        )
        if not same:
            raise IncompatibleSketchError(
                "frequent parts differ in shape or hash seed"
            )

    def empty_like(self) -> "FrequentPart":
        """A fresh FP with the same geometry and seed (for set-op results)."""
        clone = FrequentPart.__new__(FrequentPart)
        clone.num_buckets = self.num_buckets
        clone.entries_per_bucket = self.entries_per_bucket
        clone.lambda_evict = self.lambda_evict
        clone._seed = self._seed
        clone.buckets = [Bucket() for _ in range(self.num_buckets)]
        return clone
