"""The paper's primary contribution: the DaVinci Sketch."""

from repro.core.config import DaVinciConfig
from repro.core.davinci import (
    DEFAULT_BATCH_CHUNK,
    MODE_ADDITIVE,
    MODE_SIGNED,
    MODE_STANDARD,
    VALID_MODES,
    DaVinciSketch,
)
from repro.core.element_filter import ElementFilter
from repro.core.frequent_part import FPOutcome, FrequentPart
from repro.core.infrequent_part import DecodeResult, InfrequentPart
from repro.core.serialization import from_state, to_state
from repro.core.setops import difference, union
from repro.core.windowed import WindowedDaVinci

__all__ = [
    "DaVinciConfig",
    "DaVinciSketch",
    "DEFAULT_BATCH_CHUNK",
    "MODE_ADDITIVE",
    "MODE_SIGNED",
    "MODE_STANDARD",
    "VALID_MODES",
    "ElementFilter",
    "FPOutcome",
    "FrequentPart",
    "DecodeResult",
    "InfrequentPart",
    "difference",
    "union",
    "from_state",
    "to_state",
    "WindowedDaVinci",
]
