"""Entropy estimation: apply the frequency results to the entropy formula.

``H(F) = − Σ_i (f_i / S) · ln(f_i / S)`` where ``S`` is the stream length
(tracked exactly by the sketch as a single scalar).  The per-size counts
come from the distribution estimator, so the exact frequent/decoded parts
contribute exactly and the filter residents through the EM deconvolution —
precisely the paper's "calculated by applying the frequency results to the
entropy formula".
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.davinci import DaVinciSketch


def entropy_of_distribution(histogram: Dict[int, float], total: float) -> float:
    """Entropy (nats) of a ``{size: #flows}`` histogram with stream size S.

    Sizes <= 0 and non-positive counts are ignored; an empty histogram or
    non-positive ``total`` yields 0 (the entropy of an empty stream).
    """
    if total <= 0:
        return 0.0
    result = 0.0
    for size, count in histogram.items():
        if size <= 0 or count <= 0:
            continue
        probability = size / total
        if probability <= 0:
            continue
        result -= count * probability * math.log(probability)
    return result


def entropy(sketch: "DaVinciSketch") -> float:
    """Estimated entropy of the multiset summarized by ``sketch``.

    Uses the distribution estimate with the EM run over the filter's *top*
    level: its wide counters are never truncated by the 4-bit cap, so the
    total probability mass — which dominates the entropy sum — is
    preserved, at the cost of per-size resolution the entropy formula does
    not need.
    """
    histogram = sketch.distribution(em_level=-1)
    return entropy_of_distribution(histogram, float(sketch.total_count))
