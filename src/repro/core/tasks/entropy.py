"""Entropy estimation: apply the frequency results to the entropy formula.

``H(F) = − Σ_i (f_i / S) · ln(f_i / S)`` where ``S`` is the stream length
(tracked exactly by the sketch as a single scalar).  The per-size counts
come from the distribution estimator, so the exact frequent/decoded parts
contribute exactly and the filter residents through the EM deconvolution —
precisely the paper's "calculated by applying the frequency results to the
entropy formula".
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Optional, Union, overload

from repro.core.degrade import (
    DegradationPolicy,
    DegradedResult,
    execute,
    finite_or,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.davinci import DaVinciSketch


def entropy_of_distribution(histogram: Dict[int, float], total: float) -> float:
    """Entropy (nats) of a ``{size: #flows}`` histogram with stream size S.

    Sizes <= 0 and non-positive counts are ignored; an empty histogram or
    non-positive ``total`` yields 0 (the entropy of an empty stream).
    """
    if total <= 0:
        return 0.0
    result = 0.0
    for size, count in histogram.items():
        if size <= 0 or count <= 0:
            continue
        probability = size / total
        if probability <= 0:
            continue
        result -= count * probability * math.log(probability)
    return result


@overload
def entropy(sketch: "DaVinciSketch") -> float: ...


@overload
def entropy(
    sketch: "DaVinciSketch", *, policy: DegradationPolicy
) -> DegradedResult[float]: ...


def entropy(
    sketch: "DaVinciSketch", *, policy: Optional[DegradationPolicy] = None
) -> Union[float, DegradedResult[float]]:
    """Estimated entropy of the multiset summarized by ``sketch``.

    Uses the distribution estimate with the EM run over the filter's *top*
    level: its wide counters are never truncated by the 4-bit cap, so the
    total probability mass — which dominates the entropy sum — is
    preserved, at the cost of per-size resolution the entropy formula does
    not need.

    With a :class:`~repro.core.degrade.DegradationPolicy`, the answer is
    wrapped in a :class:`~repro.core.degrade.DegradedResult` (see
    :mod:`repro.core.degrade`).
    """
    if policy is not None:
        return execute(
            (sketch,),
            lambda: _entropy_value(sketch),
            policy,
            fallback=lambda: 0.0,
            sanitize=finite_or(0.0),
        )
    return _entropy_value(sketch)


def _entropy_value(sketch: "DaVinciSketch") -> float:
    histogram = sketch.distribution(em_level=-1)
    return entropy_of_distribution(histogram, float(sketch.total_count))
