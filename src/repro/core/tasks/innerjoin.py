"""Cardinality of the inner join: ``J = f ⊙ g = Σ_e f(e)·g(e)``.

Following the paper's Section III-B2, each frequency vector is decomposed
by part, ``f = f_F + f_I + f_E``, and the nine cross terms are estimated.
Our implementation groups them into the *keyed* terms and the *array* term:

* ``f_K = f_F + f_I`` — the keyed portion: frequent-part residents are
  stored exactly, and the infrequent part decodes to exact keyed counts
  (with the unbiased Count-Sketch-style fast query as a fallback for
  undecoded keys).  This covers J_FF, J_FI, J_IF and J_II.
* ``f_E`` — the element-filter share of any key: exactly ``T`` for a
  promoted element, the filter estimate otherwise.  Iterating the keyed
  elements against the other side's filter share covers J_FE, J_EF, J_IE
  and J_EI.
* J_EE — the remaining filter×filter term, estimated from the level-0
  counter arrays with the standard collision-corrected dot product
  ``(w·Σ A[j]B[j] − ΣA·ΣB) / (w − 1)`` (the paper's "dot product at
  corresponding positions"; we add the correction because the filter's
  counters are unsigned CM-style, whose raw dot product is biased upward
  by ``ΣA·ΣB/w``).

The paper's alternative of folding the raw signed infrequent arrays
against the unsigned filter is not used for J_IE/J_EI: the ±1 ζ signs make
the expectation of such a product zero; decoding (the structure's designed
capability) sidesteps this entirely.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Set, Union, overload

from repro.core.degrade import (
    DegradationPolicy,
    DegradedResult,
    execute,
    finite_or,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.davinci import DaVinciSketch


def _keyed_part(sketch: "DaVinciSketch", key: int) -> int:
    """``f_F(key) + f_I(key)``: the exactly-tracked share of a key."""
    fp_count, _, _ = sketch.fp.lookup(key)
    decoded = sketch.decode_counts()
    ifp = decoded.get(key)
    if ifp is None:
        ifp = 0
        if not sketch.decode_result().complete and sketch.ef.is_promoted(key):
            ifp = max(0, sketch.ifp.fast_query(key))
    return fp_count + ifp


def _filter_share(sketch: "DaVinciSketch", key: int) -> int:
    """``f_E(key)``: the share of a key's mass held by the element filter.

    A promoted key deposited exactly ``T`` units before overflowing; a
    non-promoted key's entire mass is its filter estimate.
    """
    estimate = sketch.ef.query(key)
    return min(estimate, sketch.ef.threshold)


def _filter_dot_product(a: "DaVinciSketch", b: "DaVinciSketch") -> float:
    """Collision-corrected J_EE estimate from the level-0 arrays."""
    left = a.ef.base_level()
    right = b.ef.base_level()
    width = len(left)
    if width <= 1:
        return float(sum(x * y for x, y in zip(left, right)))
    raw = 0.0
    sum_left = 0.0
    sum_right = 0.0
    for x, y in zip(left, right):
        raw += x * y
        sum_left += x
        sum_right += y
    corrected = (width * raw - sum_left * sum_right) / (width - 1)
    return max(0.0, corrected)


@overload
def inner_join(a: "DaVinciSketch", b: "DaVinciSketch") -> float: ...


@overload
def inner_join(
    a: "DaVinciSketch", b: "DaVinciSketch", *, policy: DegradationPolicy
) -> DegradedResult[float]: ...


def inner_join(
    a: "DaVinciSketch",
    b: "DaVinciSketch",
    *,
    policy: Optional[DegradationPolicy] = None,
) -> Union[float, DegradedResult[float]]:
    """Estimate ``Σ_e f(e)·g(e)`` between two standard-mode sketches.

    With a :class:`~repro.core.degrade.DegradationPolicy`, both inputs'
    decode completeness is checked and the answer is wrapped in a
    :class:`~repro.core.degrade.DegradedResult` (see
    :mod:`repro.core.degrade`).
    """
    if policy is not None:
        return execute(
            (a, b),
            lambda: _inner_join_value(a, b),
            policy,
            fallback=lambda: 0.0,
            sanitize=finite_or(0.0),
        )
    return _inner_join_value(a, b)


def _inner_join_value(a: "DaVinciSketch", b: "DaVinciSketch") -> float:
    a.check_compatible(b)

    keys: Set[int] = set(a.fp.as_dict())
    keys.update(a.decode_counts())
    keys.update(b.fp.as_dict())
    keys.update(b.decode_counts())

    keyed_cross = 0.0
    for key in keys:
        f_keyed = _keyed_part(a, key)
        g_keyed = _keyed_part(b, key)
        f_filter = _filter_share(a, key)
        g_filter = _filter_share(b, key)
        # J_KK + J_KE + J_EK for this key; J_EE is handled by the arrays.
        keyed_cross += (
            f_keyed * g_keyed + f_keyed * g_filter + f_filter * g_keyed
        )

    return keyed_cross + _filter_dot_product(a, b)
