"""Flow-size distribution estimation (paper: MRAC-style EM refinement).

The estimate combines three sources:

1. **Exact keys** — frequent-part residents and decoded infrequent-part
   elements are queried individually and histogrammed.
2. **Filter residents** — elements that still live (entirely) in the
   element filter are invisible as keys; their size distribution is
   recovered from the filter's level-0 counter *values* with the
   expectation-maximization deconvolution of Kumar et al. [47], the same
   machinery behind the MRAC baseline (which is why
   :class:`CounterArrayEM` lives here and is imported by
   :mod:`repro.sketches.mrac`, :mod:`repro.sketches.elastic` and
   :mod:`repro.sketches.fcm`).
3. **Cleaning** — a promoted element deposits (up to) ``T`` units in the
   filter before overflowing; that mass would masquerade as a size-``T``
   flow, so the counters of decoded elements are debited before the EM
   pass.

The EM model: counters receive a Poisson(λ) number of flows (λ = load
factor from linear counting); a counter of value ``v`` is explained as one
flow of size ``v`` or a pair ``(a, v−a)``.  Pair explanations dominate
residual collisions at the sub-1 load factors sketches operate at;
higher-order collisions are folded into the pair term (a documented
simplification of the full partition enumeration, which is exponential).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union, overload

from repro.common.errors import ConfigurationError
from repro.core.degrade import DegradationPolicy, DegradedResult, execute
from repro.core.tasks.cardinality import linear_counting_over

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.davinci import DaVinciSketch


class CounterArrayEM:
    """EM deconvolution of a counter array into a flow-size distribution.

    Parameters
    ----------
    iterations:
        EM rounds; the estimate typically stabilizes within 5-10.
    max_value:
        Counter values above this are excluded (saturated counters carry no
        size information; their flows are accounted for elsewhere).
    """

    def __init__(self, iterations: int = 8, max_value: Optional[int] = None) -> None:
        if iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
        self.iterations = iterations
        self.max_value = max_value

    def estimate(self, counters: Sequence[int]) -> Dict[int, float]:
        """Expected number of flows of each size hidden in ``counters``."""
        num_counters = len(counters)
        if num_counters == 0:
            return {}

        value_hist: Dict[int, int] = {}
        for value in counters:
            if value <= 0:
                continue
            if self.max_value is not None and value > self.max_value:
                continue
            value_hist[value] = value_hist.get(value, 0) + 1
        if not value_hist:
            return {}

        load = linear_counting_over(counters) / num_counters
        # Poisson weights for 1 vs 2 flows in a counter, conditioned on the
        # counter being non-empty.  p2/p1 = λ/2.
        pair_prior = max(1e-12, load / 2.0)

        max_size = max(value_hist)
        phi = self._initial_phi(value_hist, max_size)

        for _ in range(self.iterations):
            expected = [0.0] * (max_size + 1)
            for value, multiplicity in value_hist.items():
                weights: List[float] = []
                splits: List[Optional[int]] = []
                weights.append(phi[value])
                splits.append(None)  # single-flow explanation
                for a in range(1, value // 2 + 1):
                    b = value - a
                    symmetry = 1.0 if a == b else 2.0
                    weights.append(pair_prior * symmetry * phi[a] * phi[b])
                    splits.append(a)
                total = sum(weights)
                if total <= 0.0:
                    expected[value] += multiplicity
                    continue
                scale = multiplicity / total
                for weight, split in zip(weights, splits):
                    share = weight * scale
                    if split is None:
                        expected[value] += share
                    else:
                        expected[split] += share
                        expected[value - split] += share
            total_flows = sum(expected)
            if total_flows <= 0.0:
                break
            phi = [count / total_flows for count in expected]

        return {
            size: count
            for size, count in enumerate(expected)
            if size >= 1 and count > 1e-9
        }

    @staticmethod
    def _initial_phi(value_hist: Dict[int, int], max_size: int) -> List[float]:
        """Collision-free initialization: φ_v ∝ observed counter values."""
        phi = [0.0] * (max_size + 1)
        total = sum(value_hist.values())
        for value, count in value_hist.items():
            phi[value] = count / total
        # A tiny floor lets EM discover sizes absent from the raw counters
        # (e.g. a size only present inside collided counters).
        floor = 1e-6
        phi = [max(p, floor) for p in phi]
        norm = sum(phi[1:])
        return [0.0] + [p / norm for p in phi[1:]]


def _sanitize_histogram(histogram: Dict[int, float]) -> Dict[int, float]:
    """Drop non-finite or negative mass (BEST_EFFORT repair)."""
    return {
        size: count
        for size, count in histogram.items()
        if math.isfinite(count) and count >= 0.0
    }


@overload
def distribution(
    sketch: "DaVinciSketch",
    max_size: Optional[int] = ...,
    em_level: int = ...,
) -> Dict[int, float]: ...


@overload
def distribution(
    sketch: "DaVinciSketch",
    max_size: Optional[int] = ...,
    em_level: int = ...,
    *,
    policy: DegradationPolicy,
) -> DegradedResult[Dict[int, float]]: ...


def distribution(
    sketch: "DaVinciSketch",
    max_size: Optional[int] = None,
    em_level: int = 0,
    *,
    policy: Optional[DegradationPolicy] = None,
) -> Union[Dict[int, float], DegradedResult[Dict[int, float]]]:
    """Estimated flow-size distribution ``{size: #flows}`` of the sketch.

    ``em_level`` selects which filter level feeds the EM deconvolution.
    Level 0 (many small counters) resolves the per-size histogram best and
    is the default; the top level (larger counters, no truncation at the
    4-bit cap) preserves total mass better, which is what the entropy task
    cares about — :func:`repro.core.tasks.entropy.entropy` passes the top
    level explicitly.

    With a :class:`~repro.core.degrade.DegradationPolicy`, the histogram
    is wrapped in a :class:`~repro.core.degrade.DegradedResult` (see
    :mod:`repro.core.degrade`).
    """
    if policy is not None:
        return execute(
            (sketch,),
            lambda: _distribution_value(sketch, max_size, em_level),
            policy,
            fallback=lambda: {},
            sanitize=_sanitize_histogram,
        )
    return _distribution_value(sketch, max_size, em_level)


def _distribution_value(
    sketch: "DaVinciSketch",
    max_size: Optional[int] = None,
    em_level: int = 0,
) -> Dict[int, float]:
    histogram: Dict[int, float] = {}

    fp_keys = sketch.fp.as_dict()
    for key in fp_keys:
        estimate = sketch.query(key)
        if estimate > 0:
            histogram[estimate] = histogram.get(estimate, 0.0) + 1.0

    decoded = sketch.decode_counts()
    for key in decoded:
        if key in fp_keys:
            continue  # already queried above (its IFP share included)
        estimate = sketch.query(key)
        if estimate > 0:
            histogram[estimate] = histogram.get(estimate, 0.0) + 1.0

    em_histogram = _filter_resident_distribution(
        sketch, decoded, fp_keys, level=em_level
    )
    for size, count in em_histogram.items():
        histogram[size] = histogram.get(size, 0.0) + count

    if max_size is not None:
        histogram = {s: c for s, c in histogram.items() if s <= max_size}
    return histogram


def _filter_resident_distribution(
    sketch: "DaVinciSketch",
    decoded: Dict[int, int],
    fp_keys: Dict[int, int],
    level: int = 0,
) -> Dict[int, float]:
    """EM over one filter level's counters, after debiting known mass."""
    level = level % sketch.ef.num_levels
    base = list(sketch.ef.levels[level])
    threshold = sketch.ef.threshold
    cap = sketch.ef.level_caps[level]

    def index_of(key: int) -> int:
        return sketch.ef._hashes.index(level, key)

    # Debit the <= T units every promoted (decoded) element left behind.
    for key in decoded:
        j = index_of(key)
        base[j] = max(0, base[j] - threshold)

    # Debit filter mass of frequent-part alumni (flagged entries only —
    # unflagged entries never visited the filter).
    for key, _count in sketch.fp.flagged_items():
        if key in decoded:
            continue
        residue = sketch.ef.query(key)
        if 0 < residue < cap:
            j = index_of(key)
            base[j] = max(0, base[j] - min(residue, threshold))

    em = CounterArrayEM(max_value=cap - 1)
    return em.estimate(base)
