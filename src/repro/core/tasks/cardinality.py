"""Cardinality estimation for the DaVinci sketch.

The paper's recipe (Section III-B2): obtain the frequent part's cardinality
directly, apply **linear counting** [Whang et al.] to the other parts, and
de-duplicate using the frequent part's flags.

Our concrete realization exploits the insertion discipline:

* every element that ever left the frequent part passed through the element
  filter (and only through it into the infrequent part), so *linear
  counting over the filter's level-0 counters* covers the EF **and** IFP
  populations at once;
* a frequent-part resident that never visited the filter reads **zero**
  there (CM-style filters have no false negatives), so the number of extra
  distinct elements contributed by the FP is exactly the count of residents
  with a zero filter estimate.  Residents with a non-zero estimate are
  either genuine filter alumni (already covered by linear counting) or
  collision false positives — the small undercount this heuristic causes is
  the flag-based de-duplication error the paper accepts.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional, Sequence, Union, overload

from repro.core.degrade import (
    DegradationPolicy,
    DegradedResult,
    execute,
    finite_or,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.davinci import DaVinciSketch


def linear_counting_estimate(num_counters: int, num_zero: int) -> float:
    """Whang's linear counting: ``n̂ = −m · ln(z/m)``.

    When no counter is empty the load exceeded the structure's range; the
    standard convention of half an empty counter keeps the estimate finite
    (and signals "at least ~m·ln(2m)" to the caller).
    """
    if num_counters <= 0:
        return 0.0
    if num_zero <= 0:
        num_zero = 0.5
    return -num_counters * math.log(num_zero / num_counters)


def linear_counting_over(counters: Sequence[int]) -> float:
    """Linear counting applied to a raw counter array (zeros = empty)."""
    zero = sum(1 for value in counters if value == 0)
    return linear_counting_estimate(len(counters), zero)


@overload
def cardinality(sketch: "DaVinciSketch") -> float: ...


@overload
def cardinality(
    sketch: "DaVinciSketch", *, policy: DegradationPolicy
) -> DegradedResult[float]: ...


def cardinality(
    sketch: "DaVinciSketch", *, policy: Optional[DegradationPolicy] = None
) -> Union[float, DegradedResult[float]]:
    """Estimated number of distinct elements in the sketch.

    For signed (difference) sketches, "cardinality" means the number of
    elements whose counts differ between the two inputs; that is derived
    from the exactly-tracked keys instead of linear counting (the
    subtracted filter's zeros no longer witness emptiness).

    With a :class:`~repro.core.degrade.DegradationPolicy`, the answer is
    wrapped in a :class:`~repro.core.degrade.DegradedResult` whose flag
    reports whether the sketch's decode had stalled (see
    :mod:`repro.core.degrade`).
    """
    if policy is not None:
        return execute(
            (sketch,),
            lambda: _cardinality_value(sketch),
            policy,
            fallback=lambda: 0.0,
            sanitize=finite_or(0.0),
        )
    return _cardinality_value(sketch)


def _cardinality_value(sketch: "DaVinciSketch") -> float:
    from repro.core.davinci import MODE_SIGNED

    if sketch.mode == MODE_SIGNED:
        return float(
            sum(1 for _, est in sketch.known_keys().items() if est != 0)
        )

    base = sketch.ef.base_level()
    lower_parts = linear_counting_over(base)
    fp_only = sum(
        1 for key, _ in sketch.fp.items() if sketch.ef.query(key) == 0
    )
    return lower_parts + fp_only
