"""Query-task implementations layered on the DaVinci structure.

Each module implements one of the paper's measurement tasks on top of the
three-part sketch; :class:`~repro.core.davinci.DaVinciSketch` exposes them
as methods.  The EM machinery in :mod:`repro.core.tasks.distribution` is
also reused by the MRAC, Elastic and FCM baselines.
"""

from repro.core.tasks.cardinality import cardinality, linear_counting_estimate
from repro.core.tasks.distribution import CounterArrayEM, distribution
from repro.core.tasks.entropy import entropy, entropy_of_distribution
from repro.core.tasks.heavy import heavy_changers, heavy_hitters
from repro.core.tasks.innerjoin import inner_join

__all__ = [
    "cardinality",
    "linear_counting_estimate",
    "CounterArrayEM",
    "distribution",
    "entropy",
    "entropy_of_distribution",
    "heavy_changers",
    "heavy_hitters",
    "inner_join",
]
