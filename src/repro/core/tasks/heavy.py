"""Heavy-hitter and heavy-changer detection.

Heavy hitters are read off the keys the structure tracks exactly — the
frequent-part residents (where a genuine heavy hitter lives with
overwhelming probability, by the eviction discipline) plus the decoded
infrequent-part elements (which matter after merges and for borderline
thresholds).  Each candidate is re-estimated with the full Algorithm-4
query before thresholding.

Heavy changers follow the paper's recipe: subtract the sketches of two
time windows and run heavy-hitter detection on the signed result, ranking
by the magnitude of the change.  Candidates additionally include the
frequent-part residents of *both* windows, so a flow that crashed from
heavy to absent (living only in window 1's FP) is still examined.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Union, overload

from repro.common.errors import ConfigurationError
from repro.core.degrade import DegradationPolicy, DegradedResult, execute

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.davinci import DaVinciSketch


@overload
def heavy_hitters(sketch: "DaVinciSketch", threshold: int) -> Dict[int, int]: ...


@overload
def heavy_hitters(
    sketch: "DaVinciSketch", threshold: int, *, policy: DegradationPolicy
) -> DegradedResult[Dict[int, int]]: ...


def heavy_hitters(
    sketch: "DaVinciSketch",
    threshold: int,
    *,
    policy: Optional[DegradationPolicy] = None,
) -> Union[Dict[int, int], DegradedResult[Dict[int, int]]]:
    """Keys whose estimated |frequency| is at least ``threshold``.

    With a :class:`~repro.core.degrade.DegradationPolicy`, the candidate
    map is wrapped in a :class:`~repro.core.degrade.DegradedResult` —
    a stalled decode means borderline candidates living only in the
    infrequent part may be missing (see :mod:`repro.core.degrade`).
    """
    if threshold <= 0:
        raise ConfigurationError("threshold must be positive")
    if policy is not None:
        return execute(
            (sketch,),
            lambda: _heavy_hitters_value(sketch, threshold),
            policy,
            fallback=lambda: {},
        )
    return _heavy_hitters_value(sketch, threshold)


def _heavy_hitters_value(
    sketch: "DaVinciSketch", threshold: int
) -> Dict[int, int]:
    return {
        key: estimate
        for key, estimate in sketch.known_keys().items()
        if abs(estimate) >= threshold
    }


@overload
def heavy_changers(
    window_a: "DaVinciSketch", window_b: "DaVinciSketch", threshold: int
) -> Dict[int, int]: ...


@overload
def heavy_changers(
    window_a: "DaVinciSketch",
    window_b: "DaVinciSketch",
    threshold: int,
    *,
    policy: DegradationPolicy,
) -> DegradedResult[Dict[int, int]]: ...


def heavy_changers(
    window_a: "DaVinciSketch",
    window_b: "DaVinciSketch",
    threshold: int,
    *,
    policy: Optional[DegradationPolicy] = None,
) -> Union[Dict[int, int], DegradedResult[Dict[int, int]]]:
    """Keys whose frequency changed by at least ``threshold`` across windows.

    Returns ``{key: signed change}`` with positive values meaning the key
    grew from window ``b`` to window ``a``... more precisely the value is
    ``f_a(key) − f_b(key)`` as estimated on the difference sketch.

    With a :class:`~repro.core.degrade.DegradationPolicy`, both windows
    *and* the derived difference sketch are checked for decode stalls and
    the change map is wrapped in a
    :class:`~repro.core.degrade.DegradedResult`.
    """
    if threshold <= 0:
        raise ConfigurationError("threshold must be positive")
    delta = window_a.difference(window_b)
    if policy is not None:
        return execute(
            (window_a, window_b, delta),
            lambda: _heavy_changers_value(window_a, window_b, delta, threshold),
            policy,
            fallback=lambda: {},
        )
    return _heavy_changers_value(window_a, window_b, delta, threshold)


def _heavy_changers_value(
    window_a: "DaVinciSketch",
    window_b: "DaVinciSketch",
    delta: "DaVinciSketch",
    threshold: int,
) -> Dict[int, int]:
    candidates = set(delta.fp.as_dict())
    candidates.update(delta.decode_counts())
    candidates.update(window_a.fp.as_dict())
    candidates.update(window_b.fp.as_dict())

    changes: Dict[int, int] = {}
    for key in candidates:
        # The difference sketch discovers the candidates; each candidate's
        # change is then re-estimated from the windows' own (Algorithm-4)
        # point queries, which are immune to the two artifacts of counter
        # subtraction — saturated small counters and unpeeled infrequent
        # buckets — that would otherwise report phantom changes.
        estimate = window_a.query(key) - window_b.query(key)
        if abs(estimate) >= threshold:
            changes[key] = estimate
    return changes
