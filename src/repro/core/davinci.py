"""The DaVinci Sketch: one structure, nine set-measurement tasks.

:class:`DaVinciSketch` glues the three parts together:

* insertions go to the **frequent part** first (Algorithm 1); demoted
  elements fall into the **element filter**, and filter overflow beyond the
  threshold ``T`` lands in the **infrequent part** (Algorithm 2);
* frequency queries follow Algorithm 4, consulting the decoded infrequent
  part (Algorithm 5) with the element filter as cross-validation;
* the set operations (:func:`repro.core.setops.union` /
  :func:`~repro.core.setops.difference`) return new DaVinci sketches, and
  the remaining tasks (heavy hitters/changers, cardinality, distribution,
  entropy, inner join) live in :mod:`repro.core.tasks` and are exposed here
  as methods.

A sketch is in one of three *query modes*:

``standard``
    A sketch built by direct insertion.  Queries use Algorithm 4's
    branching, exploiting the invariant that the filter holds exactly the
    first ``T`` units of every promoted element.
``additive``
    The result of a union.  The per-element filter content is no longer
    capped at ``T`` (two inputs may each contribute up to ``T``), so the
    query simply sums the three parts — which is exact up to filter
    collision noise.
``signed``
    The result of a difference.  All parts carry signed deltas; queries sum
    the parts using the minimum-absolute-value filter read.
"""

from __future__ import annotations

from itertools import islice
from time import perf_counter
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    TypeVar,
    Union,
    overload,
)

from repro.common import invariants as _inv
from repro.common.errors import (
    ConfigurationError,
    IncompatibleSketchError,
    SketchModeError,
)
from repro.core.config import DaVinciConfig
from repro.core.degrade import DegradationPolicy, DegradedResult, execute
from repro.core.element_filter import ElementFilter
from repro.core.frequent_part import FrequentPart
from repro.core.infrequent_part import DecodeResult, InfrequentPart
from repro.core.kernel import KERNEL_ARRAY, KERNEL_OBJECT, resolve_kernel
from repro.observability import instruments as _obs_instruments
from repro.observability import metrics as _obs
from repro.observability.instruments import DaVinciMetrics
from repro.observability.metrics import MetricsRegistry
from repro.sketches.base import Sketch

_T = TypeVar("_T")

MODE_STANDARD = "standard"
MODE_ADDITIVE = "additive"
MODE_SIGNED = "signed"

#: every mode a sketch can legally be in (serialization validates against it)
VALID_MODES = (MODE_STANDARD, MODE_ADDITIVE, MODE_SIGNED)

#: default number of pairs aggregated per :meth:`DaVinciSketch.insert_batch`
#: chunk.  The chunk size is the fidelity/throughput knob: aggregation
#: collapses a key's repeats within a chunk into one weighted insert, which
#: amortizes hashing but also means the frequent part sees one arrival (one
#: ``ecnt`` step, one eviction opportunity) where the per-item loop saw
#: many.  The resulting state is still *exactly* the weighted sequential
#: loop over the aggregates (the byte-identity contract), but it is not
#: the per-packet eviction schedule — accuracy experiments that reproduce
#: the paper's streaming figures drive :meth:`DaVinciSketch.insert`
#: per item instead (see ``repro.experiments.harness.fill``).  65536
#: maximizes throughput for bulk loads (the measured 2.5x+ over the
#: per-item loop); lower it toward 1 to converge on the per-item loop
#: exactly.
DEFAULT_BATCH_CHUNK = 1 << 16


class DaVinciSketch(Sketch):
    """The versatile sketch of the paper, ready for all nine tasks."""

    #: lazily-created metrics bundle (class-level default; see
    #: repro.observability — collection is free while disabled)
    _obs_metrics: Optional[DaVinciMetrics] = None
    #: injectable registry override (None → the process-global default)
    _obs_registry: Optional[MetricsRegistry] = None

    def __init__(
        self,
        config: DaVinciConfig,
        metrics_registry: Optional[MetricsRegistry] = None,
        kernel: Optional[str] = None,
    ) -> None:
        super().__init__()
        self.config = config
        self._obs_registry = metrics_registry
        #: resolved execution kernel for bulk ingestion ("object" or
        #: "array"); ``None`` consults REPRO_KERNEL and defaults to the
        #: object kernel, degrading gracefully when numpy is absent.
        #: Both kernels are byte-identical, so the choice is never part
        #: of serialized state.
        self.kernel: str = resolve_kernel(kernel)
        self.fp = FrequentPart(
            buckets=config.fp_buckets,
            entries_per_bucket=config.fp_entries,
            lambda_evict=config.lambda_evict,
            seed=config.seed,
        )
        self.ef = ElementFilter(
            level_widths=config.ef_level_widths,
            level_bits=config.ef_level_bits,
            threshold=config.filter_threshold,
            seed=config.seed + 1,
        )
        self.ifp = InfrequentPart(
            rows=config.ifp_rows,
            width=config.ifp_width,
            prime=config.prime,
            seed=config.seed + 2,
        )
        if metrics_registry is not None:
            # Route the parts' lazy bundles to the same private registry.
            self.fp._obs_registry = metrics_registry
            self.ef._obs_registry = metrics_registry
            self.ifp._obs_registry = metrics_registry
        #: exact total of inserted counts (one 8-byte scalar; used by
        #: entropy and the distribution estimator)
        self.total_count: int = 0
        self.mode: str = MODE_STANDARD
        self._decode_cache: Optional[DecodeResult] = None

    # ------------------------------------------------------------------ #
    # observability (free while disabled)
    # ------------------------------------------------------------------ #
    def _observe(self) -> DaVinciMetrics:
        """The lazily-bound metrics bundle (armed paths only)."""
        bundle = self._obs_metrics
        if bundle is None:
            bundle = _obs_instruments.davinci_metrics(self._obs_registry)
            self._obs_metrics = bundle
        return bundle

    def _record_inserts(self, pairs: int, units: int) -> None:
        """Count accepted pairs/units (called only when armed)."""
        bundle = self._observe()
        bundle.inserts.inc(pairs)
        if units >= 0:
            bundle.items.inc(units)

    def _timed_task(self, task: str, thunk: Callable[[], _T]) -> _T:
        """Run ``thunk`` under the per-task latency histogram when armed."""
        if not _obs.ENABLED:
            return thunk()
        start = perf_counter()
        try:
            return thunk()
        finally:
            self._observe().task_seconds.histogram_child(task).observe(
                perf_counter() - start
            )

    # ------------------------------------------------------------------ #
    # memory model
    # ------------------------------------------------------------------ #
    def memory_bytes(self) -> float:
        """Logical size under the paper's memory model."""
        return self.config.total_bytes()

    # ------------------------------------------------------------------ #
    # key canonicalization
    # ------------------------------------------------------------------ #
    def canonical_key(self, key: object) -> int:
        """Map any key into the sketch's decodable domain.

        Integer keys already in ``[1, 2^32)`` pass through unchanged.
        Anything else — strings, bytes, zero, negative or oversized ints —
        is deterministically fingerprinted into the domain, mirroring the
        paper's handling of variable-length keys ("we first hash the key
        into a fixed-length fingerprint").  Queries apply the same mapping,
        so callers never see the fingerprints.
        """
        from repro.common.hashing import hash64, key_to_int

        domain = self.ifp.max_key
        if isinstance(key, int) and not isinstance(key, bool) and 1 <= key < domain:
            return key
        return hash64(key_to_int(key), 0x5EEDF00D) % (domain - 1) + 1

    # ------------------------------------------------------------------ #
    # insertion
    # ------------------------------------------------------------------ #
    def insert(self, key: object, count: int = 1) -> None:
        """Record ``count`` occurrences of ``key`` (Algorithms 1 + 2).

        Only standard-mode sketches accept insertions: the element filter
        of a union/difference result no longer holds exactly the first
        ``T`` units of each promoted element, so writing into one would
        silently corrupt every later query.  The guard is unconditional
        (one string compare), not gated behind the debug sanitizer.
        """
        if self.mode != MODE_STANDARD:
            raise SketchModeError(
                "DaVinciSketch.insert: only standard-mode sketches accept "
                "insertions (merged/signed sketches are read-only)"
            )
        key = self.canonical_key(key)
        if _inv.ENABLED:
            _inv.check_counter_int(count, "DaVinciSketch.insert count")
        self.insertions += 1
        self.total_count += count
        self._decode_cache = None
        if _obs.ENABLED:
            self._record_inserts(1, count)

        outcome = self.fp.insert(key, count)
        self.memory_accesses += outcome.accesses
        if outcome.demoted is None:
            return
        demoted_key, demoted_count = outcome.demoted
        self._push_to_filter(demoted_key, demoted_count)

    def insert_all(
        self, keys: Iterable[object], chunk_size: int = DEFAULT_BATCH_CHUNK
    ) -> None:
        """Insert a stream of single occurrences via the batched fast path.

        Equivalent to inserting each chunk's per-key totals in first-seen
        order (see :meth:`insert_batch` for the exact contract); pass
        ``chunk_size=1`` to force the per-item path.
        """
        self.insert_batch(((key, 1) for key in keys), chunk_size=chunk_size)

    def insert_batch(
        self,
        pairs: Iterable[Tuple[object, int]],
        chunk_size: int = DEFAULT_BATCH_CHUNK,
    ) -> None:
        """Record many ``(key, count)`` pairs through the batched fast path.

        The stream is consumed in chunks of up to ``chunk_size`` pairs.
        Each chunk is pre-aggregated into per-key totals (first-seen key
        order), and the resulting state is **byte-identical** to calling
        ``insert(key, total)`` sequentially for those totals — eviction
        order, element-filter absorb arithmetic and decode-cache semantics
        included.  A batch therefore treats its pairs as simultaneous
        arrivals: a key occurring twice in one chunk enters the frequent
        part once with its summed count, exactly as a ``count=k`` insert
        does today.

        What the fast path amortizes over the sequential loop:

        * ``canonical_key`` fingerprints are memoized per chunk (string /
          bytes / out-of-domain keys hash once, not once per occurrence);
        * frequent-part updates are grouped per bucket with the bucket
          bookkeeping bound to locals (:meth:`FrequentPart.insert_batch`);
        * demoted elements flow through level-hoisted, position-memoized
          element-filter offers (:meth:`ElementFilter.offer_batch`) and
          batched infrequent-part encodes with shared hash/sign caches;
        * the decode cache is invalidated once per chunk, not per item.
        """
        if self.mode != MODE_STANDARD:
            raise SketchModeError(
                "DaVinciSketch.insert_batch: only standard-mode sketches "
                "accept insertions (merged/signed sketches are read-only)"
            )
        if chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        iterator = iter(pairs)
        if self.kernel == KERNEL_ARRAY:
            from repro.core.kernel import ArrayKernelEngine

            engine = ArrayKernelEngine(self)
            try:
                while True:
                    chunk = list(islice(iterator, chunk_size))
                    if not chunk:
                        break
                    engine.ingest_chunk(chunk)
            finally:
                engine.flush()
            return
        while True:
            chunk = list(islice(iterator, chunk_size))
            if not chunk:
                break
            self._insert_chunk(chunk)

    def _insert_chunk(self, chunk: List[Tuple[object, int]]) -> None:
        """Aggregate and ingest one chunk (the batched hot loop)."""
        domain = self.ifp.max_key
        canonical = self.canonical_key
        fingerprints: Dict[object, int] = {}
        aggregated: Dict[int, int] = {}
        chunk_total = 0
        for raw_key, count in chunk:
            if _inv.ENABLED:
                _inv.check_counter_int(count, "DaVinciSketch.insert_batch count")
            if (
                isinstance(raw_key, int)
                and not isinstance(raw_key, bool)
                and 1 <= raw_key < domain
            ):
                key = raw_key
            elif isinstance(raw_key, (int, str, bytes)) and not isinstance(
                raw_key, bool
            ):
                cached = fingerprints.get(raw_key)
                if cached is None:
                    cached = canonical(raw_key)
                    fingerprints[raw_key] = cached
                key = cached
            else:  # unhashable key types (e.g. bytearray): no memoization
                key = canonical(raw_key)
            aggregated[key] = aggregated.get(key, 0) + count
            chunk_total += count

        # ``insertions`` counts offered pairs (one per :meth:`insert` call
        # the per-item loop would have made), so throughput and AMA stay
        # comparable across ingestion paths; aggregation only changes the
        # number of structure touches, which ``memory_accesses`` reflects.
        self.insertions += len(chunk)
        self.total_count += chunk_total
        self._decode_cache = None
        if _obs.ENABLED:
            self._record_inserts(len(chunk), chunk_total)
            self._observe().kernel_chunks.counter_child(KERNEL_OBJECT).inc()

        demoted, accesses = self.fp.insert_batch(list(aggregated.items()))
        self.memory_accesses += accesses
        if demoted:
            self._push_to_filter_batch(
                [(key, count) for _position, key, count in demoted]
            )

    def _push_to_filter(self, key: int, count: int) -> None:
        """Route a demoted element through the EF, overflow to the IFP."""
        self.memory_accesses += self.ef.num_levels
        overflow = self.ef.offer(key, count)
        if overflow > 0:
            self.memory_accesses += self.ifp.rows
            self.ifp.insert(key, overflow)

    def _push_to_filter_batch(
        self, demoted: List[Tuple[int, int]]
    ) -> List[Tuple[int, int]]:
        """Route demoted elements through the EF in arrival order, batched.

        Returns the ``(key, overflow)`` pairs that were promoted into the
        infrequent part (instrumented subclasses use this to decompose
        where insertions terminate).
        """
        self.memory_accesses += len(demoted) * self.ef.num_levels
        overflow = self.ef.offer_batch(demoted)
        if overflow:
            self.memory_accesses += len(overflow) * self.ifp.rows
            self.ifp.insert_batch(overflow)
        return overflow

    # ------------------------------------------------------------------ #
    # decoding (Algorithm 5, cached)
    # ------------------------------------------------------------------ #
    def decode_result(self) -> DecodeResult:
        """Decode the infrequent part (cached until the next insertion).

        In standard mode, decoding cross-validates each candidate against
        the element filter: a genuinely promoted element must read at least
        ``T`` in the filter (the paper's ``canDecode``).  Merged and signed
        sketches no longer satisfy that invariant, so they rely on the
        (stronger in our 61-bit field) residue-consistency check alone.
        """
        if self._decode_cache is None:
            if _obs.ENABLED:
                self._observe().cache_misses.inc()
            validator: Optional[Callable[[int], bool]] = None
            if self.mode == MODE_STANDARD:
                threshold = self.ef.threshold
                validator = lambda e: self.ef.query(e) >= threshold  # noqa: E731
            self._decode_cache = self.ifp.decode(validator)
        elif _obs.ENABLED:
            self._observe().cache_hits.inc()
        return self._decode_cache

    def decode_counts(self) -> Dict[int, int]:
        """The decoded ``{key: infrequent-part count}`` map."""
        return self.decode_result().counts

    # ------------------------------------------------------------------ #
    # frequency query (Algorithm 4)
    # ------------------------------------------------------------------ #
    @overload
    def query(self, key: object) -> int: ...

    @overload
    def query(
        self, key: object, *, policy: DegradationPolicy
    ) -> DegradedResult[int]: ...

    def query(
        self, key: object, *, policy: Optional[DegradationPolicy] = None
    ) -> Union[int, DegradedResult[int]]:
        """Estimated (signed, for difference sketches) frequency of ``key``.

        With a :class:`~repro.core.degrade.DegradationPolicy`, the answer
        is wrapped in a :class:`~repro.core.degrade.DegradedResult` whose
        flag reports whether this sketch's decode had stalled (a stalled
        decode routes promoted keys through the noisier fast query).
        """
        if policy is not None:
            return execute(
                (self,),
                lambda: self._query_value(self.canonical_key(key)),
                policy,
                fallback=lambda: 0,
            )
        if _obs.ENABLED:
            start = perf_counter()
            value = self._query_value(self.canonical_key(key))
            self._observe().task_seconds.histogram_child("query").observe(
                perf_counter() - start
            )
            return value
        return self._query_value(self.canonical_key(key))

    def _query_value(self, key: int) -> int:
        if self.mode == MODE_SIGNED:
            return self._query_signed(key)
        if self.mode == MODE_ADDITIVE:
            return self._query_additive(key)
        return self._query_standard(key)

    def _query_standard(self, key: int) -> int:
        fp_count, present, flag = self.fp.lookup(key)
        if present and not flag:
            return fp_count
        base = fp_count  # 0 when absent (Algorithm 4, lines 5-8)

        decoded = self.decode_counts()
        if key in decoded:
            # Promoted and decoded: the filter holds exactly T of its mass.
            return base + decoded[key] + self.ef.threshold

        ef_estimate = self.ef.query(key)
        if ef_estimate >= self.ef.threshold:
            # Promoted but not decodable: fall back to the unbiased fast
            # query of the infrequent part (Algorithm 4, lines 16-20).
            return base + max(0, self.ifp.fast_query(key)) + self.ef.threshold
        return base + ef_estimate

    def _query_additive(self, key: int) -> int:
        fp_count, _, _ = self.fp.lookup(key)
        decoded = self.decode_counts()
        ifp_part = decoded.get(key)
        if ifp_part is None:
            ifp_part = 0
            if not self.decode_result().complete and self.ef.is_promoted(key):
                ifp_part = max(0, self.ifp.fast_query(key))
        return fp_count + self.ef.query(key) + ifp_part

    def _query_signed(self, key: int) -> int:
        # Signed parts simply add (see the class docstring).  No fast-query
        # fallback here: when the subtracted infrequent part fails to peel,
        # its Count-Sketch-style estimate is noise of the *absolute* counts
        # while difference deltas are small — adding it would swamp every
        # small delta.  Undecoded promoted keys lose their (bounded)
        # infrequent share instead.
        fp_count, _, _ = self.fp.lookup(key)
        ifp_part = self.decode_counts().get(key, 0)
        ef_part = self.ef.query_signed(key)
        return fp_count + ef_part + ifp_part

    # ------------------------------------------------------------------ #
    # task facade — implementations live in repro.core.tasks
    # ------------------------------------------------------------------ #
    @overload
    def heavy_hitters(self, threshold: int) -> Dict[int, int]: ...

    @overload
    def heavy_hitters(
        self, threshold: int, *, policy: DegradationPolicy
    ) -> DegradedResult[Dict[int, int]]: ...

    def heavy_hitters(
        self, threshold: int, *, policy: Optional[DegradationPolicy] = None
    ) -> Union[Dict[int, int], DegradedResult[Dict[int, int]]]:
        """Elements whose estimated |frequency| is at least ``threshold``."""
        from repro.core.tasks.heavy import heavy_hitters

        if policy is not None:
            return self._timed_task(
                "heavy_hitters",
                lambda: heavy_hitters(self, threshold, policy=policy),
            )
        return self._timed_task(
            "heavy_hitters", lambda: heavy_hitters(self, threshold)
        )

    def top_k(self, k: int) -> List[Tuple[int, int]]:
        """The ``k`` elements with the largest estimated |frequency|.

        The second heavy-hitter formulation of the paper's Table I
        (``{e_i | f_i ∈ Top k}``): candidates are the exactly-tracked keys,
        ranked by their full Algorithm-4 estimates.
        """
        if k <= 0:
            raise ConfigurationError("k must be positive")

        def run() -> List[Tuple[int, int]]:
            ranked = sorted(
                self.known_keys().items(), key=lambda kv: (-abs(kv[1]), kv[0])
            )
            return ranked[:k]

        return self._timed_task("top_k", run)

    def to_state(self) -> Dict:
        """Serialize to JSON-compatible state (see repro.core.serialization)."""
        from repro.core.serialization import to_state

        return to_state(self)

    @classmethod
    def from_state(
        cls, state: Dict, kernel: Optional[str] = None
    ) -> "DaVinciSketch":
        """Rebuild a sketch from :meth:`to_state` output.

        ``kernel`` selects the execution kernel of the rebuilt sketch
        independently of whichever kernel serialized the state — the two
        kernels are byte-identical, so states carry no kernel marker and
        any state loads into either kernel.
        """
        from repro.core.serialization import from_state

        return from_state(state, kernel=kernel)

    @overload
    def cardinality(self) -> float: ...

    @overload
    def cardinality(
        self, *, policy: DegradationPolicy
    ) -> DegradedResult[float]: ...

    def cardinality(
        self, *, policy: Optional[DegradationPolicy] = None
    ) -> Union[float, DegradedResult[float]]:
        """Estimated number of distinct elements."""
        from repro.core.tasks.cardinality import cardinality

        if policy is not None:
            return self._timed_task(
                "cardinality", lambda: cardinality(self, policy=policy)
            )
        return self._timed_task("cardinality", lambda: cardinality(self))

    @overload
    def distribution(
        self, max_size: Optional[int] = ..., em_level: int = ...
    ) -> Dict[int, float]: ...

    @overload
    def distribution(
        self,
        max_size: Optional[int] = ...,
        em_level: int = ...,
        *,
        policy: DegradationPolicy,
    ) -> DegradedResult[Dict[int, float]]: ...

    def distribution(
        self,
        max_size: Optional[int] = None,
        em_level: int = 0,
        *,
        policy: Optional[DegradationPolicy] = None,
    ) -> Union[Dict[int, float], DegradedResult[Dict[int, float]]]:
        """Estimated flow-size distribution ``{size: #elements}``."""
        from repro.core.tasks.distribution import distribution

        if policy is not None:
            return self._timed_task(
                "distribution",
                lambda: distribution(
                    self, max_size=max_size, em_level=em_level, policy=policy
                ),
            )
        return self._timed_task(
            "distribution",
            lambda: distribution(self, max_size=max_size, em_level=em_level),
        )

    @overload
    def entropy(self) -> float: ...

    @overload
    def entropy(self, *, policy: DegradationPolicy) -> DegradedResult[float]: ...

    def entropy(
        self, *, policy: Optional[DegradationPolicy] = None
    ) -> Union[float, DegradedResult[float]]:
        """Estimated (natural-log) entropy of the multiset."""
        from repro.core.tasks.entropy import entropy

        if policy is not None:
            return self._timed_task(
                "entropy", lambda: entropy(self, policy=policy)
            )
        return self._timed_task("entropy", lambda: entropy(self))

    @overload
    def inner_join(self, other: "DaVinciSketch") -> float: ...

    @overload
    def inner_join(
        self, other: "DaVinciSketch", *, policy: DegradationPolicy
    ) -> DegradedResult[float]: ...

    def inner_join(
        self,
        other: "DaVinciSketch",
        *,
        policy: Optional[DegradationPolicy] = None,
    ) -> Union[float, DegradedResult[float]]:
        """Estimated join size Σ_e f(e)·g(e) against ``other``."""
        from repro.core.tasks.innerjoin import inner_join

        if policy is not None:
            return self._timed_task(
                "inner_join", lambda: inner_join(self, other, policy=policy)
            )
        return self._timed_task(
            "inner_join", lambda: inner_join(self, other)
        )

    def second_moment(self) -> float:
        """Estimated second frequency moment F₂ = Σ_e f(e)².

        The self-join size (paper Table I's inner join with ``G = F``) —
        the classical AGMS quantity, free from the same structure.
        """
        from repro.core.tasks.innerjoin import inner_join

        return self._timed_task(
            "second_moment", lambda: inner_join(self, self)
        )

    @overload
    def union(self, other: "DaVinciSketch") -> "DaVinciSketch": ...

    @overload
    def union(
        self, other: "DaVinciSketch", *, policy: DegradationPolicy
    ) -> DegradedResult["DaVinciSketch"]: ...

    def union(
        self,
        other: "DaVinciSketch",
        *,
        policy: Optional[DegradationPolicy] = None,
    ) -> Union["DaVinciSketch", DegradedResult["DaVinciSketch"]]:
        """The union sketch (Algorithm 3)."""
        from repro.core.setops import union

        if policy is not None:
            return self._timed_task(
                "union", lambda: union(self, other, policy=policy)
            )
        return self._timed_task("union", lambda: union(self, other))

    @overload
    def difference(self, other: "DaVinciSketch") -> "DaVinciSketch": ...

    @overload
    def difference(
        self, other: "DaVinciSketch", *, policy: DegradationPolicy
    ) -> DegradedResult["DaVinciSketch"]: ...

    def difference(
        self,
        other: "DaVinciSketch",
        *,
        policy: Optional[DegradationPolicy] = None,
    ) -> Union["DaVinciSketch", DegradedResult["DaVinciSketch"]]:
        """The signed difference sketch (self − other)."""
        from repro.core.setops import difference

        if policy is not None:
            return self._timed_task(
                "difference", lambda: difference(self, other, policy=policy)
            )
        return self._timed_task(
            "difference", lambda: difference(self, other)
        )

    # ------------------------------------------------------------------ #
    # plumbing for the set operations
    # ------------------------------------------------------------------ #
    def check_compatible(self, other: "DaVinciSketch") -> None:
        """Raise unless ``other`` was built from the identical config."""
        if self.config != other.config:
            raise IncompatibleSketchError(
                "DaVinci sketches must share an identical DaVinciConfig "
                "(shape, threshold, prime and seed) to be combined"
            )

    def empty_like(self) -> "DaVinciSketch":
        """A fresh sketch with the same config (for set-op results)."""
        return DaVinciSketch(self.config, kernel=self.kernel)

    def known_keys(self) -> Dict[int, int]:
        """Exactly-tracked keys: FP residents plus decoded IFP elements.

        Values are full frequency estimates via :meth:`query`.  Used by the
        heavy-hitter scan and the inner-join decomposition.
        """
        keys = set(self.fp.as_dict())
        keys.update(self.decode_counts())
        return {key: self.query(key) for key in keys}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DaVinciSketch(mode={self.mode}, "
            f"memory={self.memory_bytes() / 1024:.1f}KB, "
            f"fp={len(self.fp)}/{self.fp.capacity}, "
            f"total={self.total_count})"
        )
