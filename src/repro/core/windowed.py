"""Windowed measurement: rotating DaVinci sketches over a stream.

The heavy-changer task (and most operational monitoring) is defined over
*time windows*: compare the current epoch against the previous one.  This
utility owns the window lifecycle so applications don't have to:

* :meth:`WindowedDaVinci.insert` feeds the current window and rotates it
  automatically every ``window_size`` units of **stream mass** (occupancy
  is weighted by ``count``, so a weighted insert advances the window by
  its full weight; an insert larger than a window is split across
  consecutive windows) — or on explicit :meth:`rotate`, e.g. from a timer;
* :meth:`insert_batch` / :meth:`insert_all` feed the same lifecycle
  through :meth:`DaVinciSketch.insert_batch`'s amortized fast path, with
  batches cut at window boundaries so window contents match the
  equivalent per-pair loop exactly;
* :meth:`heavy_changers` compares the two most recent *closed* windows;
* :meth:`merged_view` folds all retained windows into one additive-mode
  union sketch for long-horizon queries;
* per-window sketches remain accessible for any other task.

All windows share one :class:`~repro.core.config.DaVinciConfig`, so every
pairwise operation (difference for changers, union for the merged view)
is well-defined.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple, Union, overload

from repro.common.errors import ConfigurationError
from repro.core.config import DaVinciConfig
from repro.core.davinci import DEFAULT_BATCH_CHUNK, MODE_ADDITIVE, DaVinciSketch
from repro.core.degrade import DegradationPolicy, DegradedResult
from repro.core.tasks.heavy import heavy_changers


class WindowedDaVinci:
    """A ring of DaVinci sketches over consecutive stream windows."""

    def __init__(
        self,
        config: DaVinciConfig,
        window_size: int,
        retain: int = 2,
    ) -> None:
        if window_size <= 0:
            raise ConfigurationError("window_size must be positive")
        if retain < 1:
            raise ConfigurationError("must retain at least one closed window")
        self.config = config
        self.window_size = window_size
        self.retain = retain
        self.current: DaVinciSketch = DaVinciSketch(config)
        #: stream mass (sum of inserted counts) in the current window
        self._in_current: int = 0
        #: most recent closed windows, newest last
        self.closed: Deque[DaVinciSketch] = deque(maxlen=retain)
        #: total windows closed since construction
        self.windows_closed: int = 0
        #: memoized fold of the *closed* windows for :meth:`merged_view`,
        #: as ``(windows_closed at fold time, folded sketch)``
        self._merged_closed_cache: Optional[Tuple[int, DaVinciSketch]] = None

    # ------------------------------------------------------------------ #
    # stream side
    # ------------------------------------------------------------------ #
    def insert(self, key: object, count: int = 1) -> None:
        """Feed the current window; rotate on every ``window_size`` of mass.

        Occupancy is weighted by ``count`` — a count-1000 insert fills ten
        100-unit windows, not 1/100 of one.  An insert larger than the
        remaining window capacity is split: the current window receives
        exactly its remaining capacity, rotates, and the rest spills into
        the following window(s).
        """
        if count < 1:
            raise ConfigurationError(
                "windowed insert count must be a positive integer"
            )
        window_size = self.window_size
        remaining = count
        while remaining > 0:
            room = window_size - self._in_current
            take = remaining if remaining < room else room
            self.current.insert(key, take)
            self._in_current += take
            remaining -= take
            if self._in_current >= window_size:
                self.rotate()

    def insert_all(
        self, keys: Iterable[object], chunk_size: int = DEFAULT_BATCH_CHUNK
    ) -> None:
        """Insert a stream of single occurrences via the batched fast path."""
        self.insert_batch(((key, 1) for key in keys), chunk_size=chunk_size)

    def insert_batch(
        self,
        pairs: Iterable[Tuple[object, int]],
        chunk_size: int = DEFAULT_BATCH_CHUNK,
    ) -> None:
        """Feed many ``(key, count)`` pairs through the batched fast path.

        Pairs are split at window boundaries by cumulative count, so each
        window receives exactly the mass the per-pair :meth:`insert` loop
        would have given it; within a window the sub-pairs are forwarded
        to :meth:`DaVinciSketch.insert_batch` (aggregation never crosses a
        window boundary).
        """
        if chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        window_size = self.window_size
        buffer: List[Tuple[object, int]] = []
        buffered = 0
        for key, count in pairs:
            if count < 1:
                raise ConfigurationError(
                    "windowed insert count must be a positive integer"
                )
            remaining = count
            while remaining > 0:
                room = window_size - self._in_current - buffered
                take = remaining if remaining < room else room
                buffer.append((key, take))
                buffered += take
                remaining -= take
                if self._in_current + buffered >= window_size:
                    self._flush(buffer, buffered, chunk_size)
                    buffer = []
                    buffered = 0
            if len(buffer) >= chunk_size:
                self._flush(buffer, buffered, chunk_size)
                buffer = []
                buffered = 0
        if buffer:
            self._flush(buffer, buffered, chunk_size)

    def _flush(
        self, buffer: List[Tuple[object, int]], buffered: int, chunk_size: int
    ) -> None:
        """Ingest one window-bounded slice and rotate if the window filled."""
        self.current.insert_batch(buffer, chunk_size=chunk_size)
        self._in_current += buffered
        if self._in_current >= self.window_size:
            self.rotate()

    def rotate(self) -> DaVinciSketch:
        """Close the current window and start a fresh one.

        Returns the closed window (also retained in :attr:`closed`).
        Rotating an empty window is a no-op returning the newest closed
        window (or the empty current one if nothing was ever closed).
        """
        if self._in_current == 0:
            return self.closed[-1] if self.closed else self.current
        closed = self.current
        self.closed.append(closed)
        self.windows_closed += 1
        self.current = DaVinciSketch(self.config)
        self._in_current = 0
        return closed

    # ------------------------------------------------------------------ #
    # query side
    # ------------------------------------------------------------------ #
    def latest(self) -> Optional[DaVinciSketch]:
        """The newest closed window (None before the first rotation)."""
        return self.closed[-1] if self.closed else None

    def previous(self) -> Optional[DaVinciSketch]:
        """The window before the newest closed one."""
        return self.closed[-2] if len(self.closed) >= 2 else None

    @overload
    def heavy_changers(self, threshold: int) -> Dict[int, int]: ...

    @overload
    def heavy_changers(
        self, threshold: int, *, policy: DegradationPolicy
    ) -> DegradedResult[Dict[int, int]]: ...

    def heavy_changers(
        self, threshold: int, *, policy: Optional[DegradationPolicy] = None
    ) -> Union[Dict[int, int], DegradedResult[Dict[int, int]]]:
        """Keys whose count changed by >= ``threshold`` across the two most
        recent closed windows (positive = grew).

        With a :class:`~repro.core.degrade.DegradationPolicy`, the change
        map is wrapped in a :class:`~repro.core.degrade.DegradedResult`
        (fewer than two closed windows yields a clean empty result).
        """
        newest, older = self.latest(), self.previous()
        if newest is None or older is None:
            if policy is not None:
                return DegradedResult({}, degraded=False, reason=None)
            return {}
        if policy is not None:
            return heavy_changers(newest, older, threshold, policy=policy)
        return heavy_changers(newest, older, threshold)

    def merged_view(self) -> DaVinciSketch:
        """Union of every retained closed window plus the live one.

        Gives a long-horizon sketch for frequency/HH/cardinality queries
        spanning the retention period.  Always returns a fresh
        *additive-mode* sketch — never an alias of a live window (or of the
        internal cache), and with a consistent mode even when nothing was
        ever inserted (an empty union is still a union).

        The fold over the *closed* windows is memoized, keyed on
        :attr:`windows_closed` (closed windows are immutable once rotated
        in, and the deque's content is a pure function of the rotation
        count): repeated calls between rotations pay for at most one union
        — the half-filled live window on top — instead of re-unioning every
        retained window from scratch.
        """
        cached = self._merged_closed_cache
        if cached is None or cached[0] != self.windows_closed:
            folded = DaVinciSketch(self.config)
            folded.mode = MODE_ADDITIVE
            for window in self.closed:
                if window.total_count == 0:
                    continue
                folded = folded.union(window)
            cached = (self.windows_closed, folded)
            self._merged_closed_cache = cached
        if self.current.total_count == 0:
            # Nothing live to union on top; clone so callers never hold a
            # reference into the cache.
            return DaVinciSketch.from_state(cached[1].to_state())
        return cached[1].union(self.current)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WindowedDaVinci(window_size={self.window_size}, "
            f"closed={len(self.closed)}/{self.retain}, "
            f"in_current={self._in_current})"
        )
