"""Windowed measurement: rotating DaVinci sketches over a stream.

The heavy-changer task (and most operational monitoring) is defined over
*time windows*: compare the current epoch against the previous one.  This
utility owns the window lifecycle so applications don't have to:

* :meth:`WindowedDaVinci.insert` feeds the current window and rotates it
  automatically every ``window_size`` items (or on explicit
  :meth:`rotate`, e.g. from a timer);
* :meth:`heavy_changers` compares the two most recent *closed* windows;
* :meth:`merged_view` folds all retained windows into one union sketch
  for long-horizon queries;
* per-window sketches remain accessible for any other task.

All windows share one :class:`~repro.core.config.DaVinciConfig`, so every
pairwise operation (difference for changers, union for the merged view)
is well-defined.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, Optional

from repro.common.errors import ConfigurationError
from repro.core.config import DaVinciConfig
from repro.core.davinci import DaVinciSketch
from repro.core.tasks.heavy import heavy_changers


class WindowedDaVinci:
    """A ring of DaVinci sketches over consecutive stream windows."""

    def __init__(
        self,
        config: DaVinciConfig,
        window_size: int,
        retain: int = 2,
    ) -> None:
        if window_size <= 0:
            raise ConfigurationError("window_size must be positive")
        if retain < 1:
            raise ConfigurationError("must retain at least one closed window")
        self.config = config
        self.window_size = window_size
        self.retain = retain
        self.current: DaVinciSketch = DaVinciSketch(config)
        self._in_current: int = 0
        #: most recent closed windows, newest last
        self.closed: Deque[DaVinciSketch] = deque(maxlen=retain)
        #: total windows closed since construction
        self.windows_closed: int = 0

    # ------------------------------------------------------------------ #
    # stream side
    # ------------------------------------------------------------------ #
    def insert(self, key: object, count: int = 1) -> None:
        """Feed the current window; rotate when it reaches window_size."""
        self.current.insert(key, count)
        self._in_current += 1
        if self._in_current >= self.window_size:
            self.rotate()

    def insert_all(self, keys: Iterable[object]) -> None:
        for key in keys:
            self.insert(key)

    def rotate(self) -> DaVinciSketch:
        """Close the current window and start a fresh one.

        Returns the closed window (also retained in :attr:`closed`).
        Rotating an empty window is a no-op returning the newest closed
        window (or the empty current one if nothing was ever closed).
        """
        if self._in_current == 0:
            return self.closed[-1] if self.closed else self.current
        closed = self.current
        self.closed.append(closed)
        self.windows_closed += 1
        self.current = DaVinciSketch(self.config)
        self._in_current = 0
        return closed

    # ------------------------------------------------------------------ #
    # query side
    # ------------------------------------------------------------------ #
    def latest(self) -> Optional[DaVinciSketch]:
        """The newest closed window (None before the first rotation)."""
        return self.closed[-1] if self.closed else None

    def previous(self) -> Optional[DaVinciSketch]:
        """The window before the newest closed one."""
        return self.closed[-2] if len(self.closed) >= 2 else None

    def heavy_changers(self, threshold: int) -> Dict[int, int]:
        """Keys whose count changed by >= ``threshold`` across the two most
        recent closed windows (positive = grew)."""
        newest, older = self.latest(), self.previous()
        if newest is None or older is None:
            return {}
        return heavy_changers(newest, older, threshold)

    def merged_view(self) -> DaVinciSketch:
        """Union of every retained closed window plus the live one.

        Gives a long-horizon sketch for frequency/HH/cardinality queries
        spanning the retention period.
        """
        view = DaVinciSketch(self.config)
        for window in list(self.closed) + [self.current]:
            if window.total_count == 0:
                continue
            # always union (even with the empty seed) so the returned view
            # is a fresh sketch, never an alias of a live window
            view = view.union(window)
        return view

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WindowedDaVinci(window_size={self.window_size}, "
            f"closed={len(self.closed)}/{self.retain}, "
            f"in_current={self._in_current})"
        )
