"""Set operations between DaVinci sketches (paper Algorithm 3).

Both operations require the two inputs to share an identical
:class:`~repro.core.config.DaVinciConfig` (same shapes, threshold, prime and
hash seeds) — the element filter and infrequent part are combined
counter-wise, which is only meaningful for identically-hashed structures.

**Union.**  Per FP bucket, entries of both inputs are merged by key (counts
summed); the top-``c`` merged entries stay in the result's frequent part and
the leftovers are demoted with a *state-independent* split: ``min(count, T)``
goes to the element filter and the remainder is encoded directly into the
infrequent part.  The element filter is a saturating counter-wise sum and
the infrequent part a field sum.  Because every component of this recipe —
the per-bucket top-``c`` over key-disjoint inputs, the summed ``ecnt``, the
OR-plus-eviction ``flag``, the saturating filter sum and the field-linear
encode — is independent of how inputs are grouped, folding key-disjoint
sketches (e.g. shards produced by
:class:`~repro.runtime.sharded.ShardRouter`) is associative up to
``to_state()`` bytes: a left fold and a balanced merge tree yield the same
sketch.  The result uses the *additive* query mode: after a merge an
element may hold up to ``2T`` in the filter, so Algorithm 4's ``+T``
shortcut no longer applies and summing the three parts is the faithful
query.

**Difference.**  All three parts subtract, producing signed content.  Per
FP bucket the merged signed deltas are ranked by magnitude; the top-``c``
stay and leftovers are encoded directly into the (signed-capable)
infrequent part — the filter's threshold pipeline is meaningless for
negative counts.  Elements with equal counts in both inputs cancel
everywhere, which is exactly the paper's ``A − B = {a, −b, d, −c}``
semantics: positive deltas are "more in A", negative "more in B".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union, overload

from repro.core.davinci import (
    MODE_ADDITIVE,
    MODE_SIGNED,
    MODE_STANDARD,
    DaVinciSketch,
)
from repro.core.degrade import DegradationPolicy, DegradedResult, execute


def _merged_bucket_entries(
    a: DaVinciSketch, b: DaVinciSketch, bucket_index: int, signed: bool
) -> List[Tuple[int, int]]:
    """Key-merged entries of one bucket pair, largest magnitude first."""
    merged: Dict[int, int] = {}
    for key, count, _flag in a.fp.buckets[bucket_index].entries:
        merged[key] = merged.get(key, 0) + count
    sign = -1 if signed else 1
    for key, count, _flag in b.fp.buckets[bucket_index].entries:
        merged[key] = merged.get(key, 0) + sign * count
    entries = [(key, count) for key, count in merged.items() if count != 0]
    entries.sort(key=lambda kv: (-abs(kv[1]), kv[0]))
    return entries


@overload
def union(a: DaVinciSketch, b: DaVinciSketch) -> DaVinciSketch: ...


@overload
def union(
    a: DaVinciSketch, b: DaVinciSketch, *, policy: DegradationPolicy
) -> DegradedResult[DaVinciSketch]: ...


def union(
    a: DaVinciSketch,
    b: DaVinciSketch,
    *,
    policy: Optional[DegradationPolicy] = None,
) -> Union[DaVinciSketch, DegradedResult[DaVinciSketch]]:
    """Return a DaVinci sketch summarizing the multiset union (Alg. 3).

    With a :class:`~repro.core.degrade.DegradationPolicy`, the *result*
    sketch's decodability is probed: a merged infrequent part that no
    longer peels flags the union as degraded (``STRICT`` raises), since
    per-key queries on it fall back to the noisier fast-query estimates.
    """
    result = _union_value(a, b)
    if policy is not None:
        return execute(
            (result,), lambda: result, policy, fallback=lambda: result
        )
    return result


def _union_value(a: DaVinciSketch, b: DaVinciSketch) -> DaVinciSketch:
    a.check_compatible(b)
    result = a.empty_like()
    result.mode = MODE_ADDITIVE
    result.total_count = a.total_count + b.total_count

    # Lower parts first, so that FP leftovers demoted below land on top of
    # the already-merged filter content (Alg. 3, lines 12-17).
    result.ef = a.ef.merged(b.ef)
    result.ifp = a.ifp.merged(b.ifp)

    capacity = result.fp.entries_per_bucket
    threshold = result.ef.threshold
    for i in range(result.fp.num_buckets):
        entries = _merged_bucket_entries(a, b, i, signed=False)
        keep, leftovers = entries[:capacity], entries[capacity:]
        bucket = result.fp.buckets[i]
        # Merged entries are conservatively flagged: either input may hold
        # more of the key's mass in its lower parts (additive queries add
        # the lower parts regardless, so the flag only matters for
        # bookkeeping and re-export).
        bucket.entries = [[key, count, True] for key, count in keep]
        bucket.ecnt = a.fp.buckets[i].ecnt + b.fp.buckets[i].ecnt
        evicted_any = bool(leftovers)
        bucket.flag = a.fp.buckets[i].flag or b.fp.buckets[i].flag or evicted_any
        for key, count in leftovers:
            # State-independent demotion split.  ``offer`` would absorb
            # ``T - current_estimate``, which depends on the filter's state
            # at merge time and therefore on how a multi-way union is
            # grouped; splitting at the threshold itself keeps the filter
            # read for a demoted key at >= T (it re-promotes on sight),
            # conserves the additive-query mass exactly, and makes the
            # union of key-disjoint sketches byte-associative — the
            # property the sharded merge tree relies on.
            absorbed = min(count, threshold)
            result.ef.add(key, absorbed)
            if count > absorbed:
                result.ifp.insert(key, count - absorbed)
    result._decode_cache = None
    return result


@overload
def difference(a: DaVinciSketch, b: DaVinciSketch) -> DaVinciSketch: ...


@overload
def difference(
    a: DaVinciSketch, b: DaVinciSketch, *, policy: DegradationPolicy
) -> DegradedResult[DaVinciSketch]: ...


def difference(
    a: DaVinciSketch,
    b: DaVinciSketch,
    *,
    policy: Optional[DegradationPolicy] = None,
) -> Union[DaVinciSketch, DegradedResult[DaVinciSketch]]:
    """Return the signed difference sketch ``a − b``.

    Supports arbitrary overlap (neither input needs to contain the other):
    querying the result for a key yields ``f_a(key) − f_b(key)``, positive
    when the key is heavier in ``a``.

    With a :class:`~repro.core.degrade.DegradationPolicy`, the result
    sketch's decodability is probed exactly as in :func:`union`.
    """
    result = _difference_value(a, b)
    if policy is not None:
        return execute(
            (result,), lambda: result, policy, fallback=lambda: result
        )
    return result


def _difference_value(a: DaVinciSketch, b: DaVinciSketch) -> DaVinciSketch:
    a.check_compatible(b)
    result = a.empty_like()
    result.mode = MODE_SIGNED
    result.total_count = a.total_count - b.total_count

    result.ef = a.ef.subtracted(b.ef)
    result.ifp = a.ifp.subtracted(b.ifp)

    capacity = result.fp.entries_per_bucket
    for i in range(result.fp.num_buckets):
        entries = _merged_bucket_entries(a, b, i, signed=True)
        keep, leftovers = entries[:capacity], entries[capacity:]
        bucket = result.fp.buckets[i]
        bucket.entries = [[key, count, True] for key, count in keep]
        bucket.ecnt = a.fp.buckets[i].ecnt + b.fp.buckets[i].ecnt
        bucket.flag = a.fp.buckets[i].flag or b.fp.buckets[i].flag or bool(leftovers)
        for key, count in leftovers:
            # Signed counts bypass the filter's (unsigned) threshold
            # pipeline and are encoded exactly into the infrequent part.
            result.ifp.insert(key, count)
    result._decode_cache = None
    return result
