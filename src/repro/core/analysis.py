"""Theoretical error bounds (paper Section IV) and their empirical checks.

The paper proves four results about the frequency estimator; this module
computes the bounds from a concrete configuration so that experiments (and
the test suite) can verify the implementation actually satisfies them:

* **Lemma 1** — the basic signed-counter structure is *unbiased*:
  ``E[f̂_e] = f_e``.  :func:`empirical_bias` measures the mean signed
  error of the infrequent part's fast query over a key population.
* **Lemma 2** — its variance is ``‖F‖₂² / R`` for an array of length
  ``R`` (``F`` excluding the queried element).
  :func:`basic_structure_variance` computes the bound;
  :func:`empirical_variance` the observed value.
* **Lemma 3** — Chebyshev: ``Pr[|f̂_e − f_e| > √(k/R)·‖F‖₂] < 1/k``.
  :func:`frequency_error_bound` gives the threshold for a tolerance
  ``1/k``; :func:`exceed_fraction` the observed violation rate.
* **Theorem 1** — the full DaVinci estimate satisfies
  ``f − error₁ ≤ f̂ ≤ f + error₁ + (k/Πwᵢ)·‖F_EF‖₁`` where
  ``error₁ = √(k/R_IFP)·‖F_IFP‖₂``.  :func:`davinci_error_bound`
  assembles both sides from a loaded sketch and the ground truth split.

The checks run in ``tests/properties/test_theory_bounds.py`` — the
reproduction of the paper's *Theoretical Contribution* bullet.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Tuple

from repro.common.errors import ConfigurationError
from repro.core.davinci import DaVinciSketch


def l2_norm(frequencies: Iterable[int]) -> float:
    """‖F‖₂ of a frequency collection."""
    return math.sqrt(sum(float(value) ** 2 for value in frequencies))


def l1_norm(frequencies: Iterable[int]) -> float:
    """‖F‖₁ of a frequency collection."""
    return float(sum(abs(value) for value in frequencies))


def basic_structure_variance(frequencies: Iterable[int], width: int) -> float:
    """Lemma 2: Var[f̂] = ‖F‖₂² / R for one signed counter array."""
    if width <= 0:
        raise ConfigurationError("width must be positive")
    return l2_norm(frequencies) ** 2 / width


def frequency_error_bound(
    frequencies: Iterable[int], width: int, k: float
) -> float:
    """Lemma 3: the error threshold √(k/R)·‖F‖₂ exceeded w.p. < 1/k."""
    if k <= 0:
        raise ConfigurationError("k must be positive")
    return math.sqrt(k / width) * l2_norm(frequencies)


def empirical_bias(
    estimates: Mapping[int, float], truth: Mapping[int, int]
) -> float:
    """Mean signed error of an estimator over a key population (Lemma 1)."""
    if not truth:
        return 0.0
    return sum(estimates[key] - truth[key] for key in truth) / len(truth)


def empirical_variance(
    estimates: Mapping[int, float], truth: Mapping[int, int]
) -> float:
    """Mean squared error of an estimator over a key population (Lemma 2)."""
    if not truth:
        return 0.0
    return sum(
        (estimates[key] - truth[key]) ** 2 for key in truth
    ) / len(truth)


def exceed_fraction(
    estimates: Mapping[int, float], truth: Mapping[int, int], threshold: float
) -> float:
    """Fraction of keys whose |error| exceeds ``threshold`` (Lemma 3)."""
    if not truth:
        return 0.0
    exceeded = sum(
        1 for key in truth if abs(estimates[key] - truth[key]) > threshold
    )
    return exceeded / len(truth)


def partition_truth_by_part(
    sketch: DaVinciSketch, truth: Mapping[int, int]
) -> Tuple[Dict[int, int], Dict[int, int], Dict[int, int]]:
    """Split the ground-truth mass by the part that holds it.

    Returns ``(fp_mass, ef_mass, ifp_mass)`` per key: the FP holds its
    stored count exactly; of the remainder, the first ``T`` units sit in
    the element filter and the overflow in the infrequent part (the
    promotion discipline of :meth:`ElementFilter.offer`).
    """
    threshold = sketch.ef.threshold
    fp_mass: Dict[int, int] = {}
    ef_mass: Dict[int, int] = {}
    ifp_mass: Dict[int, int] = {}
    for key, total in truth.items():
        stored, _present, _flag = sketch.fp.lookup(key)
        stored = min(stored, total)  # exact by construction, but be safe
        fp_mass[key] = stored
        rest = total - stored
        ef_mass[key] = min(rest, threshold)
        ifp_mass[key] = max(0, rest - threshold)
    return fp_mass, ef_mass, ifp_mass


def davinci_error_bound(
    sketch: DaVinciSketch, truth: Mapping[int, int], k: float
) -> Tuple[float, float]:
    """Theorem 1's two-sided bound for a loaded sketch.

    Returns ``(lower_slack, upper_slack)``: the estimate must satisfy
    ``f − lower_slack ≤ f̂ ≤ f + upper_slack`` with probability ≥ 1 − 1/k
    per side, where ``lower_slack = error₁`` and ``upper_slack = error₁ +
    (k / Π wᵢ)·‖F_EF‖₁`` over the filter's level widths.
    """
    _fp, ef_mass, ifp_mass = partition_truth_by_part(sketch, truth)
    error1 = frequency_error_bound(
        ifp_mass.values(), sketch.ifp.width, k
    )
    width_product = 1.0
    for width in sketch.ef.level_widths:
        width_product *= width
    ef_term = (k / width_product) * l1_norm(ef_mass.values())
    return error1, error1 + ef_term
