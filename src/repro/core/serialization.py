"""Serialization of DaVinci sketches to plain JSON-compatible state.

The distributed-aggregation use case (paper Algorithm 3) ships sketches
between measurement points and a collector; this module provides the wire
format: a nested dict of ints/lists/strings that round-trips through
``json`` (or msgpack, etc.) without loss.

The state embeds the full :class:`~repro.core.config.DaVinciConfig`, so a
deserialized sketch is merge-compatible with the original — same shapes,
same hash seeds.

    state = sketch.to_state()          # or serialization.to_state(sketch)
    wire  = json.dumps(state)
    twin  = DaVinciSketch.from_state(json.loads(wire))
"""

from __future__ import annotations

from typing import Any, Dict

from repro.common.errors import ConfigurationError
from repro.core.config import DaVinciConfig
from repro.core.davinci import MODE_SIGNED, VALID_MODES, DaVinciSketch

#: bumped when the wire format changes incompatibly
STATE_VERSION = 1


def to_state(sketch: DaVinciSketch) -> Dict[str, Any]:
    """Capture a sketch's complete state as JSON-compatible data."""
    config = sketch.config
    return {
        "version": STATE_VERSION,
        "config": {
            "fp_buckets": config.fp_buckets,
            "fp_entries": config.fp_entries,
            "ef_level_widths": list(config.ef_level_widths),
            "ef_level_bits": list(config.ef_level_bits),
            "ifp_rows": config.ifp_rows,
            "ifp_width": config.ifp_width,
            "lambda_evict": config.lambda_evict,
            "filter_threshold": config.filter_threshold,
            "prime": config.prime,
            "seed": config.seed,
        },
        "mode": sketch.mode,
        "total_count": sketch.total_count,
        "frequent_part": [
            {
                "entries": [list(entry) for entry in bucket.entries],
                "ecnt": bucket.ecnt,
                "flag": bucket.flag,
            }
            for bucket in sketch.fp.buckets
        ],
        "element_filter": [list(level) for level in sketch.ef.levels],
        "infrequent_part": {
            "ids": [list(row) for row in sketch.ifp.ids],
            "counts": [list(row) for row in sketch.ifp.counts],
        },
    }


def from_state(state: Dict[str, Any]) -> DaVinciSketch:
    """Rebuild a sketch from :func:`to_state` output."""
    if not isinstance(state, dict) or "config" not in state:
        raise ConfigurationError("not a DaVinci sketch state")
    if state.get("version") != STATE_VERSION:
        raise ConfigurationError(
            f"unsupported state version {state.get('version')!r} "
            f"(this build reads version {STATE_VERSION})"
        )

    raw = state["config"]
    config = DaVinciConfig(
        fp_buckets=raw["fp_buckets"],
        fp_entries=raw["fp_entries"],
        ef_level_widths=tuple(raw["ef_level_widths"]),
        ef_level_bits=tuple(raw["ef_level_bits"]),
        ifp_rows=raw["ifp_rows"],
        ifp_width=raw["ifp_width"],
        lambda_evict=raw["lambda_evict"],
        filter_threshold=raw["filter_threshold"],
        prime=raw["prime"],
        seed=raw["seed"],
    )
    mode = state.get("mode")
    if mode not in VALID_MODES:
        raise ConfigurationError(
            f"unknown sketch mode {mode!r}; expected one of {VALID_MODES} "
            "(an unvalidated mode would silently fall through query "
            "dispatch to the standard path)"
        )
    total_count = state.get("total_count")
    if isinstance(total_count, bool) or not isinstance(total_count, int):
        raise ConfigurationError(
            f"total_count must be an integer, got {total_count!r}"
        )
    if total_count < 0 and mode != MODE_SIGNED:
        raise ConfigurationError(
            f"negative total_count {total_count} is only meaningful for "
            "signed (difference) sketches"
        )

    sketch = DaVinciSketch(config)
    sketch.mode = mode
    sketch.total_count = total_count

    buckets_state = state["frequent_part"]
    if len(buckets_state) != config.fp_buckets:
        raise ConfigurationError("frequent-part state does not match config")
    for bucket, bucket_state in zip(sketch.fp.buckets, buckets_state):
        entries = [list(entry) for entry in bucket_state["entries"]]
        if len(entries) > config.fp_entries:
            raise ConfigurationError("bucket state exceeds entry capacity")
        for entry in entries:
            if len(entry) != 3:
                raise ConfigurationError("FP entries must be [key, count, flag]")
        bucket.entries = entries
        bucket.ecnt = bucket_state["ecnt"]
        bucket.flag = bool(bucket_state["flag"])

    levels_state = state["element_filter"]
    if [len(level) for level in levels_state] != list(config.ef_level_widths):
        raise ConfigurationError("element-filter state does not match config")
    sketch.ef.levels = [list(level) for level in levels_state]

    ifp_state = state["infrequent_part"]
    ids = [list(row) for row in ifp_state["ids"]]
    counts = [list(row) for row in ifp_state["counts"]]
    expected_shape = [config.ifp_width] * config.ifp_rows
    if [len(row) for row in ids] != expected_shape or [
        len(row) for row in counts
    ] != expected_shape:
        raise ConfigurationError("infrequent-part state does not match config")
    sketch.ifp.ids = ids
    sketch.ifp.counts = counts

    sketch._decode_cache = None
    return sketch
